"""Run a :class:`QueryService` on a background thread.

Synchronous callers (tests, ``repro loadgen`` self-hosting, the chaos
sweep) need a live service without committing their own thread to an
event loop.  :class:`BackgroundService` spins one up on a dedicated
thread with its own loop, waits until the listener is bound, and tears
it down through the same graceful-drain path a SIGTERM would take — so
every test of the harness is also a test of drain.

Usage::

    with BackgroundService(config) as service:
        client = service.client()        # blocking JSON client
        status, body = client.post("/query", {...})
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import Dict, Optional, Tuple

from repro.errors import ServiceError
from repro.service.app import QueryService
from repro.service.config import ServiceConfig
from repro.timeseries.table import Table


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (racy but fine for tests)."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


class BlockingClient:
    """A tiny synchronous JSON/HTTP client for tests and the CLI.

    One fresh connection per request — deliberately boring so harness
    failures point at the service, not the client.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(self, method: str, path: str,
                payload: Optional[dict] = None) \
            -> Tuple[int, dict, Dict[str, str]]:
        body = json.dumps(payload).encode() if payload is not None else b""
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n")
        with socket.create_connection((self.host, self.port),
                                      timeout=self.timeout) as sock:
            sock.sendall(head.encode("latin-1") + body)
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        header_blob, _, rest = raw.partition(b"\r\n\r\n")
        lines = header_blob.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        data = json.loads(rest) if rest else {}
        return status, data, headers

    def get(self, path: str) -> Tuple[int, dict]:
        status, data, _ = self.request("GET", path)
        return status, data

    def post(self, path: str, payload: dict) -> Tuple[int, dict]:
        status, data, _ = self.request("POST", path, payload)
        return status, data


class BackgroundService:
    """A live :class:`QueryService` on its own thread + event loop."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 tables: Optional[Dict[str, Table]] = None,
                 startup_timeout: float = 30.0):
        self.config = config or ServiceConfig()
        if self.config.port == 0:
            # Port 0 means "pick one": resolved before bind so the
            # config snapshot in /stats shows the real port.
            self.config.port = free_port(self.config.host)
        self.service = QueryService(self.config)
        for name, table in (tables or {}).items():
            self.service.add_table(name, table)
        self._startup_timeout = startup_timeout
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "BackgroundService":
        self._thread = threading.Thread(target=self._thread_main,
                                        name="trex-service-loop",
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(self._startup_timeout):
            raise ServiceError("service failed to start within "
                               f"{self._startup_timeout:g}s")
        if self._startup_error is not None:
            raise ServiceError(
                f"service failed to start: {self._startup_error}") \
                from self._startup_error
        return self

    def _thread_main(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._serve())
        finally:
            self._loop.close()

    async def _serve(self) -> None:
        try:
            await self.service.start()
        except BaseException as exc:  # noqa: BLE001 — reported to caller
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        # No signal handlers on a non-main thread; stop() drives drain.
        await self.service.run(install_signal_handlers=False)

    def stop(self, timeout: float = 60.0) -> None:
        """Drain gracefully and join the service thread."""
        if self._loop is None or self._thread is None:
            return
        if self._thread.is_alive() and self._startup_error is None:
            future = asyncio.run_coroutine_threadsafe(
                self.service.drain(), self._loop)
            future.result(timeout=timeout)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- conveniences -------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        address = self.service.address
        assert address is not None, "service not started"
        return address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def client(self) -> BlockingClient:
        host, port = self.address
        return BlockingClient(host, port)
