"""Configuration for the multi-tenant query service (docs/SERVICE.md).

Everything the service tunes lives here as plain dataclasses so the CLI
(``repro serve``), the load generator's self-hosting mode and the tests
construct services the same way.  Budgets deliberately reuse the
engine's own vocabulary (``max_segments``, ``timeout_seconds``,
``on_error``) — a tenant quota is just a cap on what a request may ask
the engine for.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.errors import ServiceError


@dataclass(frozen=True)
class TenantConfig:
    """Per-tenant admission and budget limits.

    ``rate``/``burst`` parameterize the token bucket (sustained
    queries/second and instantaneous burst); ``max_concurrent`` caps
    in-flight queries.  ``max_timeout_seconds``/``max_segments`` bound
    what a request may ask for — a request above the cap is *clamped*,
    not rejected, so a misconfigured client degrades instead of
    failing.
    """

    rate: float = 50.0
    burst: int = 100
    max_concurrent: int = 16
    max_timeout_seconds: float = 30.0
    max_segments: Optional[int] = None

    def validate(self) -> None:
        if self.rate <= 0:
            raise ServiceError("tenant rate must be positive")
        if self.burst < 1:
            raise ServiceError("tenant burst must be >= 1")
        if self.max_concurrent < 1:
            raise ServiceError("tenant max_concurrent must be >= 1")
        if self.max_timeout_seconds <= 0:
            raise ServiceError("tenant max_timeout_seconds must be positive")
        if self.max_segments is not None and self.max_segments < 1:
            raise ServiceError("tenant max_segments must be >= 1")


@dataclass(frozen=True)
class RetryConfig:
    """Bounded retry with exponential backoff + deterministic jitter.

    Only *transient* failures are retried — :class:`WorkerCrashed`
    surfacing either as a raised exception or as per-series error
    records (docs/PARALLELISM.md).  Jitter is derived from ``seed`` and
    the per-request attempt counter, so a seeded chaos run replays the
    exact same backoff schedule.
    """

    max_attempts: int = 3
    base_delay_seconds: float = 0.05
    max_delay_seconds: float = 1.0
    jitter_ratio: float = 0.25
    seed: int = 0

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ServiceError("retry max_attempts must be >= 1")
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise ServiceError("retry delays must be non-negative")
        if not 0 <= self.jitter_ratio <= 1:
            raise ServiceError("retry jitter_ratio must be in [0, 1]")


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit breaker over the cost-planner → rule-planner fallback.

    The engine already falls back per query when the cost planner
    fails; the breaker makes that *service-wide*: once
    ``fallback_threshold`` planner fallbacks cluster within
    ``window_seconds``, every query is planned with the rule strategy
    directly for ``cooldown_seconds`` (skipping the doomed cost-planner
    attempt), then one probe query is allowed through (half-open) to
    decide whether to close again.
    """

    fallback_threshold: int = 3
    window_seconds: float = 10.0
    cooldown_seconds: float = 5.0

    def validate(self) -> None:
        if self.fallback_threshold < 1:
            raise ServiceError("breaker fallback_threshold must be >= 1")
        if self.window_seconds <= 0 or self.cooldown_seconds <= 0:
            raise ServiceError("breaker windows must be positive")


@dataclass
class ServiceConfig:
    """Everything one :class:`~repro.service.app.QueryService` needs."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Synthetic datasets served by name (loaded once at startup);
    #: each entry is (dataset name, num_series, length).
    datasets: Tuple[Tuple[str, int, int], ...] = (
        ("sp500", 4, 120),
        ("weather", 4, 120),
    )
    #: Engine options shared by every request.
    optimizer: str = "cost"
    sharing: str = "auto"
    executor: str = "serial"
    engine_workers: Optional[int] = None
    vectorize: Optional[bool] = None
    #: Symbolic pruning prefilter (docs/PREFILTER.md); ``None`` defers
    #: to ``TREX_PREFILTER``.
    prefilter: Optional[bool] = None
    #: Service concurrency: how many queries execute at once (each on
    #: its own thread so the asyncio loop stays responsive).
    workers: int = 4
    #: Bounded request queue; a full queue sheds with HTTP 503.
    queue_depth: int = 64
    #: Default per-request deadline when the client does not send one.
    default_timeout_seconds: float = 10.0
    #: Error policy requests run under unless they override it.
    default_on_error: str = "partial"
    default_tenant: TenantConfig = field(default_factory=TenantConfig)
    tenants: Dict[str, TenantConfig] = field(default_factory=dict)
    retry: RetryConfig = field(default_factory=RetryConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: How long graceful drain waits for in-flight queries on shutdown.
    drain_timeout_seconds: float = 30.0

    def validate(self) -> None:
        if self.workers < 1:
            raise ServiceError("workers must be >= 1")
        if self.queue_depth < 1:
            raise ServiceError("queue_depth must be >= 1")
        if self.default_timeout_seconds <= 0:
            raise ServiceError("default_timeout_seconds must be positive")
        if self.default_on_error not in ("raise", "skip", "partial"):
            raise ServiceError("default_on_error must be 'raise', 'skip' "
                               "or 'partial'")
        if self.executor not in ("serial", "thread", "process"):
            raise ServiceError("executor must be 'serial', 'thread' or "
                               "'process'")
        if self.drain_timeout_seconds <= 0:
            raise ServiceError("drain_timeout_seconds must be positive")
        self.default_tenant.validate()
        for tenant in self.tenants.values():
            tenant.validate()
        self.retry.validate()
        self.breaker.validate()

    def tenant(self, name: str) -> TenantConfig:
        """The limits for ``name`` (the default config if unknown)."""
        return self.tenants.get(name, self.default_tenant)

    def with_overrides(self, **kwargs) -> "ServiceConfig":
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        """JSON-ready summary for /stats and the BENCH artifact."""
        return {
            "host": self.host,
            "port": self.port,
            "datasets": [list(entry) for entry in self.datasets],
            "optimizer": self.optimizer,
            "executor": self.executor,
            "prefilter": self.prefilter,
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "default_timeout_seconds": self.default_timeout_seconds,
            "default_on_error": self.default_on_error,
            "default_tenant": {
                "rate": self.default_tenant.rate,
                "burst": self.default_tenant.burst,
                "max_concurrent": self.default_tenant.max_concurrent,
            },
            "retry": {
                "max_attempts": self.retry.max_attempts,
                "base_delay_seconds": self.retry.base_delay_seconds,
                "max_delay_seconds": self.retry.max_delay_seconds,
            },
            "breaker": {
                "fallback_threshold": self.breaker.fallback_threshold,
                "window_seconds": self.breaker.window_seconds,
                "cooldown_seconds": self.breaker.cooldown_seconds,
            },
        }
