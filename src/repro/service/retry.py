"""Retry/backoff for transient faults + the planner circuit breaker.

Transient-failure model (docs/SERVICE.md): a
:class:`~repro.errors.WorkerCrashed` means a parallel pool worker died
— the query itself is fine, so re-running it is safe and usually
succeeds (the process backend already replaces broken pools).  The
service retries such failures with exponential backoff and
deterministic jitter; everything else (syntax, bind, data, timeouts,
budgets) is *not* retried — those failures are properties of the
request, not the moment.

The circuit breaker watches the engine's cost-planner → rule-planner
fallback chain.  One planner fault is handled per query by the engine;
a *cluster* of them (an injected planner fault storm, a pathological
template) means every cost-planning attempt is wasted work, so the
breaker trips and the service plans with the rule strategy directly
until a cooldown passes and a half-open probe succeeds.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, List, Optional

from repro.core.result import QueryResult
from repro.errors import WorkerCrashed
from repro.service.config import BreakerConfig, RetryConfig

Clock = Callable[[], float]

#: Exception class name recorded on per-series error records when a
#: worker crash was isolated by the ``on_error`` policy.
_CRASH_NAME = WorkerCrashed.__name__


def is_transient_error(error: BaseException) -> bool:
    """Is a raised failure worth retrying?"""
    return isinstance(error, WorkerCrashed)


def transient_series_errors(result: QueryResult) -> List[str]:
    """Per-series worker-crash records in a settled result.

    Under ``on_error='skip'|'partial'`` a crashed worker does not raise
    — it surfaces as a structured :class:`SeriesError`.  Those series
    would have succeeded on a healthy pool, so the whole query is
    re-run (the engine is read-only over its inputs, making the retry
    idempotent).
    """
    return [error.message for error in result.errors
            if error.error == _CRASH_NAME]


class RetryPolicy:
    """Exponential backoff with bounded, deterministically-jittered
    delays.

    ``delays(request_id)`` yields ``max_attempts - 1`` sleep durations.
    Jitter derives from ``seed:request_id:attempt``, so a seeded
    chaos run replays byte-identical schedules while distinct requests
    still decorrelate (no thundering-herd retry waves).
    """

    def __init__(self, config: RetryConfig):
        self.config = config

    def delays(self, request_id: int) -> List[float]:
        config = self.config
        out: List[float] = []
        for attempt in range(1, config.max_attempts):
            base = min(config.max_delay_seconds,
                       config.base_delay_seconds * (2 ** (attempt - 1)))
            rng = random.Random(f"{config.seed}:{request_id}:{attempt}")
            jitter = 1.0 + config.jitter_ratio * (2.0 * rng.random() - 1.0)
            out.append(base * jitter)
        return out


class CircuitBreaker:
    """Service-wide breaker over planner fallbacks.

    States: ``closed`` (cost planner in use) → ``open`` (rule planner
    forced; entered when ``fallback_threshold`` fallbacks land within
    ``window_seconds``) → ``half-open`` (cooldown expired; one probe
    query may try the cost planner) → ``closed`` on a clean probe or
    back to ``open`` on another fallback.
    """

    def __init__(self, config: BreakerConfig, fallback_planner: str,
                 clock: Clock = time.monotonic):
        self.config = config
        self.fallback_planner = fallback_planner
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._fallback_times: List[float] = []
        self._opened_at = 0.0
        self._probe_out = False
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._advance(self._clock())
            return self._state

    def _advance(self, now: float) -> None:
        if self._state == "open" and \
                now - self._opened_at >= self.config.cooldown_seconds:
            self._state = "half-open"
            self._probe_out = False

    def planner_override(self) -> Optional[str]:
        """The planner this query must use, or None for the configured
        one.

        In ``open`` state every query gets the rule planner.  In
        ``half-open`` exactly one caller is handed the cost planner as
        a probe; concurrent queries keep the rule planner until the
        probe reports back.
        """
        with self._lock:
            now = self._clock()
            self._advance(now)
            if self._state == "closed":
                return None
            if self._state == "half-open" and not self._probe_out:
                self._probe_out = True
                return None
            return self.fallback_planner

    def record_fallback(self) -> None:
        """A query's cost-planning failed and fell back to rules."""
        with self._lock:
            now = self._clock()
            self._advance(now)
            if self._state == "half-open":
                self._state = "open"
                self._opened_at = now
                self.trips += 1
                self._fallback_times.clear()
                return
            if self._state == "open":
                return
            window_start = now - self.config.window_seconds
            self._fallback_times = [
                t for t in self._fallback_times if t >= window_start]
            self._fallback_times.append(now)
            if len(self._fallback_times) >= self.config.fallback_threshold:
                self._state = "open"
                self._opened_at = now
                self.trips += 1
                self._fallback_times.clear()

    def record_success(self, used_cost_planner: bool) -> None:
        """A query planned cleanly (no fallback)."""
        with self._lock:
            self._advance(self._clock())
            if self._state == "half-open" and used_cost_planner:
                self._state = "closed"
                self._probe_out = False

    def snapshot(self) -> dict:
        with self._lock:
            self._advance(self._clock())
            return {
                "state": self._state,
                "trips": self.trips,
                "recent_fallbacks": len(self._fallback_times),
                "forced_planner": self.fallback_planner
                if self._state != "closed" else None,
            }
