"""The resilient multi-tenant query service (docs/SERVICE.md).

One :class:`QueryService` wraps a shared
:class:`~repro.core.engine.TRexEngine` configuration behind an asyncio
HTTP/JSON API with a full serving-resilience layer:

* **admission control** — per-tenant token buckets + concurrency
  quotas (:mod:`repro.service.admission`), rejected as structured 429s;
* **bounded queue + load shedding** — requests queue behind a fixed
  number of execution workers; a full queue or a queue whose estimated
  wait already exceeds the request deadline sheds *early* with a 503 +
  ``Retry-After`` instead of doing doomed work;
* **retry with backoff** — transient :class:`WorkerCrashed` failures
  (raised or isolated per series) are re-executed with exponential
  backoff and deterministic jitter (:mod:`repro.service.retry`);
* **circuit breaker** — clustering planner faults trip the
  cost→rule planner fallback service-wide;
* **graceful drain** — SIGTERM stops admission, settles every admitted
  query (partial results per the request's ``on_error`` policy), then
  exits; zero admitted queries are lost.

Request execution itself runs on a thread pool so the event loop only
ever frames bytes and schedules work; the engine below may additionally
fan out per-series work to its own thread/process pools
(docs/PARALLELISM.md), which are warmed at startup and reused across
requests.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core import parallel as _parallel
from repro.core.engine import TRexEngine
from repro.core.plancache import PlanCache
from repro.core.result import QueryResult
from repro.errors import (AdmissionRejected, QueryTimeout, ServiceError,
                          ServiceOverloaded, ServiceUnavailable, TRexError,
                          error_kind, exit_code)
from repro.lang.query import Query
from repro.service import http as _http
from repro.service.admission import AdmissionController, AdmissionTicket
from repro.service.config import ServiceConfig
from repro.service.metrics import ServiceMetrics
from repro.service.retry import (CircuitBreaker, RetryPolicy,
                                 is_transient_error,
                                 transient_series_errors)
from repro.testing import faults as _faults
from repro.timeseries.table import Table

_logger = logging.getLogger(__name__)

#: HTTP status per coarse error kind (repro.errors.error_kind).
_STATUS_BY_KIND = {
    "bind": 400,
    "plan": 422,
    "data": 400,
    "aggregate": 400,
    "engine-lint": 400,
    "timeout": 408,
    "budget": 408,
    "admission": 429,
    "overload": 503,
    "service": 503,
    "execution": 500,
    "internal": 500,
}

#: EWMA smoothing for the per-query execution-time estimate that backs
#: deadline-aware shedding.
_EWMA_ALPHA = 0.2


def error_payload(error: BaseException) -> dict:
    """The structured error body every failure path responds with."""
    kind = error_kind(error)
    payload = {
        "type": type(error).__name__,
        "kind": kind,
        "message": " ".join(str(error).split()),
        "exit_code": exit_code(error),
    }
    retry_after = getattr(error, "retry_after", None)
    if retry_after is not None:
        payload["retry_after"] = round(float(retry_after), 3)
    return payload


@dataclass
class _PendingQuery:
    """One admitted query travelling through the service pipeline."""

    request_id: int
    tenant: str
    query: Query
    table: Table
    on_error: str
    timeout_seconds: float
    max_segments: Optional[int]
    limit: Optional[int]
    ticket: AdmissionTicket
    enqueued_at: float
    deadline: float
    future: "asyncio.Future[Tuple[int, dict, Dict[str, str]]]" = None
    attempts: int = 0
    meta: dict = field(default_factory=dict)


class QueryService:
    """See the module docstring; construct, then ``await run()`` (or
    use :func:`repro.service.harness.BackgroundService` from
    synchronous code)."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.config.validate()
        self.tables: Dict[str, Table] = {}
        self.plan_cache = PlanCache()
        self.metrics = ServiceMetrics()
        self.admission = AdmissionController(self.config)
        self.retry_policy = RetryPolicy(self.config.retry)
        self.breaker = CircuitBreaker(self.config.breaker,
                                      TRexEngine.FALLBACK_STRATEGY)
        self._request_ids = itertools.count(1)
        self._draining = False
        self._drained = asyncio.Event()
        self._started_at = time.monotonic()
        self._queue: "asyncio.Queue[Optional[_PendingQuery]]" = \
            asyncio.Queue(maxsize=self.config.queue_depth)
        self._in_flight = 0
        self._ewma_exec_seconds: Optional[float] = None
        self._exec_pool = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="trex-service")
        self._server: Optional[asyncio.base_events.Server] = None
        self._workers: list = []
        #: Actual bound (host, port) once the server is listening.
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle ----------------------------------------------------------

    def load_datasets(self) -> None:
        """Materialize the configured synthetic datasets once."""
        from repro.datasets import load
        for name, num_series, length in self.config.datasets:
            if name not in self.tables:
                self.tables[name] = load(name, num_series=num_series,
                                         length=length)

    def add_table(self, name: str, table: Table) -> None:
        """Register an extra served dataset (tests, embedding)."""
        self.tables[name] = table

    async def start(self) -> Tuple[str, int]:
        """Bind the listener and start the execution workers."""
        self.load_datasets()
        _parallel.warm_pools(self.config.executor,
                             self.config.engine_workers)
        _parallel.set_crash_listener(
            lambda _desc: self.metrics.counters.add("worker_crashes"))
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        loop = asyncio.get_running_loop()
        self._workers = [
            loop.create_task(self._worker_loop(index))
            for index in range(self.config.workers)
        ]
        _logger.info("query service listening on %s:%d", *self.address)
        return self.address

    async def run(self, install_signal_handlers: bool = True) -> None:
        """Start, serve until drained (SIGTERM/SIGINT), then exit."""
        if self._server is None:
            await self.start()
        if install_signal_handlers:
            import signal
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(
                        sig, lambda: asyncio.ensure_future(self.drain()))
                except NotImplementedError:  # pragma: no cover — win32
                    pass
        await self._drained.wait()

    async def drain(self) -> None:
        """Graceful shutdown: stop admitting, settle, then stop.

        Queries already admitted (queued or executing) run to
        completion under their own error policies — partial results
        flush exactly as they would have without the shutdown — so an
        orderly redeploy loses nothing that was accepted.
        """
        if self._draining:
            return
        self._draining = True
        _logger.info("drain: admission stopped; settling in-flight queries")
        deadline = time.monotonic() + self.config.drain_timeout_seconds
        while (self._queue.qsize() or self._in_flight) \
                and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        for _ in self._workers:
            # Sentinels wake every worker so the loop tasks exit cleanly.
            try:
                self._queue.put_nowait(None)
            except asyncio.QueueFull:  # pragma: no cover — drained above
                break
        await asyncio.gather(*self._workers, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._exec_pool.shutdown(wait=True)
        _parallel.set_crash_listener(None)
        self._drained.set()
        _logger.info("drain complete")

    @property
    def draining(self) -> bool:
        return self._draining

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await _http.read_request(reader)
                except _http.HttpProtocolError as exc:
                    writer.write(_http.response_bytes(
                        400, {"error": {"type": "HttpProtocolError",
                                        "kind": "protocol",
                                        "message": str(exc)}},
                        keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                status, payload, headers = await self._route(request)
                keep = request.keep_alive and not self._draining
                writer.write(_http.response_bytes(
                    status, payload, extra_headers=headers, keep_alive=keep))
                await writer.drain()
                if not keep:
                    return
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass  # peer went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _route(self, request: _http.Request) \
            -> Tuple[int, dict, Dict[str, str]]:
        path = request.path.split("?", 1)[0]
        if path == "/healthz" and request.method == "GET":
            return 200, {"status": "ok",
                         "uptime_seconds": round(
                             time.monotonic() - self._started_at, 3)}, {}
        if path == "/readyz" and request.method == "GET":
            if self._draining:
                return 503, {"ready": False, "reason": "draining"}, {}
            return 200, {"ready": True}, {}
        if path == "/stats" and request.method == "GET":
            return 200, self.stats(), {}
        if path == "/query":
            if request.method != "POST":
                return 405, {"error": {"type": "MethodNotAllowed",
                                       "kind": "protocol",
                                       "message": "POST /query"}}, {}
            return await self._handle_query(request)
        return 404, {"error": {"type": "NotFound", "kind": "protocol",
                               "message": f"no route {path!r}"}}, {}

    # -- the query pipeline -------------------------------------------------

    async def _handle_query(self, request: _http.Request) \
            -> Tuple[int, dict, Dict[str, str]]:
        self.metrics.counters.add("requests")
        try:
            body = request.json()
        except _http.HttpProtocolError as exc:
            self.metrics.counters.add("failed")
            return 400, {"error": {"type": "HttpProtocolError",
                                   "kind": "protocol",
                                   "message": str(exc)}}, {}
        try:
            item = self._admit_and_build(body)
        except TRexError as exc:
            return self._error_response(exc)
        try:
            self._enqueue(item)
        except TRexError as exc:
            item.ticket.release()
            return self._error_response(exc)
        try:
            return await item.future
        finally:
            self.metrics.queue_depth(self._queue.qsize())

    def _error_response(self, error: BaseException) \
            -> Tuple[int, dict, Dict[str, str]]:
        kind = error_kind(error)
        self.metrics.record_error_kind(kind)
        self.metrics.counters.add("failed")
        headers: Dict[str, str] = {}
        retry_after = getattr(error, "retry_after", None)
        if retry_after is not None:
            headers["Retry-After"] = f"{max(retry_after, 0.001):.3f}"
        if isinstance(error, (ServiceOverloaded, ServiceUnavailable)):
            status = 503
        elif isinstance(error, AdmissionRejected):
            status = 429
        elif isinstance(error, ServiceError):
            # Anything else service-level is a malformed request
            # (unknown dataset/template, bad knobs) — the client's
            # fault, not the service's.
            status = 400
        else:
            status = _STATUS_BY_KIND.get(kind, 500)
        return status, {"error": error_payload(error)}, headers

    def _admit_and_build(self, body: dict) -> _PendingQuery:
        """Admission + request validation; raises structured errors."""
        if self._draining:
            self.metrics.counters.add("rejected_draining")
            raise ServiceUnavailable("service is draining; not admitting "
                                     "new queries")
        tenant_name = str(body.get("tenant", "default"))
        ticket = self.admission.admit(tenant_name)
        self.metrics.counters.add("admitted")
        try:
            query, table = self._bind_request(body)
            tenant_config = self.admission.tenant(tenant_name).config
            timeout = float(body.get(
                "timeout_seconds", self.config.default_timeout_seconds))
            if timeout <= 0:
                raise ServiceError("timeout_seconds must be positive")
            timeout = min(timeout, tenant_config.max_timeout_seconds)
            max_segments = body.get("max_segments",
                                    tenant_config.max_segments)
            if max_segments is not None:
                max_segments = int(max_segments)
                if tenant_config.max_segments is not None:
                    max_segments = min(max_segments,
                                       tenant_config.max_segments)
            on_error = str(body.get("on_error",
                                    self.config.default_on_error))
            if on_error not in ("raise", "skip", "partial"):
                raise ServiceError(f"on_error must be 'raise', 'skip' or "
                                   f"'partial', got {on_error!r}")
            limit = body.get("limit")
            if limit is not None:
                limit = int(limit)
                if limit < 1:
                    raise ServiceError("limit must be >= 1")
            now = time.monotonic()
            loop = asyncio.get_running_loop()
            item = _PendingQuery(
                request_id=next(self._request_ids),
                tenant=tenant_name, query=query, table=table,
                on_error=on_error, timeout_seconds=timeout,
                max_segments=max_segments, limit=limit, ticket=ticket,
                enqueued_at=now, deadline=now + timeout)
            item.future = loop.create_future()
            return item
        except BaseException:
            ticket.release()
            raise

    def _bind_request(self, body: dict) -> Tuple[Query, Table]:
        dataset = body.get("dataset")
        template_name = body.get("template")
        text = body.get("query")
        params = body.get("params") or {}
        if not isinstance(params, dict):
            raise ServiceError("params must be a JSON object")
        if template_name is not None:
            from repro.queries import get_template
            template = get_template(str(template_name))
            text = template.text
            dataset = dataset or template.dataset
            if not params:
                # Bare template requests get its first grid point — the
                # canonical instance the bench harness also runs first.
                params = template.param_sets()[0]
        if text is None:
            raise ServiceError("request needs 'query' text or a "
                               "'template' name")
        if dataset is None:
            raise ServiceError("request needs a 'dataset' name")
        table = self.tables.get(str(dataset))
        if table is None:
            raise ServiceError(f"unknown dataset {dataset!r}; served: "
                               f"{sorted(self.tables)}")
        # Compile through the shared cache: repeated template bindings
        # skip parse+bind entirely (hits surface in /stats).
        query = self.plan_cache.compile(str(text), params)
        return query, table

    def _enqueue(self, item: _PendingQuery) -> None:
        """Deadline-aware bounded enqueue; sheds instead of waiting."""
        estimate = self._ewma_exec_seconds
        if estimate is not None:
            queued_ahead = self._queue.qsize() + self._in_flight
            est_wait = estimate * (queued_ahead / self.config.workers)
            if time.monotonic() + est_wait > item.deadline:
                self.metrics.counters.add("shed_deadline")
                raise ServiceOverloaded(
                    f"estimated queue wait {est_wait:.3f}s exceeds the "
                    f"request deadline; retry later",
                    reason="deadline", retry_after=max(est_wait, 0.01))
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.metrics.counters.add("shed_queue_full")
            retry_after = (estimate or 0.05) * \
                (self.config.queue_depth / self.config.workers)
            raise ServiceOverloaded(
                f"request queue is full "
                f"(queue_depth={self.config.queue_depth})",
                reason="queue_full",
                retry_after=max(retry_after, 0.01)) from None
        self.metrics.queue_depth(self._queue.qsize())

    async def _worker_loop(self, index: int) -> None:
        while True:
            item = await self._queue.get()
            if item is None:
                return
            self._in_flight += 1
            try:
                response = await self._settle(item)
                if not item.future.done():
                    item.future.set_result(response)
            except Exception as exc:  # noqa: BLE001 — last-resort guard
                _logger.exception("worker %d: unhandled failure", index)
                if not item.future.done():
                    item.future.set_result(self._error_response(exc))
            finally:
                self._in_flight -= 1
                item.ticket.release()
                if self._draining:
                    self.metrics.counters.add("drained")

    async def _settle(self, item: _PendingQuery) \
            -> Tuple[int, dict, Dict[str, str]]:
        """Run one admitted query to a response, retrying transients."""
        loop = asyncio.get_running_loop()
        delays = self.retry_policy.delays(item.request_id)
        last_error: Optional[BaseException] = None
        retried = False
        for attempt in range(1, self.config.retry.max_attempts + 1):
            item.attempts = attempt
            try:
                result, planner = await loop.run_in_executor(
                    self._exec_pool, self._execute_attempt, item)
            except TRexError as exc:
                last_error = exc
                if is_transient_error(exc) and attempt <= len(delays):
                    self.metrics.counters.add("retries")
                    retried = True
                    await asyncio.sleep(delays[attempt - 1])
                    continue
                if is_transient_error(exc):
                    self.metrics.counters.add("retry_exhausted")
                return self._error_response(exc)
            transient = transient_series_errors(result)
            if transient and attempt <= len(delays):
                self.metrics.counters.add("retries")
                retried = True
                await asyncio.sleep(delays[attempt - 1])
                continue
            if transient:
                self.metrics.counters.add("retry_exhausted")
            elif retried:
                self.metrics.counters.add("retry_success")
            self.metrics.counters.add("completed")
            self.metrics.latency.observe(
                time.monotonic() - item.enqueued_at)
            return 200, self._result_payload(item, result, planner,
                                             retried), {}
        # All attempts raised transiently.
        assert last_error is not None
        self.metrics.counters.add("retry_exhausted")
        return self._error_response(last_error)

    def _execute_attempt(self, item: _PendingQuery) \
            -> Tuple[QueryResult, str]:
        """One engine execution on the thread pool (blocking)."""
        if _faults.ENABLED:
            _faults.fire("service.worker")
        remaining = item.deadline - time.monotonic()
        if remaining <= 0:
            raise QueryTimeout(
                f"deadline expired after {item.timeout_seconds:.3f}s "
                f"(queued too long)")
        override = self.breaker.planner_override()
        planner = override or self.config.optimizer
        engine = TRexEngine(
            optimizer=planner, sharing=self.config.sharing,
            timeout_seconds=remaining, max_matches=item.limit,
            on_error=item.on_error, max_segments=item.max_segments,
            executor=self.config.executor,
            workers=self.config.engine_workers,
            plan_cache=self.plan_cache, vectorize=self.config.vectorize,
            prefilter=self.config.prefilter)
        result = engine.execute_query(item.query, item.table)
        if result.prefilter:
            for key in ("series_examined", "series_skipped",
                        "series_narrowed", "series_full"):
                self.metrics.counters.add(f"prefilter_{key}",
                                          int(result.prefilter[key]))
        exec_seconds = result.planning_seconds + \
            result.execution_wall_seconds
        self._observe_exec_seconds(exec_seconds)
        if override is None:
            if result.planner_fallback:
                self.breaker.record_fallback()
            else:
                self.breaker.record_success(
                    self.config.optimizer in ("cost", "batch"))
        return result, planner

    def _observe_exec_seconds(self, seconds: float) -> None:
        previous = self._ewma_exec_seconds
        if previous is None:
            self._ewma_exec_seconds = seconds
        else:
            self._ewma_exec_seconds = (
                _EWMA_ALPHA * seconds + (1.0 - _EWMA_ALPHA) * previous)

    def _result_payload(self, item: _PendingQuery, result: QueryResult,
                        planner: str, retried: bool) -> dict:
        matches = {}
        for entry in result.per_series:
            label = "/".join(str(part) for part in entry.key) or "-"
            matches[label] = [[start, end]
                              for start, end in entry.matches]
        payload = {
            "tenant": item.tenant,
            "total_matches": result.total_matches,
            "matches": matches,
            "summary": result.summary(),
            "interrupted": result.interrupted,
            "meta": {
                "request_id": item.request_id,
                "attempts": item.attempts,
                "retried": retried,
                "planner": planner,
                "breaker_state": self.breaker.state,
                "planning_seconds": round(result.planning_seconds, 6),
                "execution_seconds": round(
                    result.execution_wall_seconds, 6),
                "queue_to_response_seconds": round(
                    time.monotonic() - item.enqueued_at, 6),
            },
        }
        if result.errors:
            payload["errors"] = [error.to_dict()
                                 for error in result.errors]
        if result.degradation is not None:
            payload["degradation"] = result.degradation
        if result.planner_fallback is not None:
            payload["planner_fallback"] = result.planner_fallback
        if result.plan_cache is not None:
            payload["plan_cache"] = dict(result.plan_cache)
        return payload

    # -- reporting ----------------------------------------------------------

    def stats(self) -> dict:
        """The /stats body: service, tenants, breaker, caches, engine."""
        breaker = self.breaker.snapshot()
        data = self.metrics.snapshot()
        data["counters"]["breaker_trips"] = self.breaker.trips
        return {
            "service": data,
            "tenants": self.admission.snapshot(),
            "breaker": breaker,
            "plan_cache": self.plan_cache.counters(),
            "datasets": sorted(self.tables),
            "in_flight": self._in_flight,
            "queue_depth": self._queue.qsize(),
            "draining": self._draining,
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "config": self.config.to_dict(),
        }


async def serve(config: Optional[ServiceConfig] = None,
                install_signal_handlers: bool = True) -> None:
    """Run a :class:`QueryService` until it drains (signal-driven)."""
    service = QueryService(config)
    await service.run(install_signal_handlers=install_signal_handlers)
