"""Resilient multi-tenant query service over the T-ReX engine.

See docs/SERVICE.md for the architecture: admission control →
bounded queue with deadline-aware shedding → retried execution with a
planner circuit breaker → graceful drain, all surfaced over a small
asyncio HTTP/JSON API (``/query``, ``/healthz``, ``/readyz``,
``/stats``).
"""

from repro.service.admission import (AdmissionController, AdmissionTicket,
                                     TokenBucket)
from repro.service.app import QueryService, serve
from repro.service.config import (BreakerConfig, RetryConfig, ServiceConfig,
                                  TenantConfig)
from repro.service.harness import BackgroundService, BlockingClient
from repro.service.loadgen import (LoadgenConfig, LoadReport, check_report,
                                   run_load, run_self_hosted)
from repro.service.metrics import ServiceMetrics
from repro.service.retry import CircuitBreaker, RetryPolicy

__all__ = [
    "AdmissionController", "AdmissionTicket", "BackgroundService",
    "BlockingClient", "BreakerConfig", "CircuitBreaker", "LoadReport",
    "LoadgenConfig", "QueryService", "RetryConfig", "RetryPolicy",
    "ServiceConfig", "ServiceMetrics", "TenantConfig", "TokenBucket",
    "check_report", "run_load", "run_self_hosted", "serve",
]
