"""Service-level metrics: counters, latency percentiles, /stats body.

Counter names are stable (docs/SERVICE.md) — the load generator, the
CI ``service-chaos`` gate and the chaos sweep all key on them:

=========================  ================================================
counter                    meaning
=========================  ================================================
``requests``               query requests received (before admission)
``admitted``               passed admission control
``completed``              settled with a 200 (possibly degraded)
``failed``                 settled with a structured error response
``shed_queue_full``        rejected: bounded queue at capacity
``shed_deadline``          rejected: queue wait would blow the deadline
``rejected_rate``          admission: token bucket dry
``rejected_concurrency``   admission: tenant concurrency quota
``rejected_draining``      rejected: service draining
``retries``                re-executions after a transient failure
``retry_success``          queries that settled cleanly after >=1 retry
``retry_exhausted``        transient failures surviving every attempt
``breaker_trips``          circuit-breaker closed->open transitions
``worker_crashes``         pool-level crashes observed (parallel hook)
``drained``                admitted queries settled during drain
``prefilter_*``            pruning totals summed over prefilter-enabled
                           requests: ``series_examined``,
                           ``series_skipped``, ``series_narrowed``,
                           ``series_full`` (docs/PREFILTER.md)
=========================  ================================================
"""

from __future__ import annotations

import threading

from repro.exec.metrics import LatencyWindow, ServiceCounters


class ServiceMetrics:
    """All live service metrics behind one snapshot call."""

    def __init__(self) -> None:
        self.counters = ServiceCounters()
        self.latency = LatencyWindow()
        self._lock = threading.Lock()
        self._queue_depth = 0
        self._queue_depth_max = 0
        self._errors_by_kind = ServiceCounters()

    # -- queue gauge --------------------------------------------------------

    def queue_depth(self, depth: int) -> None:
        with self._lock:
            self._queue_depth = depth
            self._queue_depth_max = max(self._queue_depth_max, depth)

    # -- error taxonomy -----------------------------------------------------

    def record_error_kind(self, kind: str) -> None:
        self._errors_by_kind.add(kind)

    def snapshot(self) -> dict:
        with self._lock:
            queue = {"depth": self._queue_depth,
                     "depth_max": self._queue_depth_max}
        counters = self.counters.snapshot()
        shed = (counters.get("shed_queue_full", 0)
                + counters.get("shed_deadline", 0))
        requests = counters.get("requests", 0)
        return {
            "counters": counters,
            "queue": queue,
            "latency": self.latency.snapshot(),
            "errors_by_kind": self._errors_by_kind.snapshot(),
            "shed_rate": (shed / requests) if requests else 0.0,
        }
