"""Per-tenant admission control: token buckets + concurrency quotas.

The first gate a request meets (docs/SERVICE.md).  Each tenant gets a
token bucket (sustained rate + burst) and a concurrent-query quota; a
request that clears both holds an :class:`AdmissionTicket` until its
query settles, so quota release is exception-safe by construction
(``with controller.admit(tenant):``).

Rejections raise :class:`~repro.errors.AdmissionRejected` carrying a
``retry_after`` hint — the time until the bucket refills one token —
which the HTTP layer surfaces as a 429 with a ``Retry-After`` header.

The ``service.admission`` fault point fires inside :meth:`admit`; any
injected fault is converted into a deterministic rejection so chaos
runs exercise the full structured 429 path
(``TREX_FAULTS="service.admission:raise"``).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.errors import AdmissionRejected
from repro.exec.metrics import ServiceCounters
from repro.service.config import ServiceConfig, TenantConfig
from repro.testing import faults as _faults

Clock = Callable[[], float]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Thread-safe; refill happens lazily on acquisition, so an idle
    bucket costs nothing.  ``try_acquire`` never blocks — admission
    control *rejects* rather than queues, pushing wait to the client
    where it belongs (the request queue behind admission handles
    short-term smoothing).
    """

    def __init__(self, rate: float, burst: int,
                 clock: Clock = time.monotonic):
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be positive and burst >= 1")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(float(self.burst),
                               self._tokens + elapsed * self.rate)
            self._updated = now

    def try_acquire(self) -> Tuple[bool, float]:
        """(acquired, retry_after_seconds)."""
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True, 0.0
            deficit = 1.0 - self._tokens
            return False, deficit / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class TenantState:
    """One tenant's live admission state and counters."""

    def __init__(self, name: str, config: TenantConfig, clock: Clock):
        self.name = name
        self.config = config
        self.bucket = TokenBucket(config.rate, config.burst, clock)
        self.in_flight = 0
        self.counters = ServiceCounters()

    def snapshot(self) -> dict:
        data = self.counters.snapshot()
        data["in_flight"] = self.in_flight
        data["rate"] = self.config.rate
        data["burst"] = self.config.burst
        data["max_concurrent"] = self.config.max_concurrent
        return data


class AdmissionTicket:
    """Context manager holding one admitted request's concurrency slot."""

    def __init__(self, controller: "AdmissionController", state: TenantState):
        self._controller = controller
        self.tenant = state
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release(self.tenant)

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class AdmissionController:
    """Admit or reject requests per tenant (rate + concurrency)."""

    def __init__(self, config: ServiceConfig, clock: Clock = time.monotonic):
        self._config = config
        self._clock = clock
        self._tenants: Dict[str, TenantState] = {}
        self._lock = threading.Lock()

    def tenant(self, name: str) -> TenantState:
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                state = TenantState(name, self._config.tenant(name),
                                    self._clock)
                self._tenants[name] = state
            return state

    def admit(self, tenant_name: str) -> AdmissionTicket:
        """Admit one request for ``tenant_name`` or raise.

        Raises :class:`~repro.errors.AdmissionRejected` with
        ``reason='rate'`` or ``'concurrency'``; the caller must release
        the returned ticket (use it as a context manager).
        """
        state = self.tenant(tenant_name)
        if _faults.ENABLED:
            try:
                _faults.fire("service.admission")
            except Exception as exc:  # noqa: BLE001 — injected faults
                state.counters.add("rejected_injected")
                raise AdmissionRejected(
                    f"admission rejected by injected fault: {exc}",
                    reason="injected", retry_after=0.1) from exc
        acquired, retry_after = state.bucket.try_acquire()
        if not acquired:
            state.counters.add("rejected_rate")
            raise AdmissionRejected(
                f"tenant {tenant_name!r} exceeded its query rate "
                f"({state.config.rate:g}/s, burst {state.config.burst})",
                reason="rate", retry_after=max(retry_after, 0.001))
        with self._lock:
            if state.in_flight >= state.config.max_concurrent:
                state.counters.add("rejected_concurrency")
                raise AdmissionRejected(
                    f"tenant {tenant_name!r} has "
                    f"{state.in_flight} queries in flight "
                    f"(quota {state.config.max_concurrent})",
                    reason="concurrency", retry_after=0.05)
            state.in_flight += 1
        state.counters.add("admitted")
        return AdmissionTicket(self, state)

    def _release(self, state: TenantState) -> None:
        with self._lock:
            state.in_flight = max(0, state.in_flight - 1)

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            tenants = dict(self._tenants)
        return {name: state.snapshot() for name, state in sorted(
            tenants.items())}

    def total_in_flight(self) -> int:
        with self._lock:
            return sum(state.in_flight for state in self._tenants.values())
