"""Minimal asyncio HTTP/1.1 plumbing (server parse + client).

The container ships no HTTP framework, so the service speaks a small,
strict subset of HTTP/1.1 over plain asyncio streams: JSON bodies,
``Content-Length`` framing (no chunked encoding), optional keep-alive.
That subset is exactly what the bundled load generator and tests speak;
it is also curl-compatible for manual poking::

    curl -s localhost:8080/healthz
    curl -s -XPOST localhost:8080/query -d '{"template": "v_shape", ...}'

Kept deliberately free of service logic: :mod:`repro.service.app` maps
requests to handlers, this module only frames bytes.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Hard caps so a misbehaving client cannot balloon server memory.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpProtocolError(Exception):
    """The peer sent something outside the supported HTTP subset."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        if not self.body:
            return {}
        try:
            data = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpProtocolError(f"request body is not valid JSON: "
                                    f"{exc}") from exc
        if not isinstance(data, dict):
            raise HttpProtocolError("request body must be a JSON object")
        return data

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive") != "close"


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; None when the peer closed between requests."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpProtocolError("truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpProtocolError("request head too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpProtocolError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpProtocolError(f"bad request line {lines[0]!r}")
    method, path, _ = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpProtocolError(f"bad header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpProtocolError(f"bad Content-Length {length_text!r}") \
            from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpProtocolError(f"unsupported Content-Length {length}")
    body = await reader.readexactly(length) if length else b""
    return Request(method=method.upper(), path=path, headers=headers,
                   body=body)


def response_bytes(status: int, payload: dict,
                   extra_headers: Optional[Dict[str, str]] = None,
                   keep_alive: bool = True) -> bytes:
    """Serialize one JSON response."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


# ---------------------------------------------------------------------------
# Client (load generator + tests)
# ---------------------------------------------------------------------------

class HttpClient:
    """A keep-alive JSON client over one asyncio connection.

    Reconnects lazily after the server closes the connection; not
    thread-safe — one client per concurrent load-generator worker.
    """

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None

    async def request(self, method: str, path: str,
                      payload: Optional[dict] = None,
                      retry_connect: bool = True) -> Tuple[int, dict, dict]:
        """Issue one request; returns (status, body dict, headers)."""
        if self._writer is None:
            await self._connect()
        assert self._reader is not None and self._writer is not None
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode()
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Content-Type: application/json\r\n\r\n")
        try:
            self._writer.write(head.encode("latin-1") + body)
            await self._writer.drain()
            status, headers, raw = await self._read_response()
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            # The server closed a kept-alive connection (drain, idle
            # reap); one reconnect attempt keeps clients honest.
            await self.close()
            if not retry_connect:
                raise
            return await self.request(method, path, payload,
                                      retry_connect=False)
        if headers.get("connection") == "close":
            await self.close()
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            data = {"raw": raw.decode("latin-1", "replace")}
        return status, data, headers

    async def _read_response(self) -> Tuple[int, Dict[str, str], bytes]:
        assert self._reader is not None
        head = await self._reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        return status, headers, body
