"""Chaos-load harness: drive the query service with a mixed workload.

Runs ``clients`` concurrent keep-alive connections, each issuing a
deterministic (seeded) stream of template queries across tenants, and
reports latency percentiles, shed rate and a structured error-family
breakdown.  Point it at a live service with ``url=``, or let it
self-host a :class:`~repro.service.harness.BackgroundService` — the CI
``service-chaos`` job uses self-hosting with ``TREX_FAULTS`` set, so
the whole resilience stack (admission, shedding, retry, breaker,
drain) is exercised in one process.

The report (``BENCH_service_load.json``) is also a gate:
:func:`check_report` enforces the ISSUE acceptance bounds — every
failure is a *structured* error family, the books balance
(``requests == completed + failed``), and under fault injection
retried transients actually settle.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exec.metrics import percentile
from repro.service.http import HttpClient

#: Default template mix — only templates whose datasets the default
#: service config serves (sp500, weather).
DEFAULT_TEMPLATES = ("v_shape", "head_shldr", "outlier", "cld_wave",
                     "limit_sell")
DEFAULT_TENANTS = ("alpha", "beta")


@dataclass
class LoadgenConfig:
    """Workload shape for one load-generation run."""

    host: str = "127.0.0.1"
    port: int = 8080
    clients: int = 8
    requests_per_client: int = 25
    templates: Tuple[str, ...] = DEFAULT_TEMPLATES
    tenants: Tuple[str, ...] = DEFAULT_TENANTS
    timeout_seconds: float = 10.0
    on_error: str = "partial"
    limit: Optional[int] = 200
    seed: int = 0
    #: Seconds to sleep between a client's requests (0 = closed loop).
    think_seconds: float = 0.0


@dataclass
class _Observation:
    """One request/response pair as the client saw it."""

    status: int
    latency_seconds: float
    family: str  # "ok", an error kind, or "unstructured"
    attempts: int = 1
    retried: bool = False
    total_matches: Optional[int] = None


@dataclass
class LoadReport:
    """Aggregated run outcome (serialized to BENCH_service_load.json)."""

    config: dict
    requests: int
    ok: int
    errors_by_family: Dict[str, int]
    unstructured_errors: int
    shed: int
    shed_rate: float
    retried_requests: int
    total_attempts: int
    latency: Dict[str, float]
    wall_seconds: float
    throughput_rps: float
    stats: Optional[dict] = None
    notes: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "benchmark": "service_load",
            "config": self.config,
            "requests": self.requests,
            "ok": self.ok,
            "errors_by_family": dict(sorted(
                self.errors_by_family.items())),
            "unstructured_errors": self.unstructured_errors,
            "shed": self.shed,
            "shed_rate": round(self.shed_rate, 4),
            "retried_requests": self.retried_requests,
            "total_attempts": self.total_attempts,
            "latency": {name: round(value, 6)
                        for name, value in self.latency.items()},
            "wall_seconds": round(self.wall_seconds, 3),
            "throughput_rps": round(self.throughput_rps, 2),
            "stats": self.stats,
            "notes": self.notes,
        }


def _classify(status: int, body: dict) -> str:
    """Map one response to a family: ok / structured kind / unstructured."""
    if status == 200:
        return "ok"
    error = body.get("error")
    if isinstance(error, dict) and error.get("kind") and error.get("type"):
        return str(error["kind"])
    return "unstructured"


async def _client_loop(config: LoadgenConfig, index: int,
                       observations: List[_Observation]) -> None:
    rng = random.Random(f"{config.seed}:{index}")
    client = HttpClient(config.host, config.port)
    try:
        for _ in range(config.requests_per_client):
            template = rng.choice(config.templates)
            tenant = config.tenants[index % len(config.tenants)]
            payload = {
                "tenant": tenant,
                "template": template,
                "timeout_seconds": config.timeout_seconds,
                "on_error": config.on_error,
            }
            if config.limit is not None:
                payload["limit"] = config.limit
            t0 = time.perf_counter()
            try:
                status, body, _headers = await client.request(
                    "POST", "/query", payload)
            except (ConnectionError, asyncio.IncompleteReadError,
                    OSError) as exc:
                observations.append(_Observation(
                    status=0, latency_seconds=time.perf_counter() - t0,
                    family=f"transport:{type(exc).__name__}"))
                continue
            latency = time.perf_counter() - t0
            meta = body.get("meta") or {}
            observations.append(_Observation(
                status=status, latency_seconds=latency,
                family=_classify(status, body),
                attempts=int(meta.get("attempts", 1)),
                retried=bool(meta.get("retried", False)),
                total_matches=body.get("total_matches")))
            if config.think_seconds:
                await asyncio.sleep(config.think_seconds)
    finally:
        await client.close()


async def _run_async(config: LoadgenConfig) \
        -> Tuple[List[_Observation], float, Optional[dict]]:
    observations: List[_Observation] = []
    t0 = time.perf_counter()
    await asyncio.gather(*(
        _client_loop(config, index, observations)
        for index in range(config.clients)))
    wall = time.perf_counter() - t0
    stats_client = HttpClient(config.host, config.port)
    try:
        _status, stats, _headers = await stats_client.request(
            "GET", "/stats")
    except (ConnectionError, OSError):
        stats = None
    finally:
        await stats_client.close()
    return observations, wall, stats


def run_load(config: LoadgenConfig) -> LoadReport:
    """Run the workload against a live service and aggregate."""
    observations, wall, stats = asyncio.run(_run_async(config))
    latencies = sorted(o.latency_seconds for o in observations)
    families: Dict[str, int] = {}
    for obs in observations:
        families[obs.family] = families.get(obs.family, 0) + 1
    ok = families.get("ok", 0)
    unstructured = sum(count for family, count in families.items()
                       if family == "unstructured"
                       or family.startswith("transport:"))
    shed = families.get("overload", 0) + families.get("service", 0)
    requests = len(observations)
    latency = {}
    if latencies:
        latency = {
            "mean_seconds": sum(latencies) / len(latencies),
            "p50_seconds": percentile(latencies, 50.0),
            "p95_seconds": percentile(latencies, 95.0),
            "p99_seconds": percentile(latencies, 99.0),
        }
    return LoadReport(
        config={
            "clients": config.clients,
            "requests_per_client": config.requests_per_client,
            "templates": list(config.templates),
            "tenants": list(config.tenants),
            "timeout_seconds": config.timeout_seconds,
            "on_error": config.on_error,
            "limit": config.limit,
            "seed": config.seed,
        },
        requests=requests,
        ok=ok,
        errors_by_family=families,
        unstructured_errors=unstructured,
        shed=shed,
        shed_rate=(shed / requests) if requests else 0.0,
        retried_requests=sum(1 for o in observations if o.retried),
        total_attempts=sum(o.attempts for o in observations),
        latency=latency,
        wall_seconds=wall,
        throughput_rps=(requests / wall) if wall > 0 else 0.0,
        stats=stats,
    )


def run_self_hosted(config: LoadgenConfig, service_config=None,
                    faults: Optional[str] = None) -> LoadReport:
    """Spin up a BackgroundService, drive it, drain it, report.

    ``faults`` optionally sets ``TREX_FAULTS`` for the run (restored
    afterwards) so chaos load tests are one call.
    """
    import os

    from repro.service.config import ServiceConfig
    from repro.service.harness import BackgroundService
    from repro.testing import faults as _faults

    service_config = service_config or ServiceConfig(
        port=0, datasets=(("sp500", 4, 120), ("weather", 4, 120)))
    previous = os.environ.get("TREX_FAULTS")
    try:
        if faults is not None:
            os.environ["TREX_FAULTS"] = faults
            _faults.disarm_all()
            _faults.install_from_env()
        with BackgroundService(service_config) as service:
            host, port = service.address
            run_config = LoadgenConfig(**{
                **config.__dict__, "host": host, "port": port})
            report = run_load(run_config)
            report.notes.append(f"self-hosted at {service.url}"
                                + (f" with TREX_FAULTS={faults!r}"
                                   if faults else ""))
        # The service has drained; the /stats snapshot taken over HTTP
        # predates the drain, so fold the final counters in.
        report.stats = service.service.stats()
        return report
    finally:
        if faults is not None:
            if previous is None:
                os.environ.pop("TREX_FAULTS", None)
            else:
                os.environ["TREX_FAULTS"] = previous
            _faults.disarm_all()
            _faults.install_from_env()


def check_report(report: LoadReport,
                 expect_retries: bool = False,
                 max_shed_rate: float = 1.0) -> List[str]:
    """The CI gate: empty list means the run is acceptable."""
    problems: List[str] = []
    if report.requests == 0:
        problems.append("no requests were issued")
    if report.unstructured_errors:
        problems.append(f"{report.unstructured_errors} non-structured "
                        f"errors (transport failures or bodies without "
                        f"an error family)")
    if report.ok == 0:
        problems.append("no request succeeded")
    if report.shed_rate > max_shed_rate:
        problems.append(f"shed rate {report.shed_rate:.2%} exceeds "
                        f"{max_shed_rate:.2%}")
    if expect_retries and report.retried_requests == 0 \
            and report.total_attempts <= report.requests:
        problems.append("fault injection was on but no request was "
                        "retried")
    stats = report.stats or {}
    counters = (stats.get("service") or {}).get("counters") or {}
    if counters:
        requests = counters.get("requests", 0)
        settled = counters.get("completed", 0) + counters.get("failed", 0)
        if requests != settled:
            problems.append(f"counter books do not balance: "
                            f"requests={requests} != completed+failed="
                            f"{settled}")
    return problems
