"""Synthetic datasets standing in for the paper's five (Table 2)."""

from repro.datasets.synthetic import (DATASET_SHAPES, GENERATORS, covid19,
                                      dataset_statistics, load, nasdaq,
                                      sp500, taxi, weather)

__all__ = ["DATASET_SHAPES", "GENERATORS", "covid19", "dataset_statistics",
           "load", "nasdaq", "sp500", "taxi", "weather"]
