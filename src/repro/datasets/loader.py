"""Loading tables from CSV files (no pandas dependency).

``load_csv`` reads a delimited text file into a
:class:`~repro.timeseries.table.Table`: numeric columns become float
arrays, everything else stays as strings.  Used by the CLI and handy for
loading the real datasets when a user has them on disk.

Malformed input raises a structured :class:`~repro.errors.DataError`
carrying the file path and the 1-based row number of the offending data
(``error.source``/``error.row``), never a bare ``ValueError``:

* ragged rows (fewer *or more* cells than the header);
* mixed columns — a column where some cells parse as numbers and
  others do not is almost always a data bug (a stray unit suffix, a
  shifted row), so it is rejected naming the first non-numeric cell
  rather than silently demoted to strings;
* duplicate or decreasing timestamps within one partition, when the
  caller identifies the time column (``time_column=``, optionally
  grouped by ``group_by=``) — the CLI threads the query's ``ORDER BY``
  / ``PARTITION BY`` columns here so bad timestamps surface at load
  time instead of producing silently ambiguous matches.
"""

from __future__ import annotations

import csv
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DataError
from repro.timeseries.table import Table


def _try_float(value: str) -> Optional[float]:
    try:
        return float(value)
    except ValueError:
        return None


def _parse_columns(path: str, keep: Sequence[str], raw: List[List[str]],
                   row_numbers: List[int]) -> Dict[str, np.ndarray]:
    """Type every kept column; mixed numeric/text columns are rejected."""
    table_columns: Dict[str, np.ndarray] = {}
    for name, cells in zip(keep, raw):
        parsed = [_try_float(cell) if cell != "" else None for cell in cells]
        numeric = [value is not None for value in parsed]
        non_empty = [cell != "" for cell in cells]
        if any(numeric):
            for index, (is_num, has_text) in enumerate(zip(numeric,
                                                           non_empty)):
                if has_text and not is_num:
                    raise DataError(
                        f"column {name!r} mixes numeric and non-numeric "
                        f"values; first non-numeric cell is "
                        f"{cells[index]!r}",
                        source=path, row=row_numbers[index])
            table_columns[name] = np.asarray(
                [float("nan") if value is None else value
                 for value in parsed], dtype=np.float64)
        else:
            table_columns[name] = np.asarray(cells, dtype=object)
    return table_columns


def _check_timestamps(path: str, keep: Sequence[str],
                      columns: Dict[str, np.ndarray],
                      row_numbers: List[int], time_column: str,
                      group_by: Optional[Sequence[str]]) -> None:
    """Reject duplicate/decreasing timestamps within each partition."""
    if time_column not in columns:
        raise DataError(f"time column {time_column!r} not in loaded "
                        f"columns {sorted(columns)}", source=path)
    group_by = list(group_by or [])
    for name in group_by:
        if name not in columns:
            raise DataError(f"group column {name!r} not in loaded "
                            f"columns {sorted(columns)}", source=path)
    stamps = columns[time_column]
    if stamps.dtype.kind != "f":
        raise DataError(f"time column {time_column!r} is not numeric",
                        source=path)
    key_arrays = [columns[name] for name in group_by]
    last_seen: Dict[Tuple, Tuple[float, int]] = {}
    for index in range(len(stamps)):
        key = tuple(arr[index] for arr in key_arrays)
        stamp = float(stamps[index])
        if stamp != stamp:  # trex: exact-float(NaN never equals itself)
            raise DataError(
                f"time column {time_column!r} has a non-finite timestamp",
                source=path, row=row_numbers[index])
        previous = last_seen.get(key)
        if previous is not None:
            prev_stamp, prev_row = previous
            label = "/".join(str(part) for part in key) or "-"
            if stamp == prev_stamp:
                raise DataError(
                    f"duplicate timestamp {stamp:g} in partition "
                    f"{label} (first seen at row {prev_row})",
                    source=path, row=row_numbers[index])
            if stamp < prev_stamp:
                raise DataError(
                    f"non-monotonic timestamp {stamp:g} in partition "
                    f"{label} (row {prev_row} has {prev_stamp:g})",
                    source=path, row=row_numbers[index])
        last_seen[key] = (stamp, row_numbers[index])


def load_csv(path: str, delimiter: str = ",", time_unit: str = "DAY",
             columns: Optional[Sequence[str]] = None,
             nan_policy: str = "allow",
             time_column: Optional[str] = None,
             group_by: Optional[Sequence[str]] = None) -> Table:
    """Read a CSV file with a header row into a Table.

    ``columns`` optionally restricts which header columns are kept.  A
    column is numeric if every non-empty cell parses as a float; empty
    cells in numeric columns become NaN, while a mix of numeric and
    non-numeric cells is a :class:`DataError`.  ``nan_policy`` decides
    what happens to non-finite values when the table is partitioned into
    series: ``'allow'`` keeps them, ``'raise'`` rejects the data with a
    :class:`DataError`, ``'omit'`` masks the offending rows
    (docs/ROBUSTNESS.md).

    When ``time_column`` is given, timestamps are validated at load
    time: within each partition (the distinct value combinations of
    ``group_by``, or the whole file without it) they must be strictly
    increasing — duplicates and decreasing steps raise a
    :class:`DataError` naming the file and row.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError("empty file", source=path) from None
        header = [name.strip() for name in header]
        keep = list(columns) if columns else header
        missing = set(keep) - set(header)
        if missing:
            raise DataError(f"columns {sorted(missing)} not in "
                            f"header {header}", source=path)
        indices = [header.index(name) for name in keep]
        raw: List[List[str]] = [[] for _ in keep]
        row_numbers: List[int] = []
        for row_number, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) != len(header):
                raise DataError(f"expected {len(header)} cells, got "
                                f"{len(row)}", source=path, row=row_number)
            for out, index in zip(raw, indices):
                out.append(row[index].strip())
            row_numbers.append(row_number)

    table_columns = _parse_columns(path, keep, raw, row_numbers)
    if not table_columns:
        raise DataError("no columns selected", source=path)
    if time_column is not None:
        _check_timestamps(path, keep, table_columns, row_numbers,
                          time_column, group_by)
    return Table(table_columns, time_unit=time_unit, nan_policy=nan_policy)


def save_csv(table: Table, path: str, delimiter: str = ",") -> None:
    """Write a Table back to CSV (round-trip/testing aid)."""
    names = table.column_names
    arrays = [table.column(name) for name in names]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(names)
        for row in range(len(table)):
            writer.writerow([arrays[i][row] for i in range(len(names))])
