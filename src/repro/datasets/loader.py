"""Loading tables from CSV files (no pandas dependency).

``load_csv`` reads a delimited text file into a
:class:`~repro.timeseries.table.Table`: numeric columns become float
arrays, everything else stays as strings.  Used by the CLI and handy for
loading the real datasets when a user has them on disk.
"""

from __future__ import annotations

import csv
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import DataError
from repro.timeseries.table import Table


def _try_float(value: str) -> Optional[float]:
    try:
        return float(value)
    except ValueError:
        return None


def load_csv(path: str, delimiter: str = ",", time_unit: str = "DAY",
             columns: Optional[Sequence[str]] = None,
             nan_policy: str = "allow") -> Table:
    """Read a CSV file with a header row into a Table.

    ``columns`` optionally restricts which header columns are kept.  A
    column is numeric if every non-empty cell parses as a float; empty
    cells in numeric columns become NaN.  ``nan_policy`` decides what
    happens to such non-finite values when the table is partitioned into
    series: ``'allow'`` keeps them, ``'raise'`` rejects the data with a
    :class:`DataError`, ``'omit'`` masks the offending rows
    (docs/ROBUSTNESS.md).
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path}: empty file") from None
        header = [name.strip() for name in header]
        keep = list(columns) if columns else header
        missing = set(keep) - set(header)
        if missing:
            raise DataError(f"{path}: columns {sorted(missing)} not in "
                            f"header {header}")
        indices = [header.index(name) for name in keep]
        raw: List[List[str]] = [[] for _ in keep]
        for row_number, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) < len(header):
                raise DataError(f"{path}:{row_number}: expected "
                                f"{len(header)} cells, got {len(row)}")
            for out, index in zip(raw, indices):
                out.append(row[index].strip())

    table_columns: Dict[str, np.ndarray] = {}
    for name, cells in zip(keep, raw):
        parsed = [_try_float(cell) if cell != "" else None for cell in cells]
        if all(value is not None or cell == ""
               for value, cell in zip(parsed, cells)):
            table_columns[name] = np.asarray(
                [float("nan") if value is None else value
                 for value in parsed], dtype=np.float64)
        else:
            table_columns[name] = np.asarray(cells, dtype=object)
    if not table_columns:
        raise DataError(f"{path}: no columns selected")
    return Table(table_columns, time_unit=time_unit, nan_policy=nan_policy)


def save_csv(table: Table, path: str, delimiter: str = ",") -> None:
    """Write a Table back to CSV (round-trip/testing aid)."""
    names = table.column_names
    arrays = [table.column(name) for name in names]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(names)
        for row in range(len(table)):
            writer.writerow([arrays[i][row] for i in range(len(names))])
