"""Synthetic stand-ins for the paper's five datasets (Table 2).

No network access is available (and two of the paper's datasets are large
downloads), so each dataset is replaced by a seeded generator that
preserves the properties the experiments exercise — series count, length,
and the frequency/shape of the patterns each query template searches for.
DESIGN.md §4 documents each substitution.

All generators return a :class:`~repro.timeseries.table.Table` and accept
``scale='default'`` (CI-friendly sizes) or ``scale='full'`` (the paper's
sizes).  Generation is deterministic per seed.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.errors import DataError
from repro.timeseries.table import Table

#: Paper sizes (Table 2) and our scaled defaults.
DATASET_SHAPES = {
    #          (series, length) default    (series, length) full
    "sp500": ((503, 252), (503, 252)),
    "covid19": ((334, 64), (3342, 64)),
    "weather": ((36, 618), (36, 1854)),
    "taxi": ((1, 3440), (1, 10320)),
    "nasdaq": ((1, 35180), (1, 351795)),
}


def _shape(name: str, scale: str, num_series: Optional[int],
           length: Optional[int]):
    default, full = DATASET_SHAPES[name]
    base = full if scale == "full" else default
    return (num_series if num_series is not None else base[0],
            length if length is not None else base[1])


def sp500(scale: str = "default", num_series: Optional[int] = None,
          length: Optional[int] = None, seed: int = 42) -> Table:
    """Daily opening prices: geometric Brownian motion per ticker.

    Drift and volatility vary per ticker so that V-shapes, head-and-
    shoulders and large falls all occur with realistic frequency.
    """
    n_series, n = _shape("sp500", scale, num_series, length)
    rng = np.random.default_rng(seed)
    tstamps = []
    tickers = []
    prices = []
    for index in range(n_series):
        ticker = f"S{index:04d}"
        start = float(rng.uniform(20.0, 400.0))
        drift = float(rng.normal(0.0002, 0.001))
        vol = float(rng.uniform(0.01, 0.035))
        returns = rng.normal(drift, vol, size=n)
        series = start * np.exp(np.cumsum(returns))
        tstamps.extend(range(n))
        tickers.extend([ticker] * n)
        prices.extend(series.tolist())
    return Table({"tstamp": np.asarray(tstamps, dtype=np.float64),
                  "ticker": np.asarray(tickers, dtype=object),
                  "price": np.asarray(prices, dtype=np.float64)},
                 time_unit="DAY")


def covid19(scale: str = "default", num_series: Optional[int] = None,
            length: Optional[int] = None, seed: int = 43) -> Table:
    """Weekly confirmed cases per county: overlapping epidemic waves.

    Each county's series is a sum of 1–3 bell-shaped waves plus noise,
    floored at 1 so ratio conditions are well defined; this yields the
    fall-then-rebound shapes the ``rebound`` template searches for.
    """
    n_series, n = _shape("covid19", scale, num_series, length)
    rng = np.random.default_rng(seed)
    weeks = np.arange(n, dtype=np.float64)
    tstamps = []
    counties = []
    confirmed = []
    for index in range(n_series):
        county = f"C{index:05d}"
        waves = np.zeros(n)
        for _ in range(int(rng.integers(1, 4))):
            center = float(rng.uniform(5, n - 5))
            width = float(rng.uniform(2.0, 8.0))
            height = float(rng.uniform(50.0, 5000.0))
            waves += height * np.exp(-0.5 * ((weeks - center) / width) ** 2)
        noise = rng.normal(0, 0.05, size=n) * (waves + 10.0)
        values = np.maximum(waves + noise, 1.0)
        tstamps.extend(range(n))
        counties.extend([county] * n)
        confirmed.extend(values.tolist())
    return Table({"tstamp": np.asarray(tstamps, dtype=np.float64),
                  "county": np.asarray(counties, dtype=object),
                  "confirmed": np.asarray(confirmed, dtype=np.float64)},
                 time_unit="WEEK")


def weather(scale: str = "default", num_series: Optional[int] = None,
            length: Optional[int] = None, seed: int = 44,
            cold_waves_per_city: int = 3) -> Table:
    """Daily temperatures per city: seasonality + AR(1) noise + injected
    cold waves.

    Each injected cold wave follows the paper's Figure 1a shape: a multi-
    week meandering warm-up followed by a steep multi-degree drop within a
    few days, guaranteeing non-empty ``cld_wave`` results.
    """
    n_series, n = _shape("weather", scale, num_series, length)
    rng = np.random.default_rng(seed)
    days = np.arange(n, dtype=np.float64)
    tstamps = []
    cities = []
    temps = []
    for index in range(n_series):
        city = f"CITY{index:02d}"
        mean = float(rng.uniform(5.0, 25.0))
        amplitude = float(rng.uniform(8.0, 15.0))
        phase = float(rng.uniform(0, 2 * math.pi))
        seasonal = mean + amplitude * np.sin(2 * math.pi * days / 365.25
                                             + phase)
        noise = np.zeros(n)
        sigma = float(rng.uniform(1.5, 3.0))
        for day in range(1, n):
            noise[day] = 0.7 * noise[day - 1] + rng.normal(0, sigma)
        values = seasonal + noise
        # Inject cold waves: ~22 days of gradual warm-up then a steep
        # 3-5 day drop of >= 22 degrees.
        for _ in range(cold_waves_per_city):
            anchor = int(rng.integers(35, max(n - 10, 36)))
            warmup = int(rng.integers(20, 26))
            lo = max(anchor - warmup, 0)
            ramp = np.linspace(0.0, rng.uniform(6.0, 10.0), anchor - lo)
            values[lo:anchor] += ramp
            drop_len = int(rng.integers(3, 6))
            hi = min(anchor + drop_len, n)
            drop = np.linspace(0.0, -rng.uniform(22.0, 30.0), hi - anchor)
            values[anchor:hi] += drop
        tstamps.extend(range(n))
        cities.extend([city] * n)
        temps.extend(values.tolist())
    return Table({"tstamp": np.asarray(tstamps, dtype=np.float64),
                  "city": np.asarray(cities, dtype=object),
                  "temp": np.asarray(temps, dtype=np.float64)},
                 time_unit="DAY")


def taxi(scale: str = "default", num_series: Optional[int] = None,
         length: Optional[int] = None, seed: int = 45) -> Table:
    """Half-hourly NYC taxi ride counts: daily + weekly seasonality.

    48 points per day with a strong morning ramp-up and evening decline —
    the repeated pattern ``rptd_pttrn`` searches for across consecutive
    days.
    """
    _, n = _shape("taxi", scale, num_series, length)
    rng = np.random.default_rng(seed)
    slots = np.arange(n, dtype=np.float64)
    time_of_day = (slots % 48) / 48.0
    day_of_week = (slots // 48) % 7
    base = 4000.0 + 5000.0 * np.exp(
        -0.5 * ((time_of_day - 0.58) / 0.17) ** 2)
    base *= np.where(day_of_week >= 5, 0.85, 1.0)
    night_dip = np.where((time_of_day > 0.04) & (time_of_day < 0.22), 0.25,
                         1.0)
    values = base * night_dip + rng.normal(0, 150.0, size=n)
    values = np.maximum(values, 50.0)
    return Table({"tstamp": slots,
                  "rides": values.astype(np.float64)}, time_unit="HOUR")


def nasdaq(scale: str = "default", num_series: Optional[int] = None,
           length: Optional[int] = None, seed: int = 46,
           num_tickers: int = 20) -> Table:
    """A single intraday tick stream interleaving many tickers.

    Columns ``ticker`` and ``peak`` mirror the OpenCEP benchmark stream;
    the OpenCEP_Qx templates filter points by ticker equality.  Timestamps
    count seconds.
    """
    _, n = _shape("nasdaq", scale, num_series, length)
    rng = np.random.default_rng(seed)
    names = ["GOOG", "AAPL", "MSFT", "AMZN"] + [
        f"T{i:03d}" for i in range(max(num_tickers - 4, 0))]
    names = names[:num_tickers]
    ticker_ids = rng.integers(0, len(names), size=n)
    prices = {name: float(rng.uniform(50.0, 1500.0)) for name in names}
    peaks = np.empty(n, dtype=np.float64)
    tickers = np.empty(n, dtype=object)
    for row in range(n):
        name = names[int(ticker_ids[row])]
        prices[name] *= math.exp(rng.normal(0, 0.0008))
        peaks[row] = prices[name]
        tickers[row] = name
    timestamps = np.cumsum(rng.integers(1, 4, size=n)).astype(np.float64)
    return Table({"tstamp": timestamps, "ticker": tickers, "peak": peaks},
                 time_unit="SECOND")


#: Name → generator mapping.
GENERATORS = {
    "sp500": sp500,
    "covid19": covid19,
    "weather": weather,
    "taxi": taxi,
    "nasdaq": nasdaq,
}


def load(name: str, scale: str = "default", **kwargs) -> Table:
    """Load a dataset by name."""
    try:
        generator = GENERATORS[name]
    except KeyError:
        raise DataError(f"unknown dataset {name!r}; available: "
                        f"{sorted(GENERATORS)}") from None
    return generator(scale=scale, **kwargs)


def dataset_statistics(scale: str = "default") -> Dict[str, Dict[str, float]]:
    """Regenerate Table 2: number of series and series length."""
    stats = {}
    partition_columns = {"sp500": "ticker", "covid19": "county",
                         "weather": "city", "taxi": None, "nasdaq": None}
    order = {"sp500": "tstamp", "covid19": "tstamp", "weather": "tstamp",
             "taxi": "tstamp", "nasdaq": "tstamp"}
    for name in GENERATORS:
        table = load(name, scale=scale)
        partition = partition_columns[name]
        series_list = table.partition([partition] if partition else None,
                                      order[name])
        lengths = [len(s) for s in series_list]
        stats[name] = {
            "num_series": len(series_list),
            "series_length": float(np.mean(lengths)),
        }
    return stats
