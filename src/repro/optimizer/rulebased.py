"""Rule-based physical planners — the Table 4 baselines.

A :class:`RuleStrategy` fixes every choice the cost-based optimizer would
otherwise make (Section 6.2.1):

* ``direction``: ``'left'`` (left-deep) or ``'right'`` (right-deep) join
  trees for n-ary Concat/And chains;
* ``binary``: ``'probe'`` (Right-Probe for left-deep, Left-Probe for
  right-deep) or ``'sm'`` (Sort-Merge);
* ``not_impl``: ``'materialize'`` or ``'probe'``;
* leaves always prefer SegGenIndexing when eligible (the paper's rule (3)).

Reference handling is automatic: leaves whose references are unavailable at
their evaluation position are lifted into a Filter (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence

from repro.errors import PlanError
from repro.exec.base import PhysicalOperator
from repro.lang.query import Query
from repro.optimizer.construct import (LEFT_PROBE, NOT_MATERIALIZE,
                                       NOT_PROBE, RIGHT_PROBE, SORT_MERGE,
                                       BuildResult, Construction,
                                       validate_scoping)
from repro.plan.logical import (LAnd, LConcat, LKleene, LNot, LOr, LVar,
                                LogicalNode, build_logical_plan)


@dataclass(frozen=True)
class RuleStrategy:
    """One rule-based plan family (e.g. ``pr_left``, ``sm_right_pnot``)."""

    direction: str = "left"       # 'left' | 'right'
    binary: str = "probe"         # 'probe' | 'sm'
    not_impl: str = NOT_MATERIALIZE

    @property
    def label(self) -> str:
        base = f"{'pr' if self.binary == 'probe' else 'sm'}_{self.direction}"
        if self.not_impl == NOT_PROBE:
            return base + "_pnot"
        return base

    @property
    def binary_impl(self) -> str:
        if self.binary == "sm":
            return SORT_MERGE
        return RIGHT_PROBE if self.direction == "left" else LEFT_PROBE


#: The four Not-free baselines of Table 4.
BASELINE_STRATEGIES = [
    RuleStrategy("left", "probe"),
    RuleStrategy("right", "probe"),
    RuleStrategy("left", "sm"),
    RuleStrategy("right", "sm"),
]

#: The additional ProbeNot variants used for queries containing a Not.
BASELINE_STRATEGIES_WITH_NOT = BASELINE_STRATEGIES + [
    RuleStrategy("left", "probe", NOT_PROBE),
    RuleStrategy("right", "probe", NOT_PROBE),
    RuleStrategy("left", "sm", NOT_PROBE),
    RuleStrategy("right", "sm", NOT_PROBE),
]


class RuleBasedPlanner:
    """Builds a physical plan for a query following one strategy."""

    def __init__(self, strategy: RuleStrategy, sharing: str = "on"):
        self.strategy = strategy
        self.sharing = sharing

    def plan(self, query: Query,
             logical: LogicalNode = None) -> PhysicalOperator:
        if logical is None:
            logical = build_logical_plan(query)
        validate_scoping(query, logical)
        construction = Construction(query, sharing=self.sharing)
        result = self._build(logical, construction, frozenset())
        result = construction.apply_filter(result, logical.window)
        if result.lifted:
            raise PlanError("unresolvable lifted conditions remain at the "
                            "plan root")
        missing = set(result.op.requires)
        if missing:
            raise PlanError(f"plan root still requires references "
                            f"{sorted(missing)}")
        from repro.optimizer.validator import validate_plan
        violations = validate_plan(result.op)
        if violations:
            raise PlanError("invalid physical plan: "
                            + "; ".join(violations))
        return result.op

    # -- recursive construction ----------------------------------------------

    def _build(self, node: LogicalNode, construction: Construction,
               available: FrozenSet[str]) -> BuildResult:
        if isinstance(node, LVar):
            needs_lift = not set(node.var.external_refs) <= set(available)
            return construction.leaf(node, lift=needs_lift)
        if isinstance(node, LAnd):
            return self._build_and(node, construction, available)
        if isinstance(node, LConcat):
            return self._build_concat(node, construction, available)
        if isinstance(node, LOr):
            return self._fold_or(node, construction, available)
        if isinstance(node, LNot):
            child = self._build(node.child, construction, available)
            return construction.build_not(child, node.window,
                                          self.strategy.not_impl)
        if isinstance(node, LKleene):
            child = self._build(node.child, construction, available)
            return construction.build_kleene(child, node)
        raise PlanError(f"unknown logical node {node!r}")

    def _build_and(self, node: LAnd, construction: Construction,
                   available: FrozenSet[str]) -> BuildResult:
        parts: Sequence[LogicalNode] = node.parts
        use_probe = self.strategy.binary == "probe"
        if use_probe:
            order, _ = Construction.order_for_probes(parts, available)
        else:
            order = list(range(len(parts)))
        if self.strategy.direction == "right":
            # Right-deep: the rightmost child is the first anchor, so place
            # providers later in the syntactic chain.
            order = list(reversed(order))
        impl = self.strategy.binary_impl
        sequence = [parts[i] for i in order]
        if self.strategy.direction == "left":
            result = self._build(sequence[0], construction, available)
            bound = available | result.op.publish
            for part in sequence[1:]:
                part_available = bound if use_probe else available
                built = self._build(part, construction, part_available)
                result = construction.combine_and(result, built, node.window,
                                                  impl)
                result = construction.maybe_resolve_lifts(
                    result, available, node.window)
                bound = bound | result.op.publish
            return result
        # Right-deep fold.
        result = self._build(sequence[-1], construction, available)
        bound = available | result.op.publish
        for part in reversed(sequence[:-1]):
            part_available = bound if use_probe else available
            built = self._build(part, construction, part_available)
            result = construction.combine_and(built, result, node.window,
                                              impl)
            result = construction.maybe_resolve_lifts(result, available,
                                                      node.window)
            bound = bound | result.op.publish
        return result

    def _build_concat(self, node: LConcat, construction: Construction,
                      available: FrozenSet[str]) -> BuildResult:
        parts = node.parts
        gaps = node.gaps
        use_probe = self.strategy.binary == "probe"
        impl = self.strategy.binary_impl
        relaxed = node.window.relax_lower()
        if self.strategy.direction == "left":
            # Evaluate parts left to right; only references flowing
            # left→right can be served (others lift automatically).
            result = self._build(parts[0], construction, available)
            bound = available | result.op.publish
            for index in range(1, len(parts)):
                window = node.window if index == len(parts) - 1 else relaxed
                part_available = bound if use_probe else available
                built = self._build(parts[index], construction,
                                    part_available)
                result = construction.combine_concat(
                    result, built, gaps[index - 1], window, impl)
                result = construction.maybe_resolve_lifts(result, available,
                                                          window)
                bound = bound | result.op.publish
            return result
        # Right-deep: evaluate right to left.
        result = self._build(parts[-1], construction, available)
        bound = available | result.op.publish
        for index in range(len(parts) - 2, -1, -1):
            window = node.window if index == 0 else relaxed
            part_available = bound if use_probe else available
            built = self._build(parts[index], construction, part_available)
            result = construction.combine_concat(built, result, gaps[index],
                                                 window, impl)
            result = construction.maybe_resolve_lifts(result, available,
                                                      window)
            bound = bound | result.op.publish
        return result

    def _fold_or(self, node: LOr, construction: Construction,
                 available: FrozenSet[str]) -> BuildResult:
        built: List[BuildResult] = [
            self._build(part, construction, available)
            for part in node.parts
        ]
        result = built[0]
        for other in built[1:]:
            result = construction.combine_or(result, other, node.window)
        return result
