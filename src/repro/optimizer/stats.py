"""Query-time statistics sampling (Appendix D.3).

The optimizer needs, per variable, the selectivity of the Boolean
condition within the windowed search space (``Sel_{P|w}``) and the average
candidate segment length (``ℓ_in``).  Both are sampled on a handful of
series at query time; the cost is negligible relative to execution
(Table 7 measures it).

Variables whose conditions reference other variables cannot be evaluated
standalone; they receive a configurable default selectivity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import PlanningBudgetExceeded, QueryTimeout
from repro.exec.base import ExecContext
from repro.lang import expr as E
from repro.lang.query import Query, VarDef
from repro.timeseries.series import Series

#: Selectivity assumed for conditions that cannot be sampled standalone.
DEFAULT_REFERENCE_SELECTIVITY = 0.5


def check_deadlines(deadline, planning_deadline, where: str = "planning"):
    """Raise if a planning-phase time budget has been exceeded.

    The planning-only budget raises :class:`PlanningBudgetExceeded`
    (which the engine converts into a rule-based fallback); the global
    query deadline raises :class:`QueryTimeout` (no fallback — the whole
    query is out of time).
    """
    if deadline is None and planning_deadline is None:
        return
    now = time.perf_counter()
    if planning_deadline is not None and now > planning_deadline:
        raise PlanningBudgetExceeded(
            f"planning budget exhausted during {where}")
    if deadline is not None and now > deadline:
        raise QueryTimeout(f"query deadline exceeded during {where}")


@dataclass(frozen=True)
class VarStats:
    """Sampled statistics for one variable."""

    selectivity: float
    avg_length: float
    samples: int


@dataclass
class StatsCatalog:
    """Per-variable statistics plus collection metadata."""

    variables: Dict[str, VarStats] = field(default_factory=dict)
    series_length: int = 0
    collection_seconds: float = 0.0

    def selectivity(self, name: str) -> float:
        entry = self.variables.get(name)
        if entry is None:
            return DEFAULT_REFERENCE_SELECTIVITY
        return entry.selectivity

    def avg_length(self, name: str) -> float:
        entry = self.variables.get(name)
        if entry is None or entry.avg_length <= 0:
            return max(self.series_length / 4.0, 1.0)
        return entry.avg_length


def _sample_segments(series: Series, var: VarDef, rng: np.random.Generator,
                     count: int) -> List[tuple]:
    """Sample up to ``count`` windowed candidate segments of one series."""
    n = len(series)
    window = var.window_conjunction
    segments: List[tuple] = []
    attempts = 0
    max_attempts = count * 8
    while len(segments) < count and attempts < max_attempts:
        attempts += 1
        start = int(rng.integers(0, n))
        lo, hi = window.end_range(series, start)
        lo = max(lo, start)
        hi = min(hi, n - 1)
        if hi < lo:
            continue
        end = int(rng.integers(lo, hi + 1))
        if not var.is_segment and end != start:
            end = start
            if not window.accepts(series, start, end):
                continue
        segments.append((start, end))
    return segments


def collect_stats(query: Query, series_list: Sequence[Series],
                  num_series: int = 5, segments_per_var: int = 64,
                  seed: int = 7,
                  use_index: bool = True,
                  deadline=None, planning_deadline=None) -> StatsCatalog:
    """Sample ``Sel_{P|w}`` and average segment length for every variable."""
    t0 = time.perf_counter()
    rng = np.random.default_rng(seed)
    if not series_list:
        return StatsCatalog()
    if len(series_list) > num_series:
        chosen = [series_list[int(i)] for i in
                  rng.choice(len(series_list), size=num_series,
                             replace=False)]
    else:
        chosen = list(series_list)
    median_length = int(np.median([len(s) for s in chosen])) if chosen else 0

    catalog = StatsCatalog(series_length=median_length)
    for name, var in query.variables.items():
        if var.condition is None:
            # Window-only variables pass everything; estimate only length.
            lengths = []
            for series in chosen:
                for start, end in _sample_segments(series, var, rng,
                                                   segments_per_var // 4):
                    lengths.append(end - start + 1)
            avg_len = float(np.mean(lengths)) if lengths else 0.0
            catalog.variables[name] = VarStats(1.0, avg_len, len(lengths))
            continue
        if var.external_refs:
            catalog.variables[name] = VarStats(
                DEFAULT_REFERENCE_SELECTIVITY, 0.0, 0)
            continue
        passed = 0
        total = 0
        lengths = []
        for series in chosen:
            if len(series) == 0:
                continue
            check_deadlines(deadline, planning_deadline,
                            where="selectivity sampling")
            ctx = ExecContext(series, query.registry)
            provider = ctx.indexed_provider if use_index \
                else ctx.direct_provider
            for start, end in _sample_segments(series, var, rng,
                                               segments_per_var):
                total += 1
                if total % 16 == 0:
                    check_deadlines(deadline, planning_deadline,
                                    where="selectivity sampling")
                lengths.append(end - start + 1)
                ectx = E.EvalContext(series, start, end, variable=name,
                                     refs={}, provider=provider,
                                     registry=query.registry)
                if E.evaluate_condition(var.condition, ectx):
                    passed += 1
        if total == 0:
            catalog.variables[name] = VarStats(0.0, 0.0, 0)
        else:
            # Clamp away 0/1 so downstream cardinalities stay non-degenerate.
            selectivity = min(max(passed / total, 0.5 / total), 1.0)
            catalog.variables[name] = VarStats(
                selectivity, float(np.mean(lengths)), total)
    catalog.collection_seconds = time.perf_counter() - t0
    return catalog
