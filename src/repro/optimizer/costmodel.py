"""Cardinality building blocks of Table 1.

Window selectivities are computed from duration bounds using the canonical
boxed search space implied by the range sizes ``(ℓ_s, ℓ_e)`` and span
``ℓ_se``; conditional selectivities (``Sel_{w|w_l,w_r}`` etc.) use a
uniform-duration approximation over the children's admissible duration
ranges.  Everything here is deliberately cheap — the optimizer evaluates
these formulas many times per query.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.lang.windows import WindowConjunction
from repro.plan.logical import (LAnd, LConcat, LKleene, LNot, LOr, LVar,
                                LogicalNode)
from repro.timeseries.series import Series

Bounds = Tuple[float, float]  # (lo, hi) index-duration bounds; hi may be inf


def lse_estimate(ls: float, le: float, n: int) -> float:
    """ℓ_se estimate per Appendix C.1."""
    if ls <= 1 and le <= 1:
        return max(n / 3.0, 1.0)
    return max(ls, le, 1.0)


def window_duration_bounds(window: WindowConjunction,
                           series: Series) -> Bounds:
    """Combined index-duration bounds implied by a window conjunction.

    Time-based specs are converted using the series' average step.
    """
    n = len(series)
    if n > 1:
        timestamps = series.timestamps
        avg_step = float(timestamps[-1] - timestamps[0]) / (n - 1)
        if avg_step <= 0:
            avg_step = 1.0
    else:
        avg_step = 1.0
    lo = 0.0
    hi = math.inf
    for spec in window.specs:
        spec_lo, spec_hi = spec.bounds_on(series)
        if spec.kind == "time":
            spec_lo = spec_lo / avg_step
            spec_hi = None if spec_hi is None else spec_hi / avg_step
        lo = max(lo, spec_lo)
        if spec_hi is not None:
            hi = min(hi, spec_hi)
    return lo, hi


def node_duration_bounds(node: LogicalNode, series: Series) -> Bounds:
    """Duration bounds of segments a logical node can produce."""
    window_lo, window_hi = window_duration_bounds(node.window, series)
    if isinstance(node, LVar):
        if not node.var.is_segment:
            return 0.0, 0.0
        return window_lo, window_hi
    if isinstance(node, LConcat):
        lo = 0.0
        hi = 0.0
        for index, part in enumerate(node.parts):
            part_lo, part_hi = node_duration_bounds(part, series)
            lo += part_lo
            hi += part_hi
            if index < len(node.gaps):
                lo += node.gaps[index]
                hi += node.gaps[index]
        return max(lo, window_lo), min(hi, window_hi)
    if isinstance(node, LAnd):
        lo, hi = window_lo, window_hi
        for part in node.parts:
            part_lo, part_hi = node_duration_bounds(part, series)
            lo = max(lo, part_lo)
            hi = min(hi, part_hi)
        return lo, hi
    if isinstance(node, LOr):
        lo = math.inf
        hi = 0.0
        for part in node.parts:
            part_lo, part_hi = node_duration_bounds(part, series)
            lo = min(lo, part_lo)
            hi = max(hi, part_hi)
        return max(lo, window_lo), min(hi, window_hi)
    if isinstance(node, LKleene):
        child_lo, child_hi = node_duration_bounds(node.child, series)
        reps_hi = node.max_reps
        lo = child_lo * max(node.min_reps, 1)
        hi = math.inf if reps_hi is None else (child_hi + node.gap) * reps_hi
        return max(lo, window_lo), min(hi, window_hi)
    if isinstance(node, LNot):
        return window_lo, window_hi
    return window_lo, window_hi


#: Number of start positions sampled for boxed pair counting.
_MAX_START_SAMPLES = 256


def boxed_pair_fraction(ls: float, le: float, lse: float,
                        duration: Bounds) -> float:
    """Fraction of the boxed ``ℓ_s × ℓ_e`` space whose segment duration
    falls in ``duration`` (the Sel_w of Section 5.2).

    The canonical box anchors starts at ``[0, ℓ_s)`` and ends at
    ``[ℓ_se - ℓ_e, ℓ_se)`` within a span of ``ℓ_se`` positions.
    """
    ls_i = max(int(round(ls)), 1)
    le_i = max(int(round(le)), 1)
    lse_i = max(int(round(lse)), 1)
    lo, hi = duration
    hi = min(hi, lse_i - 1.0)
    if hi < lo:
        return 0.0
    e_min = lse_i - le_i
    e_max = lse_i - 1
    step = max(1, ls_i // _MAX_START_SAMPLES)
    total = 0.0
    count = 0
    for s in range(0, ls_i, step):
        lo_e = max(s + lo, e_min, s)
        hi_e = min(s + hi, e_max)
        if hi_e >= lo_e:
            total += hi_e - lo_e + 1
        count += 1
    if count == 0:
        return 0.0
    expected_pairs = total / count * ls_i
    fraction = expected_pairs / (ls_i * le_i)
    return min(max(fraction, 0.0), 1.0)


_GRID = 12


def _grid(bounds: Bounds, cap: float) -> list:
    lo, hi = bounds
    hi = min(hi, cap)
    if hi < lo:
        return []
    if hi == lo:
        return [lo]
    step = (hi - lo) / (_GRID - 1)
    return [lo + i * step for i in range(_GRID)]


def concat_window_selectivity(window: Bounds, left: Bounds, right: Bounds,
                              gap: int, cap: float) -> float:
    """``Sel_{w|w_l, w_r}`` — probability that a concatenated segment's
    duration lands in the parent window, durations uniform over the
    children's admissible ranges (capped at the span)."""
    w_lo, w_hi = window
    if w_lo <= 0 and w_hi >= cap:
        return 1.0
    left_grid = _grid(left, cap)
    right_grid = _grid(right, cap)
    if not left_grid or not right_grid:
        return 0.0
    hits = 0
    for dl in left_grid:
        for dr in right_grid:
            total = dl + dr + gap
            if w_lo <= total <= w_hi:
                hits += 1
    return hits / (len(left_grid) * len(right_grid))


def containment_selectivity(window: Bounds, child: Bounds,
                            cap: float) -> float:
    """``Sel_{w|w_s}`` — probability a child-duration segment satisfies the
    parent window (used by Kleene single-occurrence and Or arms)."""
    w_lo, w_hi = window
    c_lo, c_hi = child
    c_hi = min(c_hi, cap)
    if c_hi < c_lo:
        return 0.0
    width = c_hi - c_lo
    overlap = min(c_hi, w_hi) - max(c_lo, w_lo)
    if overlap < 0:
        return 0.0
    if width <= 0:
        return 1.0
    return min(overlap / width, 1.0)
