"""Physical plan construction shared by rule-based and cost-based planners.

This module turns logical nodes into physical operators given *decisions*
(join order, binary operator implementation, Not implementation, leaf
implementation) and handles the cross-cutting concerns:

* computing which variable names must be *published* in payloads,
* ordering sibling sub-trees so referenced segments are bound before use,
* **Filter lifting**: when a chosen operator cannot deliver references to a
  consumer (Sort-Merge independence, or cyclic references), the consumer
  leaf's condition is lifted into a :class:`FilterOp` placed at the first
  ancestor where every referenced segment is available, and the leaf is
  replaced by an unfiltered ``SegGenWindow`` (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import PlanError
from repro.exec.and_or import (LeftProbeAnd, RightProbeAnd, SortMergeAnd,
                               SortMergeOr)
from repro.exec.base import PhysicalOperator
from repro.exec.concat import (LeftProbeConcat, RightProbeConcat,
                               SortMergeConcat, WildWindowConcat)
from repro.exec.filter_op import FilterOp, LiftedCondition
from repro.exec.kleene import MaterializeKleene
from repro.exec.not_op import MaterializeNot, ProbeNot
from repro.exec.seggen import SegGenFilter, SegGenIndexing, SegGenWindow
from repro.lang.query import Query, VarDef
from repro.lang.windows import WindowConjunction
from repro.plan.logical import LKleene, LNot, LVar, LogicalNode, walk

#: Binary implementation choices.
SORT_MERGE = "sm"
RIGHT_PROBE = "rp"
LEFT_PROBE = "lp"

#: Not implementation choices.
NOT_MATERIALIZE = "materialize"
NOT_PROBE = "probe"

#: Leaf implementation choices.
LEAF_INDEXING = "indexing"
LEAF_FILTER = "filter"


def publish_set(query: Query) -> FrozenSet[str]:
    """Variable names that may need to travel in payloads.

    This is the set of variables referenced by other variables' conditions,
    plus the owners of potentially lifted conditions (variables whose own
    conditions hold external references).
    """
    names: Set[str] = set()
    for var in query.variables.values():
        names |= set(var.external_refs)
        if var.external_refs:
            names.add(var.name)
    return frozenset(names)


def var_is_indexable(var: VarDef, query: Query) -> bool:
    """Whether the variable's condition benefits from SegGenIndexing."""
    calls = var.aggregate_calls()
    if not calls:
        return False
    for call in calls:
        agg = query.registry.get(call.name)
        if getattr(agg, "needs_series_context", False):
            continue
        if not agg.supports_index:
            continue
        if all(ref.variable in (None, var.name) for ref in call.columns):
            return True
    return False


def validate_scoping(query: Query, root: LogicalNode) -> None:
    """Reject references into Kleene bodies or Not bodies from outside."""
    referenced = query.referenced_variables()
    for node in walk(root):
        if isinstance(node, LKleene):
            inner = {n.var.name for n in walk(node.child)
                     if isinstance(n, LVar)}
            outside_consumers = set()
            for other in query.variables.values():
                if other.name not in inner and (
                        set(other.external_refs) & inner):
                    outside_consumers.add(other.name)
            if outside_consumers:
                raise PlanError(
                    f"variables {sorted(outside_consumers)} reference "
                    f"segments inside a Kleene body {sorted(inner)}; such "
                    f"references are not supported")
        if isinstance(node, LNot):
            inner = {n.var.name for n in walk(node.child)
                     if isinstance(n, LVar)}
            outside = inner & referenced
            consumers_outside = set()
            for other in query.variables.values():
                if other.name not in inner and (
                        set(other.external_refs) & inner):
                    consumers_outside.add(other.name)
            if consumers_outside:
                raise PlanError(
                    f"variables {sorted(consumers_outside)} reference "
                    f"segments inside a Not body; a negation binds nothing")
            del outside


@dataclass
class BuildResult:
    """A constructed operator plus conditions still waiting to be lifted."""

    op: PhysicalOperator
    lifted: List[LiftedCondition] = field(default_factory=list)

    @property
    def pending_refs(self) -> Set[str]:
        needed: Set[str] = set()
        for owner, condition in self.lifted:
            from repro.lang import expr as E
            needed |= set(E.external_references(condition, owner))
            needed.add(owner)
        return needed


class Construction:
    """Stateless helpers bound to one query + publish set + sharing mode."""

    def __init__(self, query: Query, sharing: str = "on"):
        if sharing not in ("on", "off"):
            raise PlanError(f"sharing mode must be 'on' or 'off' at "
                            f"construction level, got {sharing!r}")
        self.query = query
        self.sharing = sharing
        self.publish = publish_set(query)
        # Variables appearing more than once in the pattern get their leaf
        # results memoized via the SubPattern operator (Section 4.5.1), so
        # e.g. cld_wave's two W1 pads share one evaluation per search space.
        from repro.lang import pattern as P
        counts: dict = {}
        for node in P.walk(query.pattern):
            if isinstance(node, P.VarRef):
                counts[node.name] = counts.get(node.name, 0) + 1
        self._repeated_vars = {name for name, count in counts.items()
                               if count > 1}

    # -- leaves --------------------------------------------------------------

    def leaf(self, node: LVar, impl: Optional[str] = None,
             lift: bool = False) -> BuildResult:
        """Build a leaf operator; ``lift=True`` forces the Figure-6 form
        (SegGenWindow + lifted condition)."""
        var = node.var
        pub = self.publish & {var.name}
        if var.condition is None:
            op = SegGenWindow(node.window, var.name, pub)
            return BuildResult(self._maybe_share(op, node))
        if lift:
            op = SegGenWindow(node.window, var.name,
                              pub | frozenset({var.name}))
            return BuildResult(op, [(var.name, var.condition)])
        if impl is None:
            impl = (LEAF_INDEXING
                    if self.sharing == "on" and var_is_indexable(var,
                                                                 self.query)
                    else LEAF_FILTER)
        if impl == LEAF_INDEXING:
            op: "PhysicalOperator" = SegGenIndexing(var, node.window, pub)
        else:
            op = SegGenFilter(var, node.window, pub)
        return BuildResult(self._maybe_share(op, node))

    def _maybe_share(self, op, node: LVar):
        """Wrap repeated-variable leaves in a SubPattern memo operator."""
        if node.var.name not in self._repeated_vars:
            return op
        from repro.exec.special import SubPatternCache
        key = (f"{type(op).__name__}:{node.var.name}:"
               f"{node.window.describe()}:{sorted(op.publish)}")
        return SubPatternCache(op, key)

    # -- binary combines -----------------------------------------------------

    def _merged_meta(self, left: PhysicalOperator, right: PhysicalOperator):
        provides_publish = (left.publish | right.publish) & self.publish
        requires = (left.requires | right.requires) - self._provided(left) \
            - self._provided(right)
        return provides_publish, frozenset(requires)

    @staticmethod
    def _provided(op: PhysicalOperator) -> Set[str]:
        return set(op.publish)

    def combine_concat(self, left: BuildResult, right: BuildResult, gap: int,
                       window: WindowConjunction, impl: str) -> BuildResult:
        publish, requires = self._merged_meta(left.op, right.op)
        classes = {SORT_MERGE: SortMergeConcat, RIGHT_PROBE: RightProbeConcat,
                   LEFT_PROBE: LeftProbeConcat}
        op = classes[impl](left.op, right.op, gap, window, publish, requires)
        return BuildResult(op, left.lifted + right.lifted)

    def combine_and(self, left: BuildResult, right: BuildResult,
                    window: WindowConjunction, impl: str) -> BuildResult:
        publish, requires = self._merged_meta(left.op, right.op)
        classes = {SORT_MERGE: SortMergeAnd, RIGHT_PROBE: RightProbeAnd,
                   LEFT_PROBE: LeftProbeAnd}
        op = classes[impl](left.op, right.op, window, publish, requires)
        return BuildResult(op, left.lifted + right.lifted)

    def combine_or(self, left: BuildResult, right: BuildResult,
                   window: WindowConjunction) -> BuildResult:
        publish, requires = self._merged_meta(left.op, right.op)
        op = SortMergeOr(left.op, right.op, window, publish, requires)
        return BuildResult(op, left.lifted + right.lifted)

    def wild_concat(self, left: BuildResult, right: BuildResult,
                    pad_window: WindowConjunction,
                    window: WindowConjunction, gap_left: int = 0,
                    gap_right: int = 0) -> BuildResult:
        publish, requires = self._merged_meta(left.op, right.op)
        op = WildWindowConcat(left.op, right.op, pad_window, window, publish,
                              requires, gap_left=gap_left,
                              gap_right=gap_right)
        return BuildResult(op, left.lifted + right.lifted)

    # -- unary ---------------------------------------------------------------

    def build_not(self, child: BuildResult, window: WindowConjunction,
                  impl: str) -> BuildResult:
        if child.lifted:
            raise PlanError("conditions cannot be lifted out of a Not "
                            "operator (Section 4.4.2)")
        cls = MaterializeNot if impl == NOT_MATERIALIZE else ProbeNot
        op = cls(child.op, window, frozenset(), child.op.requires)
        return BuildResult(op)

    def build_kleene(self, child: BuildResult, node: LKleene) -> BuildResult:
        if child.lifted:
            raise PlanError("conditions cannot be lifted out of a Kleene "
                            "body")
        op = MaterializeKleene(child.op, node.min_reps, node.max_reps,
                               node.gap, node.window, frozenset(),
                               child.op.requires)
        return BuildResult(op)

    def apply_filter(self, result: BuildResult,
                     window: WindowConjunction) -> BuildResult:
        """Place a FilterOp over ``result`` resolving its lifted conditions."""
        if not result.lifted:
            return result
        op = FilterOp(result.op, result.lifted, window,
                      use_index=self.sharing == "on",
                      publish=result.op.publish & self.publish,
                      requires=result.op.requires)
        return BuildResult(op)

    def maybe_resolve_lifts(self, result: BuildResult,
                            available: FrozenSet[str],
                            window: WindowConjunction) -> BuildResult:
        """Apply a FilterOp for every lifted condition whose references are
        bound at this point; keep the rest pending."""
        if not result.lifted:
            return result
        from repro.lang import expr as E
        bound = set(result.op.publish) | set(available)
        ready: List[LiftedCondition] = []
        waiting: List[LiftedCondition] = []
        for owner, condition in result.lifted:
            needed = set(E.external_references(condition, owner)) | {owner}
            if needed <= bound:
                ready.append((owner, condition))
            else:
                waiting.append((owner, condition))
        if not ready:
            return result
        filtered = self.apply_filter(BuildResult(result.op, ready), window)
        return BuildResult(filtered.op, waiting)

    # -- ordering ------------------------------------------------------------

    @staticmethod
    def order_for_probes(parts: Sequence[LogicalNode],
                         available: FrozenSet[str]) -> Tuple[List[int], bool]:
        """Topological order of And parts so providers precede consumers.

        Returns (order, acyclic).  Stable: keeps the original order among
        unconstrained parts.  When a reference cycle exists, returns the
        original order with ``acyclic=False`` (callers must lift).
        """
        n = len(parts)
        remaining = list(range(n))
        ordered: List[int] = []
        bound: Set[str] = set(available)
        while remaining:
            progressed = False
            for index in list(remaining):
                if set(parts[index].requires) <= bound:
                    ordered.append(index)
                    remaining.remove(index)
                    bound |= set(parts[index].provides)
                    progressed = True
            if not progressed:
                return list(range(n)), False
        return ordered, True
