"""Cost-based dynamic-programming planner (Section 5).

The planner searches the complete plan space — including bushy plans — by:

* subset DP over ``And`` chains (conjunction is commutative/associative),
* interval DP over ``Concat`` chains (order fixed, bracketing free),
* per-node physical operator selection (Sort-Merge vs Left/Right-Probe,
  MaterializeNot vs ProbeNot, SegGenFilter vs SegGenIndexing, WConcat
  fusion),

with the cardinality and cost models of Table 1 evaluated on search-space
*range sizes* and query-time sampled selectivities.  Reference dependencies
are honoured: a probed side may consume references bound by its anchor;
otherwise conditions lift into Filters (Figure 6) whose cost and
selectivity the model accounts for.

``allow_probes=False`` yields the paper's "T-ReX Batch" executor
(Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PlanError
from repro.testing import faults as _faults
from repro.exec.base import PhysicalOperator
from repro.exec.vector import compiles_statically
from repro.lang.query import Query, VarDef
from repro.optimizer import costmodel as CM
from repro.optimizer.construct import (LEAF_FILTER, LEAF_INDEXING,
                                       LEFT_PROBE, NOT_MATERIALIZE,
                                       NOT_PROBE, RIGHT_PROBE, SORT_MERGE,
                                       BuildResult, Construction,
                                       validate_scoping, var_is_indexable)
from repro.optimizer.cost_params import (DEFAULT_COST_PARAMS, CostParams,
                                         expected_distinct)
from repro.optimizer.stats import (StatsCatalog, check_deadlines,
                                   collect_stats)
from repro.plan.logical import (LAnd, LConcat, LKleene, LNot, LOr, LVar,
                                LogicalNode, build_logical_plan)
from repro.timeseries.series import Series

#: Guard against degenerate cardinalities.
_MIN_CARD = 1e-6


@dataclass(frozen=True)
class PendingLift:
    """Cost-model view of a condition lifted out of an unfiltered leaf."""

    owner: str
    per_row_cost: float
    selectivity: float
    needed: FrozenSet[str]


@dataclass
class Candidate:
    """One costed plan alternative for a logical (sub-)node."""

    cost: float
    out_card: float
    pending: Tuple[PendingLift, ...]
    provides_publish: FrozenSet[str]
    build: Callable[[], BuildResult]

    @property
    def total_cost(self) -> float:
        return self.cost


class CostBasedPlanner:
    """Dynamic-programming plan search with the Table 1 cost model."""

    def __init__(self, allow_probes: bool = True, sharing: str = "auto",
                 params: CostParams = DEFAULT_COST_PARAMS,
                 num_series: int = 5, segments_per_var: int = 64,
                 seed: int = 7, use_wconcat: bool = True):
        self.allow_probes = allow_probes
        self.sharing = sharing
        self.params = params
        self.num_series = num_series
        self.segments_per_var = segments_per_var
        self.seed = seed
        self.use_wconcat = use_wconcat
        # Populated per plan() call.
        self._stats: Optional[StatsCatalog] = None
        self._series: Optional[Series] = None
        self._n = 0
        self._query: Optional[Query] = None
        self._construction: Optional[Construction] = None
        self._memo: Dict[tuple, Candidate] = {}
        self._bounds_cache: Dict[int, CM.Bounds] = {}
        self.last_estimated_cost: float = 0.0
        self.last_stats: Optional[StatsCatalog] = None
        # Absolute perf_counter() budgets for one plan() call; the DP
        # consults them every _BUDGET_STRIDE _optimize() entries so a
        # pathological search cannot outlive the engine's deadline.
        self._deadline: Optional[float] = None
        self._planning_deadline: Optional[float] = None
        self._budget_ticks = 0

    #: _optimize() entries between deadline checks.
    _BUDGET_STRIDE = 64

    # -- entry points ---------------------------------------------------------

    def plan(self, query: Query, logical: Optional[LogicalNode],
             series, deadline: Optional[float] = None,
             planning_deadline: Optional[float] = None) -> PhysicalOperator:
        if logical is None:
            logical = build_logical_plan(query)
        validate_scoping(query, logical)
        series_list = [series] if isinstance(series, Series) else list(series)
        if not series_list:
            raise PlanError("planner needs at least one series")
        candidate = self.optimize(query, logical, series_list,
                                  deadline=deadline,
                                  planning_deadline=planning_deadline)
        result = candidate.build()
        result = self._construction.apply_filter(result, logical.window)
        if result.lifted:
            raise PlanError("unresolvable lifted conditions remain at root")
        if result.op.requires:
            raise PlanError(f"plan root still requires "
                            f"{sorted(result.op.requires)}")
        from repro.optimizer.validator import validate_plan
        violations = validate_plan(result.op)
        if violations:
            raise PlanError("invalid physical plan: "
                            + "; ".join(violations))
        return result.op

    def optimize(self, query: Query, logical: LogicalNode,
                 series_list: Sequence[Series],
                 deadline: Optional[float] = None,
                 planning_deadline: Optional[float] = None) -> Candidate:
        """Run the DP and return the best root candidate (with its cost)."""
        if _faults.ENABLED:
            _faults.fire("planner.dp")
        self._deadline = deadline
        self._planning_deadline = planning_deadline
        self._budget_ticks = 0
        self._query = query
        self._stats = collect_stats(
            query, series_list, num_series=self.num_series,
            segments_per_var=self.segments_per_var, seed=self.seed,
            use_index=self.sharing != "off",
            deadline=deadline, planning_deadline=planning_deadline)
        self.last_stats = self._stats
        rng = np.random.default_rng(self.seed)
        index = int(rng.integers(0, len(series_list)))
        self._series = series_list[index]
        self._n = max(self._stats.series_length, 2)
        self._construction = Construction(
            query, sharing="off" if self.sharing == "off" else "on")
        self._memo = {}
        self._bounds_cache = {}
        candidate = self._optimize(logical, float(self._n), float(self._n),
                                   frozenset())
        # Account for any filter applied at the very root.
        for lift in candidate.pending:
            candidate = Candidate(
                candidate.cost + candidate.out_card * lift.per_row_cost,
                candidate.out_card * lift.selectivity, (),
                candidate.provides_publish, candidate.build)
        self.last_estimated_cost = candidate.cost
        return candidate

    def estimate_plan_cost(self, query: Query, logical: LogicalNode,
                           series_list: Sequence[Series]) -> float:
        """Estimated cost of the best plan (used by the NDCG experiment)."""
        return self.optimize(query, logical, series_list).cost

    # -- shared helpers -------------------------------------------------------

    def _duration_bounds(self, node: LogicalNode) -> CM.Bounds:
        bounds = self._bounds_cache.get(node.node_id)
        if bounds is None:
            bounds = CM.node_duration_bounds(node, self._series)
            self._bounds_cache[node.node_id] = bounds
        return bounds

    def _window_bounds(self, node: LogicalNode) -> CM.Bounds:
        return CM.window_duration_bounds(node.window, self._series)

    def _sel_w(self, node: LogicalNode, ls: float, le: float,
               lse: float) -> float:
        return max(CM.boxed_pair_fraction(ls, le, lse,
                                          self._window_bounds(node)),
                   1e-9)

    def _resolve_pending(self, candidate: Candidate,
                         available: FrozenSet[str],
                         window) -> Candidate:
        """Fold resolvable lifted conditions into a Filter cost-wise and
        construction-wise."""
        if not candidate.pending:
            return candidate
        bound = candidate.provides_publish | available
        ready = [p for p in candidate.pending if p.needed <= bound]
        if not ready:
            return candidate
        waiting = tuple(p for p in candidate.pending if not p.needed <= bound)
        cost = candidate.cost
        card = candidate.out_card
        for lift in ready:
            cost += card * lift.per_row_cost
            card *= lift.selectivity
        construction = self._construction
        inner_build = candidate.build

        def build() -> BuildResult:
            return construction.maybe_resolve_lifts(inner_build(), available,
                                                    window)

        return Candidate(cost, max(card, _MIN_CARD), waiting,
                         candidate.provides_publish, build)

    # -- the DP --------------------------------------------------------------

    def _optimize(self, node: LogicalNode, ls: float, le: float,
                  available: FrozenSet[str]) -> Candidate:
        self._budget_ticks += 1
        if self._budget_ticks % self._BUDGET_STRIDE == 0 and (
                self._deadline is not None
                or self._planning_deadline is not None):
            check_deadlines(self._deadline, self._planning_deadline,
                            where="cost-based DP")
        key = (node.node_id, int(ls), int(le), available)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        if isinstance(node, LVar):
            candidate = self._optimize_leaf(node, ls, le, available)
        elif isinstance(node, LAnd):
            candidate = self._optimize_and(node, ls, le, available)
        elif isinstance(node, LConcat):
            candidate = self._optimize_concat(node, ls, le, available)
        elif isinstance(node, LOr):
            candidate = self._optimize_or(node, ls, le, available)
        elif isinstance(node, LNot):
            candidate = self._optimize_not(node, ls, le, available)
        elif isinstance(node, LKleene):
            candidate = self._optimize_kleene(node, ls, le, available)
        else:
            raise PlanError(f"unknown logical node {node!r}")
        self._memo[key] = candidate
        return candidate

    # -- leaves --------------------------------------------------------------

    def _leaf_eval_costs(self, var: VarDef,
                         lse: float) -> Tuple[float, float, float, bool]:
        """(direct per-row, index build, indexed per-row, indexable)."""
        params = self.params
        registry = self._query.registry
        avg_len = self._stats.avg_length(var.name)
        direct = params.expr_eval_cost
        build = 0.0
        indexed = params.expr_eval_cost
        indexable = var_is_indexable(var, self._query)
        for call in var.aggregate_calls():
            agg = registry.get(call.name)
            direct += params.f_delta(agg, avg_len)
            can_index = (agg.supports_index
                         and not getattr(agg, "needs_series_context", False)
                         and all(ref.variable in (None, var.name)
                                 for ref in call.columns))
            if can_index:
                build += params.f_ind(agg, lse)
                indexed += params.f_lookup(agg, avg_len)
            else:
                indexed += params.f_delta(agg, avg_len)
        return direct, build, indexed, indexable

    def _optimize_leaf(self, node: LVar, ls: float, le: float,
                       available: FrozenSet[str]) -> Candidate:
        var = node.var
        params = self.params
        construction = self._construction
        lse = CM.lse_estimate(ls, le, self._n)
        sel_w = self._sel_w(node, ls, le, lse)
        c_in = max(ls * le * sel_w, _MIN_CARD)
        publishes = construction.publish & {var.name}

        if var.condition is None:
            cost = params.f_op("SegGenWindow", 2 * c_in)
            return Candidate(cost, c_in, (), publishes,
                             lambda: construction.leaf(node))

        satisfiable = set(var.external_refs) <= set(available)
        if not satisfiable:
            # Lifted leaf: SegGenWindow now, Filter later.
            direct, _build, _indexed, _ = self._leaf_eval_costs(var, lse)
            needed = frozenset(var.external_refs) | {var.name}
            pending = PendingLift(var.name, direct,
                                  self._stats.selectivity(var.name), needed)
            cost = params.f_op("SegGenWindow", 2 * c_in)
            return Candidate(cost, c_in, (pending,),
                             publishes | {var.name},
                             lambda: construction.leaf(node, lift=True))

        selectivity = self._stats.selectivity(var.name)
        c_out = max(c_in * selectivity, _MIN_CARD)
        direct, build, indexed, indexable = self._leaf_eval_costs(var, lse)
        # Per-path vector discount: batch compilation is capability-
        # gated per provider (e.g. avg() only batches on the indexed
        # path), so each side earns the discount independently.
        registry = self._query.registry
        if compiles_statically(var, "direct", registry):
            direct *= params.vector_leaf_discount
        filter_cost = params.f_op("SegGenFilter", c_in + c_out) \
            + c_in * direct
        options: List[Tuple[float, str]] = [(filter_cost, LEAF_FILTER)]
        if indexable and self.sharing != "off":
            if compiles_statically(var, "indexed", registry):
                indexed *= params.vector_leaf_discount
            index_cost = params.f_op("SegGenIndexing", c_in + c_out) \
                + build + c_in * indexed
            options.append((index_cost, LEAF_INDEXING))
        if self.sharing == "on" and indexable:
            # Paper rule: always index when eligible and sharing is forced.
            options = [opt for opt in options if opt[1] == LEAF_INDEXING]
        cost, impl = min(options, key=lambda pair: pair[0])
        return Candidate(cost, c_out, (), publishes,
                         lambda impl=impl: construction.leaf(node, impl=impl))

    # -- And chains ----------------------------------------------------------

    def _optimize_and(self, node: LAnd, ls: float, le: float,
                      available: FrozenSet[str]) -> Candidate:
        params = self.params
        construction = self._construction
        lse = CM.lse_estimate(ls, le, self._n)
        sel_w = self._sel_w(node, ls, le, lse)
        box = max(ls * le * sel_w, _MIN_CARD)
        parts = node.parts
        memo: Dict[Tuple[FrozenSet[int], FrozenSet[str]], Candidate] = {}

        def provides_of(indices: FrozenSet[int]) -> FrozenSet[str]:
            names: set = set()
            for i in indices:
                names |= parts[i].provides
            return frozenset(names) & construction.publish

        def solve(indices: FrozenSet[int],
                  avail: FrozenSet[str]) -> Candidate:
            key = (indices, avail)
            hit = memo.get(key)
            if hit is not None:
                return hit
            if len(indices) == 1:
                (only,) = indices
                result = self._resolve_pending(
                    self._optimize(parts[only], ls, le, avail), avail,
                    node.window)
                memo[key] = result
                return result
            best: Optional[Candidate] = None
            members = sorted(indices)
            # Enumerate bipartitions: the lowest member is pinned to the
            # left side (And is commutative, probes cover both directions),
            # and the full mask is excluded so the right side is non-empty.
            for mask in range((1 << (len(members) - 1)) - 1):
                left_set = frozenset(
                    members[i + 1] for i in range(len(members) - 1)
                    if mask & (1 << i)) | {members[0]}
                right_set = indices - left_set
                for choice in self._and_combinations(
                        node, left_set, right_set, ls, le, sel_w, box,
                        avail, solve, provides_of):
                    resolved = self._resolve_pending(choice, avail,
                                                     node.window)
                    if best is None or resolved.cost < best.cost:
                        best = resolved
            if best is None:
                raise PlanError("no valid And combination found")
            memo[key] = best
            return best

        return solve(frozenset(range(len(parts))), available)

    def _and_combinations(self, node, left_set, right_set, ls, le, sel_w,
                          box, avail, solve, provides_of):
        params = self.params
        construction = self._construction
        for anchor_set, probe_set, probe_impl in (
                (left_set, right_set, RIGHT_PROBE),
                (right_set, left_set, LEFT_PROBE)):
            # Sort-Merge (emitted once, from the left/right loop's first
            # iteration only to avoid duplicates).
            if probe_impl == RIGHT_PROBE:
                left = solve(left_set, avail)
                right = solve(right_set, avail)
                c_out = max(left.out_card * right.out_card / box, _MIN_CARD)
                cost = params.f_op(
                    "SortMergeAnd",
                    left.out_card + right.out_card + c_out) \
                    + left.cost + right.cost
                yield self._make_binary_and(node, left, right, SORT_MERGE,
                                            cost, c_out, provides_of,
                                            left_set, right_set)
            if not self.allow_probes:
                continue
            anchor = solve(anchor_set, avail)
            probe_avail = avail | anchor.provides_publish
            probe_full = solve(probe_set, probe_avail)
            probe_unit = self._optimize_subset_at(node, probe_set, 1.0, 1.0,
                                                  probe_avail, solve)
            c_out = max(anchor.out_card * probe_full.out_card / box,
                        _MIN_CARD)
            cost = params.f_op(
                f"{'Right' if probe_impl == RIGHT_PROBE else 'Left'}ProbeAnd",
                anchor.out_card + probe_unit.out_card + c_out) \
                + anchor.cost \
                + anchor.out_card * (probe_unit.cost / max(sel_w, 1e-9)
                                     + params.probe_overhead)
            if probe_impl == RIGHT_PROBE:
                yield self._make_binary_and(node, anchor, probe_unit,
                                            RIGHT_PROBE, cost, c_out,
                                            provides_of, left_set, right_set)
            else:
                yield self._make_binary_and(node, probe_unit, anchor,
                                            LEFT_PROBE, cost, c_out,
                                            provides_of, left_set, right_set)

    def _optimize_subset_at(self, node, indices, ls, le, avail, solve):
        """Optimize an And subset at probe-space range sizes (1, 1)."""
        if len(indices) == 1:
            (only,) = indices
            return self._resolve_pending(
                self._optimize(node.parts[only], ls, le, avail), avail,
                node.window)
        # For multi-part probe sides, re-run the subset DP at the probe
        # space; reuse solve() shape by recursing through _optimize_and-like
        # logic — approximate with a fresh nested solve at (1,1) using the
        # node-level helper.
        sub = _AndSubset(self, node, indices, avail)
        return sub.solve(ls, le)

    def _make_binary_and(self, node, left: Candidate, right: Candidate,
                         impl: str, cost: float, c_out: float, provides_of,
                         left_set, right_set) -> Candidate:
        construction = self._construction
        pending = left.pending + right.pending
        provides = left.provides_publish | right.provides_publish

        def build() -> BuildResult:
            return construction.combine_and(left.build(), right.build(),
                                            node.window, impl)

        return Candidate(cost, c_out, pending, provides, build)

    # -- Concat chains -------------------------------------------------------

    def _optimize_concat(self, node: LConcat, ls: float, le: float,
                         available: FrozenSet[str]) -> Candidate:
        construction = self._construction
        parts = node.parts
        gaps = node.gaps
        relaxed_window = node.window.relax_lower()
        memo: Dict[tuple, Candidate] = {}

        def is_pad(index: int) -> bool:
            part = parts[index]
            return (isinstance(part, LVar) and part.var.condition is None
                    and not part.var.external_refs
                    and part.var.name not in construction.publish)

        def interval_bounds(i: int, j: int) -> CM.Bounds:
            lo = 0.0
            hi = 0.0
            for k in range(i, j + 1):
                part_lo, part_hi = self._duration_bounds(parts[k])
                lo += part_lo
                hi += part_hi
                if k < j:
                    lo += gaps[k]
                    hi += gaps[k]
            return lo, hi

        def solve(i: int, j: int, sub_ls: float, sub_le: float,
                  avail: FrozenSet[str], top: bool) -> Candidate:
            window = node.window if top else relaxed_window
            key = (i, j, int(sub_ls), int(sub_le), avail, top)
            hit = memo.get(key)
            if hit is not None:
                return hit
            if i == j:
                result = self._resolve_pending(
                    self._optimize(parts[i], sub_ls, sub_le, avail), avail,
                    window)
                memo[key] = result
                return result
            lse = CM.lse_estimate(sub_ls, sub_le, self._n)
            window_bounds = CM.window_duration_bounds(window, self._series)
            best: Optional[Candidate] = None
            for split in range(i, j):
                for choice in self._concat_splits(
                        node, i, j, split, sub_ls, sub_le, lse, window,
                        window_bounds, avail, solve, interval_bounds,
                        is_pad):
                    resolved = self._resolve_pending(choice, avail, window)
                    if best is None or resolved.cost < best.cost:
                        best = resolved
            if best is None:
                raise PlanError("no valid Concat split found")
            memo[key] = best
            return best

        return solve(0, len(parts) - 1, ls, le, available, True)

    def _concat_splits(self, node, i, j, split, ls, le, lse, window,
                       window_bounds, avail, solve, interval_bounds, is_pad):
        params = self.params
        construction = self._construction
        gap = node.gaps[split]
        left_bounds = interval_bounds(i, split)
        right_bounds = interval_bounds(split + 1, j)
        cond_sel = CM.concat_window_selectivity(window_bounds, left_bounds,
                                                right_bounds, gap, lse)
        cond_sel = max(cond_sel, 1e-9)

        def interval_refs(lo_idx: int, hi_idx: int) -> FrozenSet[str]:
            provides: set = set()
            needs: set = set()
            for k in range(lo_idx, hi_idx + 1):
                provides |= node.parts[k].provides
                needs |= node.parts[k].requires
            return frozenset(needs - provides)

        left_full = solve(i, split, ls, lse, avail, False)
        right_full = solve(split + 1, j, lse, le, avail, False)
        c_out = max(left_full.out_card * right_full.out_card / max(lse, 1.0)
                    * cond_sel, _MIN_CARD)

        def build_sm(lc=left_full, rc=right_full):
            return construction.combine_concat(lc.build(), rc.build(), gap,
                                               window, SORT_MERGE)

        # Sort-Merge.
        sm_cost = params.f_op("SortMergeConcat",
                              left_full.out_card + right_full.out_card
                              + c_out) + left_full.cost + right_full.cost
        yield Candidate(sm_cost, c_out,
                        left_full.pending + right_full.pending,
                        left_full.provides_publish
                        | right_full.provides_publish, build_sm)

        if self.allow_probes:
            # Right probe: enumerate left, probe right at (1, le).
            probe_avail = avail | left_full.provides_publish
            right_probe = solve(split + 1, j, 1.0, le, probe_avail, False)
            # The D() caching discount only applies when probe results can
            # be reused across anchors, i.e. the probed side consumes no
            # references from the anchor (Section 5.1).
            if interval_refs(split + 1, j) & left_full.provides_publish:
                distinct = left_full.out_card
            else:
                distinct = expected_distinct(left_full.out_card, lse)
            rp_cost = params.f_op(
                "RightProbeConcat",
                left_full.out_card + right_probe.out_card + c_out) \
                + left_full.cost \
                + distinct * (right_probe.cost + params.probe_overhead)

            def build_rp(lc=left_full, rc=right_probe):
                return construction.combine_concat(lc.build(), rc.build(),
                                                   gap, window, RIGHT_PROBE)

            yield Candidate(rp_cost, c_out,
                            left_full.pending + right_probe.pending,
                            left_full.provides_publish
                            | right_probe.provides_publish, build_rp)

            # Left probe: enumerate right, probe left at (ls, 1).
            probe_avail = avail | right_full.provides_publish
            left_probe = solve(i, split, ls, 1.0, probe_avail, False)
            if interval_refs(i, split) & right_full.provides_publish:
                distinct = right_full.out_card
            else:
                distinct = expected_distinct(right_full.out_card, lse)
            lp_cost = params.f_op(
                "LeftProbeConcat",
                left_probe.out_card + right_full.out_card + c_out) \
                + right_full.cost \
                + distinct * (left_probe.cost + params.probe_overhead)

            def build_lp(lc=left_probe, rc=right_full):
                return construction.combine_concat(lc.build(), rc.build(),
                                                   gap, window, LEFT_PROBE)

            yield Candidate(lp_cost, c_out,
                            left_probe.pending + right_full.pending,
                            left_probe.provides_publish
                            | right_full.provides_publish, build_lp)

        # WConcat fusion when the boundary part is a pure pad.
        if self.use_wconcat:
            if is_pad(split) and split > i:
                yield from self._wconcat_candidate(
                    node, i, j, split, ls, le, lse, window, window_bounds,
                    avail, solve, interval_bounds)
            if is_pad(split + 1) and split + 1 < j:
                yield from self._wconcat_candidate(
                    node, i, j, split + 1, ls, le, lse, window,
                    window_bounds, avail, solve, interval_bounds)

    def _wconcat_candidate(self, node, i, j, pad_index, ls, le, lse, window,
                           window_bounds, avail, solve, interval_bounds):
        """Fuse parts[i..pad_index-1] · PAD · parts[pad_index+1..j]."""
        if pad_index <= i or pad_index >= j:
            return
        params = self.params
        construction = self._construction
        pad = node.parts[pad_index]
        pad_bounds = self._duration_bounds(pad)
        left = solve(i, pad_index - 1, ls, lse, avail, False)
        right = solve(pad_index + 1, j, lse, le, avail, False)
        left_bounds = interval_bounds(i, pad_index - 1)
        right_bounds = interval_bounds(pad_index + 1, j)
        pad_width = min(pad_bounds[1], lse) - pad_bounds[0] + 1
        pad_width = max(pad_width, 1.0)
        cond_sel = CM.concat_window_selectivity(
            window_bounds,
            (left_bounds[0] + pad_bounds[0],
             left_bounds[1] + min(pad_bounds[1], lse)),
            right_bounds, 0, lse)
        c_out = max(left.out_card * right.out_card * pad_width
                    / max(lse, 1.0) * max(cond_sel, 1e-9), _MIN_CARD)
        cost = params.f_op("WildWindowConcat",
                           left.out_card + right.out_card + c_out) \
            + left.cost + right.cost

        gap_left = node.gaps[pad_index - 1]
        gap_right = node.gaps[pad_index]

        def build(lc=left, rc=right):
            return construction.wild_concat(lc.build(), rc.build(),
                                            pad.window, window,
                                            gap_left, gap_right)

        yield Candidate(cost, c_out, left.pending + right.pending,
                        left.provides_publish | right.provides_publish,
                        build)

    # -- Or / Not / Kleene ---------------------------------------------------

    def _optimize_or(self, node: LOr, ls: float, le: float,
                     available: FrozenSet[str]) -> Candidate:
        params = self.params
        construction = self._construction
        lse = CM.lse_estimate(ls, le, self._n)
        window_bounds = self._window_bounds(node)
        result: Optional[Candidate] = None
        for part in node.parts:
            child = self._resolve_pending(
                self._optimize(part, ls, le, available), available,
                node.window)
            arm_sel = CM.containment_selectivity(
                window_bounds, self._duration_bounds(part), lse)
            arm_card = child.out_card * max(arm_sel, 1e-9)
            if result is None:
                result = Candidate(child.cost, arm_card, child.pending,
                                   child.provides_publish, child.build)
                continue
            c_out = result.out_card + arm_card
            cost = params.f_op("SortMergeOr",
                               result.out_card + arm_card + c_out) \
                + result.cost + child.cost
            prev = result

            def build(lc=prev, rc=child):
                return construction.combine_or(lc.build(), rc.build(),
                                               node.window)

            result = Candidate(cost, max(c_out, _MIN_CARD),
                               prev.pending + child.pending,
                               prev.provides_publish
                               | child.provides_publish, build)
        assert result is not None
        return result

    def _optimize_not(self, node: LNot, ls: float, le: float,
                      available: FrozenSet[str]) -> Candidate:
        params = self.params
        construction = self._construction
        lse = CM.lse_estimate(ls, le, self._n)
        sel_w = self._sel_w(node, ls, le, lse)
        box = max(ls * le * sel_w, _MIN_CARD)

        child_full = self._optimize(node.child, ls, le, available)
        if child_full.pending:
            raise PlanError("conditions cannot lift out of a Not")
        c_in = child_full.out_card
        if _contains_concat(node.child):
            c_in = expected_distinct(c_in, box)
        c_out = max(box - c_in, _MIN_CARD)

        mat_cost = params.f_op("MaterializeNot", c_in + c_out) \
            + child_full.cost

        child_unit = self._optimize(node.child, 1.0, 1.0, available)
        unit_in = max(child_unit.out_card, 1.0)
        probe_cost = params.f_op("ProbeNot", child_unit.out_card + c_out) \
            + box * (child_unit.cost / unit_in + params.probe_overhead)

        if probe_cost < mat_cost and self.allow_probes:
            cost, impl, child = probe_cost, NOT_PROBE, child_unit
        else:
            cost, impl, child = mat_cost, NOT_MATERIALIZE, child_full

        def build(ch=child, impl=impl):
            return construction.build_not(ch.build(), node.window, impl)

        return Candidate(cost, c_out, (), frozenset(), build)

    def _optimize_kleene(self, node: LKleene, ls: float, le: float,
                         available: FrozenSet[str]) -> Candidate:
        params = self.params
        construction = self._construction
        lse = CM.lse_estimate(ls, le, self._n)
        child = self._optimize(node.child, lse, lse, available)
        if child.pending:
            raise PlanError("conditions cannot lift out of a Kleene body")
        c_in = child.out_card
        window_bounds = self._window_bounds(node)
        child_bounds = self._duration_bounds(node.child)
        sel1 = max(CM.containment_selectivity(window_bounds, child_bounds,
                                              lse), 1e-9)
        sel2 = max(CM.concat_window_selectivity(window_bounds, child_bounds,
                                                child_bounds, node.gap, lse),
                   1e-9)
        ratio = (ls * le) / max(lse * lse, 1.0)
        c_out = c_in * ratio * sel1 + (c_in ** 2) * ratio / max(lse, 1.0) \
            * sel2
        c_out = max(c_out, _MIN_CARD)
        cost = params.f_op("MaterializeKleene", c_in + c_out) + child.cost

        def build(ch=child):
            return construction.build_kleene(ch.build(), node)

        return Candidate(cost, c_out, (), frozenset(), build)


class _AndSubset:
    """Nested And-subset DP evaluated at probe-space range sizes."""

    def __init__(self, planner: CostBasedPlanner, node: LAnd,
                 indices: FrozenSet[int], avail: FrozenSet[str]):
        self.planner = planner
        self.node = node
        self.indices = indices
        self.avail = avail

    def solve(self, ls: float, le: float) -> Candidate:
        planner = self.planner
        node = self.node
        params = planner.params
        construction = planner._construction
        lse = CM.lse_estimate(ls, le, planner._n)
        sel_w = planner._sel_w(node, ls, le, lse)
        box = max(ls * le * sel_w, _MIN_CARD)
        members = sorted(self.indices)
        # Probe-space subsets are small; fold left-deep with RightProbeAnd
        # (all children probed at the exact segment anyway).
        result = planner._resolve_pending(
            planner._optimize(node.parts[members[0]], ls, le, self.avail),
            self.avail, node.window)
        for index in members[1:]:
            avail = self.avail | result.provides_publish
            nxt = planner._resolve_pending(
                planner._optimize(node.parts[index], ls, le, avail), avail,
                node.window)
            c_out = max(result.out_card * nxt.out_card / box, _MIN_CARD)
            impl = RIGHT_PROBE if planner.allow_probes else SORT_MERGE
            cost = params.f_op(
                "RightProbeAnd" if impl == RIGHT_PROBE else "SortMergeAnd",
                result.out_card + nxt.out_card + c_out) \
                + result.cost + nxt.cost
            prev = result

            def build(lc=prev, rc=nxt, impl=impl):
                return construction.combine_and(lc.build(), rc.build(),
                                                node.window, impl)

            result = Candidate(cost, c_out, prev.pending + nxt.pending,
                               prev.provides_publish | nxt.provides_publish,
                               build)
        return result


def _contains_concat(node: LogicalNode) -> bool:
    from repro.plan.logical import walk
    return any(isinstance(sub, (LConcat, LKleene)) for sub in walk(node))
