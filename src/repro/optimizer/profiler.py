"""Offline cost-parameter profiling (Appendix D.1/D.2, Tables 5 & 6).

``profile_operators`` measures each physical operator on synthetic
uniform-random segment sets and fits the one-parameter linear cost function
of Equation 1 by least squares through the origin.  ``profile_aggregates``
does the same for aggregate indexing/lookup/direct-evaluation costs under
their declared shapes.  ``profile_all`` returns a ready
:class:`~repro.optimizer.cost_params.CostParams` so installations can
re-bootstrap the cost model for their own machine.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.aggregates.registry import DEFAULT_REGISTRY, AggregateRegistry
from repro.exec.base import Env, ExecContext, PhysicalOperator
from repro.exec.and_or import (LeftProbeAnd, RightProbeAnd, SortMergeAnd,
                               SortMergeOr)
from repro.exec.concat import (LeftProbeConcat, RightProbeConcat,
                               SortMergeConcat, WildWindowConcat)
from repro.exec.filter_op import FilterOp
from repro.exec.kleene import MaterializeKleene
from repro.exec.not_op import MaterializeNot, ProbeNot
from repro.exec.seggen import SegGenFilter, SegGenIndexing, SegGenWindow
from repro.lang import expr as E
from repro.lang.query import VarDef
from repro.lang.windows import WindowConjunction, WindowSpec
from repro.optimizer.cost_params import CostParams
from repro.plan.search_space import SearchSpace
from repro.timeseries.segment import Segment
from repro.timeseries.series import Series


class _StubSource(PhysicalOperator):
    """Leaf that replays a fixed synthetic segment list."""

    name = "Stub"

    def __init__(self, segments: Sequence[Tuple[int, int]]):
        super().__init__(WindowConjunction.wild())
        self._segments = [Segment(s, e) for s, e in segments]

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterable[Segment]:
        for segment in self._segments:
            if sp.contains(segment.start, segment.end):
                yield segment


def _uniform_series(n: int, seed: int = 0) -> Series:
    rng = np.random.default_rng(seed)
    return Series({"tstamp": np.arange(float(n)),
                   "val": rng.uniform(0.0, 100.0, n)}, "tstamp")


def _uniform_segments(rng: np.random.Generator, count: int, n: int,
                      max_len: int = 12) -> List[Tuple[int, int]]:
    starts = rng.integers(0, max(n - max_len, 1), size=count)
    lengths = rng.integers(0, max_len, size=count)
    return sorted({(int(s), int(min(s + l, n - 1)))
                   for s, l in zip(starts, lengths)})


def _fit_linear(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope through the origin."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    denominator = float(np.dot(xs, xs))
    if denominator <= 0:
        return 0.0
    return max(float(np.dot(xs, ys) / denominator), 0.0)


def _time_eval(op: PhysicalOperator, series: Series,
               repeats: int = 3) -> Tuple[float, int]:
    """(best wall time in ns, output cardinality) over the full space."""
    sp = SearchSpace.full(len(series))
    best = float("inf")
    out = 0
    for _ in range(repeats):
        ctx = ExecContext(series)
        t0 = time.perf_counter_ns()
        out = sum(1 for _ in op.eval(ctx, sp, {}))
        best = min(best, time.perf_counter_ns() - t0)
    return best, out


def profile_operators(sizes: Sequence[int] = (200, 400, 800),
                      seed: int = 11) -> Dict[str, float]:
    """Fit ``w`` in f_op per physical operator (regenerates Table 5)."""
    rng = np.random.default_rng(seed)
    wild = WindowConjunction.wild()
    samples: Dict[str, List[Tuple[float, float]]] = {}

    def record(name: str, cardinality_sum: float, nanos: float) -> None:
        samples.setdefault(name, []).append((cardinality_sum, nanos))

    for n in sizes:
        series = _uniform_series(n, seed)
        count = max(n // 2, 32)
        lefts = _uniform_segments(rng, count, n)
        rights = _uniform_segments(rng, count, n)

        # Leaves.
        window = WindowConjunction([WindowSpec.point(0, 10)])
        op = SegGenWindow(window, "W")
        nanos, out = _time_eval(op, series)
        record("SegGenWindow", out + out, nanos)

        var = VarDef("X", True, (WindowSpec.point(0, 10),),
                     E.Binary(">", E.PointAccess("last",
                                                 E.ColumnRef(None, "val")),
                              E.Literal(50.0)), frozenset())
        for cls, label in ((SegGenFilter, "SegGenFilter"),
                           (SegGenIndexing, "SegGenIndexing")):
            op = cls(var, window)
            nanos, out = _time_eval(op, series)
            record(label, (out + 11 * n) / 1.0, nanos)

        # Binary operators over stubbed inputs.
        pairs = [
            (SortMergeConcat(_StubSource(lefts), _StubSource(rights), 0,
                             wild), "SortMergeConcat", True),
            (RightProbeConcat(_StubSource(lefts), _StubSource(rights), 0,
                              wild), "RightProbeConcat", False),
            (LeftProbeConcat(_StubSource(lefts), _StubSource(rights), 0,
                             wild), "LeftProbeConcat", False),
            (SortMergeAnd(_StubSource(lefts), _StubSource(lefts), wild),
             "SortMergeAnd", True),
            (RightProbeAnd(_StubSource(lefts), _StubSource(lefts), wild),
             "RightProbeAnd", False),
            (LeftProbeAnd(_StubSource(lefts), _StubSource(lefts), wild),
             "LeftProbeAnd", False),
            (SortMergeOr(_StubSource(lefts), _StubSource(rights), wild),
             "SortMergeOr", True),
            (WildWindowConcat(_StubSource(lefts), _StubSource(rights),
                              wild, wild), "WildWindowConcat", True),
        ]
        for op, label, both in pairs:
            nanos, out = _time_eval(op, series)
            if both:
                record(label, len(lefts) + len(rights) + out, nanos)
            else:
                record(label, len(lefts) + out, nanos)

        # Unary operators.
        op = MaterializeNot(_StubSource(lefts),
                            WindowConjunction([WindowSpec.point(0, 10)]))
        nanos, out = _time_eval(op, series)
        record("MaterializeNot", len(lefts) + out, nanos)

        op = ProbeNot(_StubSource(lefts),
                      WindowConjunction([WindowSpec.point(0, 3)]))
        nanos, out = _time_eval(op, series)
        record("ProbeNot", len(lefts) + out, nanos)

        op = MaterializeKleene(_StubSource(lefts), 1, 3, 0,
                               WindowConjunction([WindowSpec.point(0, 30)]))
        nanos, out = _time_eval(op, series)
        record("MaterializeKleene", len(lefts) + out, nanos)

        op = FilterOp(_StubSource(lefts),
                      [("X", E.Binary(">", E.Literal(1.0),
                                      E.Literal(0.0)))], wild)
        nanos, out = _time_eval(op, series)
        record("Filter", len(lefts) + out, nanos)

    return {name: _fit_linear([x for x, _ in points],
                              [y for _, y in points])
            for name, points in samples.items()}


def profile_aggregates(registry: AggregateRegistry = DEFAULT_REGISTRY,
                       names: Optional[Sequence[str]] = None,
                       sizes: Sequence[int] = (200, 400, 800),
                       seed: int = 13) \
        -> Dict[str, Tuple[float, float, float]]:
    """Fit (w_ind, w_lookup, w_direct) per aggregate (regenerates Table 6)."""
    from repro.optimizer.cost_params import shape_value

    if names is None:
        names = ["linear_regression_r2", "mann_kendall_test",
                 "equal_up_down_ticks", "sum", "avg", "min", "max",
                 "stddev"]
    rng = np.random.default_rng(seed)
    results: Dict[str, Tuple[float, float, float]] = {}
    for name in names:
        agg = registry.get(name)
        ind_points: List[Tuple[float, float]] = []
        lookup_points: List[Tuple[float, float]] = []
        direct_points: List[Tuple[float, float]] = []
        for n in sizes:
            series = _uniform_series(n, seed)
            columns = [series.column("tstamp"), series.column("val")]
            columns = columns[:agg.num_columns]
            if agg.supports_index:
                t0 = time.perf_counter_ns()
                index = agg.build_index(columns, [])
                build_ns = time.perf_counter_ns() - t0
                ind_points.append((shape_value(agg.index_cost_shape, n),
                                   build_ns))
                segments = _uniform_segments(rng, 64, n)
                t0 = time.perf_counter_ns()
                for start, end in segments:
                    index.lookup(start, end)
                per = (time.perf_counter_ns() - t0) / max(len(segments), 1)
                avg_len = float(np.mean([e - s + 1 for s, e in segments]))
                lookup_points.append(
                    (shape_value(agg.lookup_cost_shape, avg_len), per))
            segments = _uniform_segments(rng, 64, n)
            t0 = time.perf_counter_ns()
            for start, end in segments:
                arrays = [col[start:end + 1] for col in columns]
                agg.evaluate(arrays, [])
            per = (time.perf_counter_ns() - t0) / max(len(segments), 1)
            avg_len = float(np.mean([e - s + 1 for s, e in segments]))
            direct_points.append(
                (shape_value(agg.direct_cost_shape, avg_len), per))
        w_ind = _fit_linear(*zip(*[(x, y) for x, y in ind_points])) \
            if ind_points else 0.0
        w_lookup = _fit_linear(*zip(*[(x, y) for x, y in lookup_points])) \
            if lookup_points else 0.0
        w_direct = _fit_linear(*zip(*[(x, y) for x, y in direct_points]))
        results[name] = (w_ind, w_lookup, w_direct)
    return results


def profile_all(sizes: Sequence[int] = (200, 400),
                seed: int = 17) -> CostParams:
    """Re-bootstrap every cost parameter on this machine."""
    params = CostParams()
    params.operator_weights.update(profile_operators(sizes, seed))
    for name, weights in profile_aggregates(sizes=sizes, seed=seed).items():
        params.aggregate_weights[name] = weights
    return params
