"""Optimizer: statistics, cost model, rule-based and cost-based planners."""

from repro.optimizer.cost_params import (DEFAULT_COST_PARAMS, CostParams,
                                         expected_distinct)
from repro.optimizer.planner import CostBasedPlanner
from repro.optimizer.rulebased import (BASELINE_STRATEGIES,
                                       BASELINE_STRATEGIES_WITH_NOT,
                                       RuleBasedPlanner, RuleStrategy)
from repro.optimizer.stats import StatsCatalog, collect_stats

__all__ = ["CostBasedPlanner", "RuleBasedPlanner", "RuleStrategy",
           "BASELINE_STRATEGIES", "BASELINE_STRATEGIES_WITH_NOT",
           "CostParams", "DEFAULT_COST_PARAMS", "expected_distinct",
           "StatsCatalog", "collect_stats"]
