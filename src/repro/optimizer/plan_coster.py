"""Cost estimation for a *given* physical plan tree.

The DP planner costs plans while searching; this module applies the same
Table 1 formulas to an already-constructed operator tree.  It powers the
NDCG experiment (Section 6.2.3): every rule-based plan family is costed by
the model and ranked against its measured execution time.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import PlanError
from repro.exec.and_or import (LeftProbeAnd, RightProbeAnd, SortMergeAnd,
                               SortMergeOr)
from repro.exec.base import PhysicalOperator
from repro.exec.concat import (LeftProbeConcat, RightProbeConcat,
                               SortMergeConcat, WildWindowConcat)
from repro.exec.filter_op import FilterOp
from repro.exec.kleene import MaterializeKleene
from repro.exec.not_op import MaterializeNot, ProbeNot
from repro.exec.seggen import SegGenFilter, SegGenIndexing, SegGenWindow
from repro.exec.special import SubPatternCache
from repro.lang import expr as E
from repro.optimizer import costmodel as CM
from repro.optimizer.cost_params import (DEFAULT_COST_PARAMS, CostParams,
                                         expected_distinct)
from repro.optimizer.stats import StatsCatalog
from repro.timeseries.series import Series


class PlanCostEstimator:
    """Estimate (cost, output cardinality) of a physical plan tree."""

    def __init__(self, stats: StatsCatalog, series: Series,
                 params: CostParams = DEFAULT_COST_PARAMS):
        self.stats = stats
        self.series = series
        self.params = params
        self.n = max(stats.series_length or len(series), 2)

    def estimate(self, op: PhysicalOperator) -> float:
        cost, _card = self._visit(op, float(self.n), float(self.n))
        return cost

    # -- helpers -------------------------------------------------------------

    def _sel_w(self, op: PhysicalOperator, ls: float, le: float,
               lse: float) -> float:
        bounds = CM.window_duration_bounds(op.window, self.series)
        return max(CM.boxed_pair_fraction(ls, le, lse, bounds), 1e-9)

    def _duration_bounds(self, op: PhysicalOperator) -> CM.Bounds:
        return CM.window_duration_bounds(op.window, self.series)

    def _leaf_costs(self, op, ls: float, le: float,
                    lse: float) -> Tuple[float, float]:
        params = self.params
        var = op.var
        sel_w = self._sel_w(op, ls, le, lse)
        c_in = max(ls * le * sel_w, 1e-6)
        selectivity = self.stats.selectivity(var.name)
        c_out = max(c_in * selectivity, 1e-6)
        avg_len = self.stats.avg_length(var.name)
        per_direct = params.expr_eval_cost
        build = 0.0
        per_indexed = params.expr_eval_cost
        for call in E.aggregate_calls(var.condition):
            from repro.aggregates.registry import DEFAULT_REGISTRY
            agg = DEFAULT_REGISTRY.get(call.name)
            per_direct += params.f_delta(agg, avg_len)
            can_index = (agg.supports_index and not getattr(
                agg, "needs_series_context", False))
            if can_index:
                build += params.f_ind(agg, lse)
                per_indexed += params.f_lookup(agg, avg_len)
            else:
                per_indexed += params.f_delta(agg, avg_len)
        # Mirror the DP planner's per-path vector-kernel discount.
        from repro.aggregates.registry import DEFAULT_REGISTRY
        from repro.exec.vector import compiles_statically
        if isinstance(op, SegGenIndexing):
            if compiles_statically(var, "indexed", DEFAULT_REGISTRY):
                per_indexed *= params.vector_leaf_discount
            cost = params.f_op("SegGenIndexing", c_in + c_out) + build \
                + c_in * per_indexed
        else:
            if compiles_statically(var, "direct", DEFAULT_REGISTRY):
                per_direct *= params.vector_leaf_discount
            cost = params.f_op("SegGenFilter", c_in + c_out) \
                + c_in * per_direct
        return cost, c_out

    # -- recursion -----------------------------------------------------------

    def _visit(self, op: PhysicalOperator, ls: float,
               le: float) -> Tuple[float, float]:
        params = self.params
        lse = CM.lse_estimate(ls, le, self.n)

        if isinstance(op, SegGenWindow):
            sel_w = self._sel_w(op, ls, le, lse)
            c_in = max(ls * le * sel_w, 1e-6)
            return params.f_op("SegGenWindow", 2 * c_in), c_in
        if isinstance(op, (SegGenFilter, SegGenIndexing)):
            return self._leaf_costs(op, ls, le, lse)
        if isinstance(op, SubPatternCache):
            return self._visit(op.child, ls, le)
        if isinstance(op, FilterOp):
            child_cost, c_in = self._visit(op.child, ls, le)
            selectivity = 1.0
            per_row = 0.0
            for owner, condition in op.conditions:
                selectivity *= self.stats.selectivity(owner)
                per_row += params.expr_eval_cost
                for call in E.aggregate_calls(condition):
                    from repro.aggregates.registry import DEFAULT_REGISTRY
                    agg = DEFAULT_REGISTRY.get(call.name)
                    per_row += params.f_delta(
                        agg, self.stats.avg_length(owner))
            c_out = max(c_in * selectivity, 1e-6)
            cost = params.f_op("Filter", c_in + c_out) + c_in * per_row \
                + child_cost
            return cost, c_out
        if isinstance(op, WildWindowConcat):
            left_cost, c_l = self._visit(op.left, ls, lse)
            right_cost, c_r = self._visit(op.right, lse, le)
            pad_bounds = CM.window_duration_bounds(op.pad_window,
                                                   self.series)
            pad_width = max(min(pad_bounds[1], lse) - pad_bounds[0] + 1, 1.0)
            c_out = max(c_l * c_r * pad_width / max(lse, 1.0), 1e-6)
            cost = params.f_op("WildWindowConcat", c_l + c_r + c_out) \
                + left_cost + right_cost
            return cost, c_out
        if isinstance(op, (SortMergeConcat, RightProbeConcat,
                           LeftProbeConcat)):
            window_bounds = self._duration_bounds(op)
            left_bounds = CM.window_duration_bounds(op.left.window,
                                                    self.series)
            right_bounds = CM.window_duration_bounds(op.right.window,
                                                     self.series)
            cond_sel = max(CM.concat_window_selectivity(
                window_bounds, left_bounds, right_bounds, op.gap, lse), 1e-9)
            left_cost, c_l = self._visit(op.left, ls, lse)
            right_cost, c_r = self._visit(op.right, lse, le)
            c_out = max(c_l * c_r / max(lse, 1.0) * cond_sel, 1e-6)
            if isinstance(op, SortMergeConcat):
                cost = params.f_op("SortMergeConcat", c_l + c_r + c_out) \
                    + left_cost + right_cost
                return cost, c_out
            if isinstance(op, RightProbeConcat):
                probe_cost, c_r_unit = self._visit(op.right, 1.0, le)
                if op.right.requires:
                    distinct = c_l
                else:
                    distinct = expected_distinct(c_l, lse)
                cost = params.f_op("RightProbeConcat",
                                   c_l + c_r_unit + c_out) + left_cost \
                    + distinct * (probe_cost + params.probe_overhead)
                return cost, c_out
            probe_cost, c_l_unit = self._visit(op.left, ls, 1.0)
            if op.left.requires:
                distinct = c_r
            else:
                distinct = expected_distinct(c_r, lse)
            cost = params.f_op("LeftProbeConcat",
                               c_l_unit + c_r + c_out) + right_cost \
                + distinct * (probe_cost + params.probe_overhead)
            return cost, c_out
        if isinstance(op, (SortMergeAnd, RightProbeAnd, LeftProbeAnd)):
            sel_w = self._sel_w(op, ls, le, lse)
            box = max(ls * le * sel_w, 1e-6)
            left_cost, c_l = self._visit(op.left, ls, le)
            right_cost, c_r = self._visit(op.right, ls, le)
            c_out = max(c_l * c_r / box, 1e-6)
            name = type(op).__name__
            if isinstance(op, SortMergeAnd) and name == "NestedLoopAnd":
                cost = params.f_op("SortMergeAnd", c_l * c_r + c_out) \
                    + left_cost + right_cost
                return cost, c_out
            if isinstance(op, RightProbeAnd):
                probe_cost, c_r_unit = self._visit(op.right, 1.0, 1.0)
                cost = params.f_op("RightProbeAnd",
                                   c_l + c_r_unit + c_out) + left_cost \
                    + c_l * (probe_cost / max(sel_w, 1e-9)
                             + params.probe_overhead)
                return cost, c_out
            if isinstance(op, LeftProbeAnd):
                probe_cost, c_l_unit = self._visit(op.left, 1.0, 1.0)
                cost = params.f_op("LeftProbeAnd",
                                   c_l_unit + c_r + c_out) + right_cost \
                    + c_r * (probe_cost / max(sel_w, 1e-9)
                             + params.probe_overhead)
                return cost, c_out
            cost = params.f_op("SortMergeAnd", c_l + c_r + c_out) \
                + left_cost + right_cost
            return cost, c_out
        if isinstance(op, SortMergeOr):
            left_cost, c_l = self._visit(op.left, ls, le)
            right_cost, c_r = self._visit(op.right, ls, le)
            c_out = c_l + c_r
            cost = params.f_op("SortMergeOr", c_l + c_r + c_out) \
                + left_cost + right_cost
            return cost, c_out
        if isinstance(op, (MaterializeNot, ProbeNot)):
            sel_w = self._sel_w(op, ls, le, lse)
            box = max(ls * le * sel_w, 1e-6)
            if isinstance(op, MaterializeNot):
                child_cost, c_in = self._visit(op.child, ls, le)
                c_out = max(box - c_in, 1e-6)
                return params.f_op("MaterializeNot", c_in + c_out) \
                    + child_cost, c_out
            child_cost, c_unit = self._visit(op.child, 1.0, 1.0)
            c_out = max(box - box * min(c_unit, 1.0), 1e-6)
            cost = params.f_op("ProbeNot", c_unit + c_out) \
                + box * (child_cost / max(c_unit, 1.0)
                         + params.probe_overhead)
            return cost, c_out
        if isinstance(op, MaterializeKleene):
            child_cost, c_in = self._visit(op.child, lse, lse)
            window_bounds = self._duration_bounds(op)
            child_bounds = CM.window_duration_bounds(op.child.window,
                                                     self.series)
            if not op.window_aware:
                # Window-unaware assembly explores the full span.
                window_bounds = (0.0, float(lse))
            sel1 = max(CM.containment_selectivity(window_bounds,
                                                  child_bounds, lse), 1e-9)
            sel2 = max(CM.concat_window_selectivity(
                window_bounds, child_bounds, child_bounds, op.gap, lse),
                1e-9)
            ratio = (ls * le) / max(lse * lse, 1.0)
            c_out = max(c_in * ratio * sel1
                        + (c_in ** 2) * ratio / max(lse, 1.0) * sel2, 1e-6)
            cost = params.f_op("MaterializeKleene", c_in + c_out) \
                + child_cost
            return cost, c_out
        raise PlanError(f"cannot estimate cost of operator {op!r}")
