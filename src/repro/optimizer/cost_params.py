"""Cost-model parameters (Section 5.1, Appendix D, Tables 5 & 6).

Operator cost is a one-parameter linear function of a cardinality sum
(Equation 1); aggregate costs follow constant/linear/quadratic shapes in
the start–end range size (indexing) or the average segment length (per
evaluation).  The shipped defaults are the paper's offline-profiled values
(Tables 5 & 6, in nanoseconds); :mod:`repro.optimizer.profiler` re-fits
them on the local machine, regenerating those tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.aggregates.base import Aggregate

#: Paper Table 5 — w in f_op per physical operator (nanoseconds).
DEFAULT_OPERATOR_WEIGHTS: Dict[str, float] = {
    "SegGenWindow": 193.0,
    "SegGenFilter": 502.0,
    "SegGenIndexing": 501.0,
    "SortMergeConcat": 671.0,
    "RightProbeConcat": 1583.0,
    "LeftProbeConcat": 1583.0,
    "SortMergeOr": 747.0,
    "MaterializeNot": 440.0,
    "ProbeNot": 2168.0,
    "MaterializeKleene": 1577.0,
    "SortMergeAnd": 588.0,
    "LeftProbeAnd": 2077.0,
    "RightProbeAnd": 2077.0,
    # Not in the paper's table; profiled locally, defaults chosen near the
    # closest relatives.
    "Filter": 502.0,
    "WildWindowConcat": 671.0,
    "SubPattern": 100.0,
}

#: Paper Table 6 — (w_ind, w_lookup, w_direct) per aggregate (nanoseconds);
#: shapes come from the aggregate classes themselves.
DEFAULT_AGGREGATE_WEIGHTS: Dict[str, Tuple[float, float, float]] = {
    "linear_regression_r2": (380.0, 50.0, 903.0),
    "linear_regression_r2_signed": (380.0, 50.0, 903.0),
    "mann_kendall_test": (761.0, 50.0, 99.0),
    "zscore_outlier": (0.0, 0.0, 34.0),
    "corr": (0.0, 0.0, 400.0),
    "equal_up_down_ticks": (120.0, 50.0, 150.0),
    "sum": (60.0, 30.0, 40.0),
    "avg": (60.0, 30.0, 40.0),
    "count": (10.0, 10.0, 10.0),
    "min": (120.0, 40.0, 40.0),
    "max": (120.0, 40.0, 40.0),
    "stddev": (90.0, 40.0, 60.0),
    "slope": (300.0, 45.0, 700.0),
    "median": (0.0, 0.0, 250.0),
    "max_drawdown": (0.0, 0.0, 220.0),
}

#: Fallback weights for unknown (user-defined) aggregates, by shape.
_FALLBACK_AGG = (200.0, 50.0, 400.0)

#: Cost charged per plain (non-aggregate) condition evaluation.
DEFAULT_EXPR_EVAL_COST = 150.0

#: Fixed cost charged per probe invocation (Left/Right-Probe, ProbeNot).
DEFAULT_PROBE_OVERHEAD = 3000.0

#: Per-candidate cost multiplier for leaf conditions the vector kernels
#: (:mod:`repro.exec.vector`) can compile.  Batched numpy evaluation
#: amortizes interpreter overhead across candidates, so the *per-row*
#: leaf cost shrinks while index-build cost is unchanged.  The value is
#: deliberately conservative (measured batch speedups are far larger on
#: long ranges, but probe-sized ranges see little benefit); it is
#: applied whether or not the runtime toggle ends up enabled, keeping
#: planning deterministic and toggle-independent.
DEFAULT_VECTOR_LEAF_DISCOUNT = 0.45

#: Points per symbolic-index block (:mod:`repro.index.summary`).  Like
#: the vector discount above, these prefilter parameters are consumed at
#: *runtime* only — planning costs never depend on the prefilter toggle,
#: so the physical plan (and ``plan_explain``) is byte-identical whether
#: the prefilter is on or off (docs/PREFILTER.md).
DEFAULT_PREFILTER_BLOCK_SIZE = 64

#: When the candidate ranges the prefilter materialized still cover at
#: least this fraction of the series, narrowing cannot pay for its own
#: bookkeeping: the prefilter falls back to the full scan for that
#: series (decision recorded in the ``series_full`` counter).
DEFAULT_PREFILTER_COVERAGE_GATE = 0.95


def shape_value(shape: Optional[str], size: float) -> float:
    """Evaluate a cost shape ('C'/'L'/'Q') at ``size``."""
    if shape is None or shape == "C":
        return 1.0
    if shape == "L":
        return max(size, 1.0)
    if shape == "Q":
        return max(size, 1.0) ** 2
    raise ValueError(f"unknown cost shape {shape!r}")


@dataclass
class CostParams:
    """All tunable cost-model parameters."""

    operator_weights: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_OPERATOR_WEIGHTS))
    aggregate_weights: Dict[str, Tuple[float, float, float]] = field(
        default_factory=lambda: dict(DEFAULT_AGGREGATE_WEIGHTS))
    expr_eval_cost: float = DEFAULT_EXPR_EVAL_COST
    #: Fixed per-probe-call overhead (search-space setup, cache lookup).
    probe_overhead: float = DEFAULT_PROBE_OVERHEAD
    #: Per-candidate multiplier for vector-compilable leaf conditions.
    vector_leaf_discount: float = DEFAULT_VECTOR_LEAF_DISCOUNT
    #: Symbolic-index block size used by the prefilter (runtime only).
    prefilter_block_size: int = DEFAULT_PREFILTER_BLOCK_SIZE
    #: Candidate-coverage fraction above which narrowing is abandoned.
    prefilter_coverage_gate: float = DEFAULT_PREFILTER_COVERAGE_GATE

    def f_op(self, op_name: str, cardinality_sum: float) -> float:
        """Operator cost (Equation 1): ``w * (cardinality sum)``."""
        weight = self.operator_weights.get(op_name, 500.0)
        return weight * max(cardinality_sum, 0.0)

    def _weights_for(self, agg: Aggregate) -> Tuple[float, float, float]:
        return self.aggregate_weights.get(agg.name, _FALLBACK_AGG)

    def f_ind(self, agg: Aggregate, span_size: float) -> float:
        """Index build cost for one aggregate over a span (Appendix D.2)."""
        if not agg.supports_index:
            return math.inf
        w_ind, _, _ = self._weights_for(agg)
        return w_ind * shape_value(agg.index_cost_shape, span_size)

    def f_lookup(self, agg: Aggregate, avg_len: float) -> float:
        """Per-segment cost of an indexed lookup."""
        if not agg.supports_index:
            return math.inf
        _, w_lookup, _ = self._weights_for(agg)
        return w_lookup * shape_value(agg.lookup_cost_shape, avg_len)

    def f_delta(self, agg: Aggregate, avg_len: float) -> float:
        """Per-segment cost of one direct aggregate evaluation."""
        _, _, w_direct = self._weights_for(agg)
        return w_direct * shape_value(agg.direct_cost_shape, avg_len)


#: Process-wide default parameters (the paper's profiled values).
DEFAULT_COST_PARAMS = CostParams()


def expected_distinct(draws: float, universe: float) -> float:
    """``D(c, ℓ)`` — expected distinct items from ``c`` uniform draws with
    replacement out of ``ℓ`` (Section 5.1, [5])."""
    if universe <= 0:
        return 0.0
    if draws <= 0:
        return 0.0
    universe = max(universe, 1.0)
    return universe * (1.0 - (1.0 - 1.0 / universe) ** draws)
