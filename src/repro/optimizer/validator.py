"""Physical plan validation (the paper's footnote 7).

The reference-flow rules now live in :mod:`repro.analysis.plan_verify`
(as :func:`~repro.analysis.plan_verify.reference_flow`, code ``TRX201``)
alongside the rest of the static analyzer; this module keeps the original
string-based API for the planners and existing tests.

Checked rules:

* the plan root must not require any external references;
* Sort-Merge/WildWindow binaries evaluate children independently — each
  child's ``requires`` must already be available from above;
* probe operators evaluate the anchor first and hand its payload to the
  probed side — the probed child may additionally consume what the anchor
  publishes;
* Not/Kleene/Filter children see only what the operator itself sees;
* a Filter's lifted-condition owners must be published by its child (or be
  available from above);
* whatever a probe passes along must actually be *published* by the anchor
  sub-tree.
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.analysis.plan_verify import reference_flow
from repro.exec.base import PhysicalOperator


def validate_plan(op: PhysicalOperator,
                  available: FrozenSet[str] = frozenset()) -> List[str]:
    """Return a list of reference-flow violations (empty = valid)."""
    return [diag.message for diag in reference_flow(op, available)]
