"""Physical plan validation (the paper's footnote 7).

Conditions on multiple variables constrain the order in which sub-trees can
execute: a consumer of a referenced segment must be evaluated while that
segment is available (from above, or from the anchor side of a probe).
:func:`validate_plan` walks a physical plan and returns every violation of
the reference-flow rules; planners are expected to produce plans with no
violations, and tests assert it.

Checked rules:

* the plan root must not require any external references;
* Sort-Merge/WildWindow binaries evaluate children independently — each
  child's ``requires`` must already be available from above;
* probe operators evaluate the anchor first and hand its payload to the
  probed side — the probed child may additionally consume what the anchor
  publishes;
* Not/Kleene/Filter children see only what the operator itself sees;
* a Filter's lifted-condition owners must be published by its child (or be
  available from above);
* whatever a probe passes along must actually be *published* by the anchor
  sub-tree.
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.exec.and_or import (LeftProbeAnd, RightProbeAnd, SortMergeAnd,
                               SortMergeOr)
from repro.exec.base import PhysicalOperator
from repro.exec.concat import (LeftProbeConcat, RightProbeConcat,
                               SortMergeConcat, WildWindowConcat)
from repro.exec.filter_op import FilterOp
from repro.exec.kleene import MaterializeKleene
from repro.exec.not_op import MaterializeNot, ProbeNot
from repro.exec.seggen import SegGenFilter, SegGenIndexing, SegGenWindow
from repro.exec.special import SubPatternCache
from repro.lang import expr as E


def validate_plan(op: PhysicalOperator,
                  available: FrozenSet[str] = frozenset()) -> List[str]:
    """Return a list of reference-flow violations (empty = valid)."""
    violations: List[str] = []
    _validate(op, available, violations)
    missing = set(op.requires) - set(available)
    if missing:
        violations.append(
            f"plan root requires {sorted(missing)} with no provider")
    return violations


def _validate(op: PhysicalOperator, available: FrozenSet[str],
              violations: List[str]) -> None:
    if isinstance(op, (SegGenFilter, SegGenIndexing)):
        missing = set(op.var.external_refs) - set(available)
        if missing:
            violations.append(
                f"{op.describe()} needs {sorted(missing)} but only "
                f"{sorted(available)} are available")
        return
    if isinstance(op, SegGenWindow):
        return
    if isinstance(op, SubPatternCache):
        _validate(op.child, available, violations)
        return
    if isinstance(op, FilterOp):
        provided = available | op.child.publish
        for owner, condition in op.conditions:
            needed = set(E.external_references(condition, owner)) | {owner}
            missing = needed - set(provided)
            if missing:
                violations.append(
                    f"{op.describe()} lifted condition on {owner!r} needs "
                    f"{sorted(missing)} beyond child payload "
                    f"{sorted(op.child.publish)}")
        _validate(op.child, available, violations)
        return
    if isinstance(op, (MaterializeNot, ProbeNot, MaterializeKleene)):
        child = op.children()[0]
        missing = set(child.requires) - set(available)
        if missing:
            violations.append(
                f"{op.describe()} child needs {sorted(missing)} which the "
                f"operator cannot supply")
        _validate(child, available, violations)
        return
    if isinstance(op, (SortMergeConcat, SortMergeAnd, SortMergeOr,
                       WildWindowConcat)):
        for side, child in zip(("left", "right"), op.children()):
            missing = set(child.requires) - set(available)
            if missing:
                violations.append(
                    f"{op.describe()} {side} child needs {sorted(missing)} "
                    f"but Sort-Merge children must be independent")
            _validate(child, available, violations)
        return
    if isinstance(op, (RightProbeConcat, RightProbeAnd)):
        anchor, probed = op.left, op.right
    elif isinstance(op, (LeftProbeConcat, LeftProbeAnd)):
        anchor, probed = op.right, op.left
    else:
        # Unknown operator type: validate children conservatively.
        for child in op.children():
            _validate(child, available, violations)
        return
    missing = set(anchor.requires) - set(available)
    if missing:
        violations.append(
            f"{op.describe()} anchor needs {sorted(missing)} with no "
            f"provider")
    _validate(anchor, available, violations)
    probe_available = available | anchor.publish
    missing = set(probed.requires) - set(probe_available)
    if missing:
        violations.append(
            f"{op.describe()} probed side needs {sorted(missing)} but the "
            f"anchor only publishes {sorted(anchor.publish)}")
    _validate(probed, probe_available, violations)
