"""Per-series symbolic summaries (PAA/SAX-style) with proven bounds.

A :class:`SeriesSummary` precomputes, per numeric column:

* the global envelope — min/max over every comparable (non-NaN) value;
* a blockwise signature — the series is cut into fixed-size blocks and
  each block's exact min/max is quantized to one of ``SYMBOLS`` levels
  over the global envelope (the SAX alphabet).  Decoding a symbol yields
  a *sound* bound: the stored lower bound never exceeds the true block
  minimum and the stored upper bound never undercuts the true block
  maximum.

Soundness is constructive: symbols are assigned by arithmetic
quantization and then *fixed up* against the exact extremes until the
decoded bounds bracket them (``numpy.linspace`` endpoints are exact, so
the fix-up loops terminate at the alphabet edges).  ``validate()``
re-derives the exact extremes and re-checks the bracketing — the
envelope-soundness oracle of the differential fuzzer calls it on every
summary the prefilter used.

Degenerate inputs fall back to storing the exact block extremes
(``exact=True``): a flat envelope, ±inf values, or an all-NaN column all
make the linspace alphabet useless, and exact bounds are trivially
sound.  Non-numeric (object-dtype) columns are recorded as unsupported;
the prefilter treats atoms over them as always-possible.

Summaries are cached per :class:`~repro.timeseries.series.Series`
object (weakly, so dropping a series drops its summary) and invalidated
by length change — the staleness signal a mutable store would feed.
"""

from __future__ import annotations

import threading
import warnings
import weakref
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import DataError
from repro.timeseries.series import Series

#: Points per signature block.  Smaller blocks prune tighter but cost
#: more probe work; the default matches
#: ``repro.optimizer.cost_params.DEFAULT_PREFILTER_BLOCK_SIZE``.
DEFAULT_BLOCK_SIZE = 64

#: Alphabet size of the symbolic signature (fits uint8).
SYMBOLS = 256


@dataclass
class ColumnSummary:
    """Signature of one column: global envelope + blockwise bounds.

    ``block_lo[k] <= min(block k)`` and ``block_hi[k] >= max(block k)``
    hold for every non-empty block (NaN entries mark empty blocks).
    ``symbols_lo``/``symbols_hi`` are the quantized SAX codes the bounds
    decode from (empty arrays in exact mode).
    """

    column: str
    n: int
    block_size: int
    #: False for non-numeric columns: no bounds, never prunes.
    supported: bool
    #: Number of comparable (non-NaN) values in the column.
    finite_count: int
    #: Global envelope over comparable values (NaN when none exist).
    global_lo: float
    global_hi: float
    block_lo: np.ndarray
    block_hi: np.ndarray
    #: True for blocks with no comparable value at all.
    block_empty: np.ndarray
    symbols_lo: np.ndarray
    symbols_hi: np.ndarray
    #: True when block_lo/block_hi are the exact extremes (degenerate
    #: envelope or quantization not applicable).
    exact: bool

    @property
    def num_blocks(self) -> int:
        return len(self.block_lo)

    def interval_possible(self, lo: float, hi: float, lo_open: bool,
                          hi_open: bool) -> bool:
        """May *any* value of the column lie in the interval?

        Sound test against the global envelope: ``False`` proves no
        element can witness the interval, ``True`` is inconclusive.
        """
        if not self.supported:
            return True
        if self.finite_count == 0:
            # No comparable value anywhere: every comparison atom fails.
            return False
        return not self._outside(self.global_lo, self.global_hi,
                                 lo, hi, lo_open, hi_open)

    def blocks_possible(self, lo: float, hi: float, lo_open: bool,
                        hi_open: bool) -> np.ndarray:
        """Boolean mask over blocks that *may* contain a value in the
        interval (sound: excluded blocks provably contain none)."""
        if not self.supported:
            return np.ones(self.num_blocks, dtype=bool)
        with warnings.catch_warnings():
            # Empty blocks carry NaN bounds; comparisons with NaN are
            # False, which the final mask turns into "impossible" —
            # exactly right for a block with no comparable values.
            warnings.simplefilter("ignore", RuntimeWarning)
            below = (self.block_hi < lo) | (
                lo_open & (self.block_hi == lo))  # trex: float-exact
            above = (self.block_lo > hi) | (
                hi_open & (self.block_lo == hi))  # trex: float-exact
            possible = ~(below | above)
        return possible & ~self.block_empty

    @staticmethod
    def _outside(value_lo: float, value_hi: float, lo: float, hi: float,
                 lo_open: bool, hi_open: bool) -> bool:
        """Is ``[value_lo, value_hi]`` provably disjoint from the atom
        interval?  Exact float equality is intentional here: an open
        endpoint excludes exactly its boundary value."""
        if value_hi < lo or (lo_open and value_hi == lo):  # trex: float-exact
            return True
        if value_lo > hi or (hi_open and value_lo == hi):  # trex: float-exact
            return True
        return False

    def validate(self, values: np.ndarray) -> None:
        """Re-check every stored bound against the exact block extremes.

        Raises :class:`~repro.errors.DataError` naming the first
        violated invariant — the envelope-soundness oracle.
        """
        if not self.supported:
            return
        if len(values) != self.n:
            raise DataError(
                f"summary for column {self.column!r} is stale: built for "
                f"{self.n} points, series has {len(values)}")
        exact_lo, exact_hi, empty = _block_extremes(values, self.block_size)
        if len(exact_lo) != self.num_blocks:
            raise DataError(
                f"summary for column {self.column!r} has "
                f"{self.num_blocks} blocks, expected {len(exact_lo)}")
        if not np.array_equal(empty, self.block_empty):
            raise DataError(
                f"summary for column {self.column!r} disagrees on empty "
                f"blocks")
        live = ~empty
        if np.any(self.block_lo[live] > exact_lo[live]):
            k = int(np.flatnonzero(self.block_lo[live]
                                   > exact_lo[live])[0])
            raise DataError(
                f"summary for column {self.column!r} violates the lower "
                f"envelope at live block {k}: stored bound exceeds the "
                f"true block minimum")
        if np.any(self.block_hi[live] < exact_hi[live]):
            k = int(np.flatnonzero(self.block_hi[live]
                                   < exact_hi[live])[0])
            raise DataError(
                f"summary for column {self.column!r} violates the upper "
                f"envelope at live block {k}: stored bound undercuts the "
                f"true block maximum")


@dataclass
class SeriesSummary:
    """All column signatures for one series, plus the point count."""

    n: int
    block_size: int
    columns: Dict[str, ColumnSummary]

    @property
    def num_blocks(self) -> int:
        return 0 if self.n == 0 else -(-self.n // self.block_size)

    def column(self, name: str) -> Optional[ColumnSummary]:
        return self.columns.get(name)

    def block_range(self, k: int) -> Tuple[int, int]:
        """Inclusive point-index range covered by block ``k``."""
        lo = k * self.block_size
        return lo, min(lo + self.block_size - 1, self.n - 1)

    def validate(self, series: Series) -> None:
        """Check freshness and every column's envelope soundness."""
        if len(series) != self.n:
            raise DataError(
                f"summary is stale: built for {self.n} points, series "
                f"has {len(series)}")
        for name, summary in sorted(self.columns.items()):
            if summary.supported:
                summary.validate(series.column(name))


def _block_extremes(values: np.ndarray, block_size: int) \
        -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact per-block (min, max, empty) over comparable values."""
    n = len(values)
    num_blocks = -(-n // block_size) if n else 0
    padded = np.full(num_blocks * block_size, np.nan)
    padded[:n] = values
    grid = padded.reshape(num_blocks, block_size)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        lows = np.nanmin(grid, axis=1)
        highs = np.nanmax(grid, axis=1)
    empty = np.isnan(lows)
    return lows, highs, empty


def _quantize(exact_lo: np.ndarray, exact_hi: np.ndarray,
              empty: np.ndarray, global_lo: float, global_hi: float) \
        -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Encode exact block extremes as SAX symbols with proven decode.

    Returns ``(symbols_lo, symbols_hi, block_lo, block_hi)`` where the
    decoded bounds provably bracket the exact extremes.  The caller
    guarantees a finite, non-flat global envelope.
    """
    edges = np.linspace(global_lo, global_hi, SYMBOLS + 1)
    span = global_hi - global_lo
    live = ~empty
    sym_lo = np.zeros(len(exact_lo), dtype=np.int64)
    sym_hi = np.zeros(len(exact_hi), dtype=np.int64)
    with np.errstate(invalid="ignore"):
        sym_lo[live] = np.clip(
            np.floor((exact_lo[live] - global_lo) / span * SYMBOLS),
            0, SYMBOLS - 1).astype(np.int64)
        sym_hi[live] = np.clip(
            np.ceil((exact_hi[live] - global_lo) / span * SYMBOLS) - 1,
            0, SYMBOLS - 1).astype(np.int64)
    # Constructive soundness fix-up: rounding may land one symbol off,
    # so walk each code until its decoded bound brackets the exact
    # extreme.  linspace endpoints are exact (edges[0] == global_lo <=
    # every block min; edges[SYMBOLS] == global_hi >= every block max),
    # so both loops terminate at the alphabet edges.
    # trex: no-tick(bounded by the SAX alphabet size)
    for _ in range(SYMBOLS):
        off = live & (edges[sym_lo] > exact_lo)
        if not off.any():
            break
        sym_lo[off] -= 1
    for _ in range(SYMBOLS):
        off = live & (edges[sym_hi + 1] < exact_hi)
        if not off.any():
            break
        sym_hi[off] += 1
    block_lo = np.where(live, edges[sym_lo], np.nan)
    block_hi = np.where(live, edges[sym_hi + 1], np.nan)
    return (sym_lo.astype(np.uint8), sym_hi.astype(np.uint8),
            block_lo, block_hi)


def _summarize_column(name: str, values: np.ndarray,
                      block_size: int) -> ColumnSummary:
    n = len(values)
    num_blocks = -(-n // block_size) if n else 0
    if values.dtype.kind != "f":
        nan = np.full(num_blocks, np.nan)
        return ColumnSummary(
            column=name, n=n, block_size=block_size, supported=False,
            finite_count=0, global_lo=np.nan, global_hi=np.nan,
            block_lo=nan, block_hi=nan.copy(),
            block_empty=np.ones(num_blocks, dtype=bool),
            symbols_lo=np.empty(0, dtype=np.uint8),
            symbols_hi=np.empty(0, dtype=np.uint8), exact=True)
    exact_lo, exact_hi, empty = _block_extremes(values, block_size)
    finite_count = int(np.count_nonzero(~np.isnan(values)))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        global_lo = float(np.nanmin(values)) if n else np.nan
        global_hi = float(np.nanmax(values)) if n else np.nan
    quantizable = (np.isfinite(global_lo) and np.isfinite(global_hi)
                   and global_lo < global_hi)
    if quantizable:
        sym_lo, sym_hi, block_lo, block_hi = _quantize(
            exact_lo, exact_hi, empty, global_lo, global_hi)
        exact = False
    else:
        # Flat/±inf/all-NaN envelope: store exact extremes (trivially
        # sound) instead of a meaningless one-symbol alphabet.
        sym_lo = np.empty(0, dtype=np.uint8)
        sym_hi = np.empty(0, dtype=np.uint8)
        block_lo, block_hi = exact_lo, exact_hi
        exact = True
    return ColumnSummary(
        column=name, n=n, block_size=block_size, supported=True,
        finite_count=finite_count, global_lo=global_lo,
        global_hi=global_hi, block_lo=block_lo, block_hi=block_hi,
        block_empty=empty, symbols_lo=sym_lo, symbols_hi=sym_hi,
        exact=exact)


def build_summary(series: Series,
                  block_size: int = DEFAULT_BLOCK_SIZE) -> SeriesSummary:
    """Summarize every column of ``series`` (sorted for determinism)."""
    if block_size < 1:
        raise DataError(f"block_size must be >= 1, got {block_size}")
    columns = {
        name: _summarize_column(name, series.column(name), block_size)
        for name in series.column_names
    }
    return SeriesSummary(n=len(series), block_size=block_size,
                         columns=columns)


# ---------------------------------------------------------------------------
# Weak per-series cache
# ---------------------------------------------------------------------------

_cache: "weakref.WeakKeyDictionary[Series, SeriesSummary]" = \
    weakref.WeakKeyDictionary()
_cache_lock = threading.Lock()
_cache_counters: Counter = Counter()


def summary_for(series: Series, block_size: int = DEFAULT_BLOCK_SIZE,
                counters: Optional[Counter] = None) -> SeriesSummary:
    """The cached summary for ``series``, built on first use.

    A cached summary whose length or block size no longer matches the
    series is *stale* (the series object was mutated or the requested
    granularity changed) and is rebuilt; ``counters`` (and the
    module-level :func:`cache_counters`) record built/cached/stale
    events for observability.
    """
    with _cache_lock:
        cached = _cache.get(series)
    stale = cached is not None and (cached.n != len(series)
                                    or cached.block_size != block_size)
    if cached is not None and not stale:
        _note(counters, "index_cached")
        return cached
    if stale:
        _note(counters, "index_stale")
    summary = build_summary(series, block_size)
    with _cache_lock:
        _cache[series] = summary
    _note(counters, "index_built")
    return summary


def _note(counters: Optional[Counter], event: str) -> None:
    with _cache_lock:
        _cache_counters[event] += 1
    if counters is not None:
        counters[event] += 1


def cache_counters() -> Counter:
    """Process-wide cache event counters (built/cached/stale)."""
    with _cache_lock:
        return Counter(_cache_counters)


def clear_cache() -> None:
    """Drop every cached summary and reset the counters (tests)."""
    with _cache_lock:
        _cache.clear()
        _cache_counters.clear()
