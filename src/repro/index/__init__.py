"""Symbolic pruning index: per-series summaries for the prefilter stage.

The prefilter (:mod:`repro.plan.prefilter`, docs/PREFILTER.md) extracts
*necessary conditions* from a bound query and evaluates them against the
precomputed summaries in this package to skip whole series or narrow the
root :class:`~repro.plan.search_space.SearchSpace` before the full
matcher runs.  Every bound stored here is *proven*: a block's symbolic
lower/upper bound brackets the exact block min/max by construction
(:func:`repro.index.summary.build_summary` re-checks the bracketing
after quantization), so pruning can never dismiss a true match.
"""

from repro.index.summary import (DEFAULT_BLOCK_SIZE, ColumnSummary,
                                 SeriesSummary, build_summary, cache_counters,
                                 clear_cache, summary_for)

__all__ = ["DEFAULT_BLOCK_SIZE", "ColumnSummary", "SeriesSummary",
           "build_summary", "cache_counters", "clear_cache", "summary_for"]
