"""Linear-regression goodness-of-fit aggregates (paper Example 2).

``linear_regression_r2(x, y)`` returns the R² of the least-squares line of
``y`` against ``x`` over a segment.  ``linear_regression_r2_signed`` returns
``sign(slope) * R²`` so one threshold captures both direction and fit — this
is the ``linear_reg_r2_signed`` used throughout Appendix E's queries.

Both support computation sharing through prefix sums over the five
expressions ``x``, ``y``, ``x²``, ``y²`` and ``xy``; a lookup is then O(1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.aggregates.base import Aggregate, AggregateIndex, segment_pair
from repro.aggregates.prefix import PrefixSums

#: Denominator guard: segments with (numerically) constant x or y get R²=0.
_EPSILON = 1e-12


def _r2_from_moments(n: int, sx: float, sy: float, sxx: float, syy: float,
                     sxy: float, signed: bool) -> float:
    """R² (optionally slope-signed) from raw moment sums."""
    if n < 2:
        return 0.0
    mean_x = sx / n
    mean_y = sy / n
    var_x = sxx / n - mean_x * mean_x
    var_y = syy / n - mean_y * mean_y
    cov = sxy / n - mean_x * mean_y
    if var_x <= _EPSILON or var_y <= _EPSILON:
        return 0.0
    r2 = (cov * cov) / (var_x * var_y)
    r2 = min(max(r2, 0.0), 1.0)
    if signed and cov < 0:
        return -r2
    return r2


class _LinRegIndex(AggregateIndex):
    """Prefix sums over x, y, x², y², xy for O(1) R² lookups."""

    __slots__ = ("_px", "_py", "_pxx", "_pyy", "_pxy", "_signed")

    def __init__(self, x: np.ndarray, y: np.ndarray, signed: bool):
        self._px = PrefixSums(x)
        self._py = PrefixSums(y)
        self._pxx = PrefixSums(x * x)
        self._pyy = PrefixSums(y * y)
        self._pxy = PrefixSums(x * y)
        self._signed = signed

    def lookup(self, start: int, end: int) -> float:
        n = end - start + 1
        return _r2_from_moments(
            n,
            self._px.range_sum(start, end),
            self._py.range_sum(start, end),
            self._pxx.range_sum(start, end),
            self._pyy.range_sum(start, end),
            self._pxy.range_sum(start, end),
            self._signed,
        )


class LinearRegressionR2(Aggregate):
    """R² of the least-squares fit of the second column against the first."""

    name = "linear_regression_r2"
    num_columns = 2
    num_extra = 0
    direct_cost_shape = "L"
    index_cost_shape = "L"
    lookup_cost_shape = "C"
    _signed = False

    def evaluate(self, arrays: Sequence[np.ndarray],
                 extra: Sequence[float]) -> float:
        x, y = segment_pair(arrays)
        n = len(x)
        return _r2_from_moments(
            n, float(np.sum(x)), float(np.sum(y)), float(np.sum(x * x)),
            float(np.sum(y * y)), float(np.sum(x * y)), self._signed)

    def build_index(self, columns: Sequence[np.ndarray],
                    extra: Sequence[float]) -> AggregateIndex:
        x, y = segment_pair(columns)
        return _LinRegIndex(x, y, self._signed)


class LinearRegressionR2Signed(LinearRegressionR2):
    """``sign(slope) * R²`` — positive for rising, negative for falling."""

    name = "linear_regression_r2_signed"
    _signed = True
