"""Mann-Kendall monotone trend test aggregate.

Returns the normalized Z statistic of the Mann-Kendall test [51]:

    S = sum_{i<j} sign(x[j] - x[i])
    Var(S) = n (n-1) (2n+5) / 18
    Z = (S - 1)/sqrt(Var)  if S > 0;  0 if S == 0;  (S + 1)/sqrt(Var) else

The cold-wave queries test ``mann_kendall_test(temp) >= 3.0``, i.e. a
strongly significant upward trend.

Direct evaluation is O(len²).  The shared index materializes the complete
S table with the dynamic program ``S(i, j) = S(i, j-1) + sum_{k=i..j-1}
sign(x[j] - x[k])`` described in Section 4.2 — quadratic build (Table 6's
``Q`` shape), constant-time lookup.  Rows of the table are materialized
lazily per start position so that probe-style access patterns that touch
few start positions do not pay the full quadratic cost, while a whole-series
scan amortizes to the same total work as the eager build.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.aggregates.base import Aggregate, AggregateIndex, as_float_arrays


def _z_from_s(s: float, n: int) -> float:
    if n < 2:
        return 0.0
    var = n * (n - 1) * (2 * n + 5) / 18.0
    if var <= 0:
        return 0.0
    if s > 0:
        return (s - 1.0) / math.sqrt(var)
    if s < 0:
        return (s + 1.0) / math.sqrt(var)
    return 0.0


# trex: no-tick(direct evaluation over one already-sliced segment)
def mann_kendall_z(values: np.ndarray) -> float:
    """Direct O(len²) Mann-Kendall Z statistic."""
    n = len(values)
    if n < 2:
        return 0.0
    # Accumulate as float: sign(nan) is nan, and int(nan) raises where the
    # indexed path would quietly fold the NaN into Z == 0.0 via _z_from_s.
    s = 0.0
    for j in range(1, n):
        # trex: nan-ok(NaN must poison S so Z surfaces the bad input)
        s += float(np.sum(np.sign(values[j] - values[:j])))
    return _z_from_s(s, n)


class _MannKendallIndex(AggregateIndex):
    """Lazily materialized S table keyed by segment start position.

    ``_rows[i]`` holds cumulative pairwise-sign sums ``S(i, i..n-1)``; row
    ``i`` is built on first use in O((n - i)²) using vectorized numpy sums,
    then every ``lookup(i, j)`` is O(1).
    """

    __slots__ = ("_values", "_rows")

    def __init__(self, values: np.ndarray):
        self._values = values
        self._rows: Dict[int, np.ndarray] = {}

    # trex: no-tick(lazy per-start row build; amortized by the memo)
    def _row(self, start: int) -> np.ndarray:
        row = self._rows.get(start)
        if row is None:
            values = self._values[start:]
            m = len(values)
            row = np.zeros(m, dtype=np.float64)
            total = 0.0
            for offset in range(1, m):
                # trex: nan-ok(NaN rows mirror the direct path's poison)
                total += float(
                    np.sum(np.sign(values[offset] - values[:offset])))
                row[offset] = total
            self._rows[start] = row
        return row

    # trex: no-tick(forced eager build; paid once per series by design)
    def materialize_all(self) -> None:
        for start in range(len(self._values)):
            self._row(start)

    def lookup(self, start: int, end: int) -> float:
        n = end - start + 1
        if n < 2:
            return 0.0
        s = self._row(start)[end - start]
        return _z_from_s(s, n)


class MannKendallTest(Aggregate):
    """Normalized Mann-Kendall Z statistic over one column."""

    name = "mann_kendall_test"
    num_columns = 1
    num_extra = 0
    direct_cost_shape = "Q"
    index_cost_shape = "Q"
    lookup_cost_shape = "C"

    def evaluate(self, arrays: Sequence[np.ndarray],
                 extra: Sequence[float]) -> float:
        (values,) = as_float_arrays(arrays)
        return mann_kendall_z(values)

    def build_index(self, columns: Sequence[np.ndarray],
                    extra: Sequence[float]) -> AggregateIndex:
        (values,) = as_float_arrays(columns)
        return _MannKendallIndex(values)
