"""Z-score point outlier aggregate (used by the ``outlier`` query).

``zscore_outlier(col, context)`` is evaluated on a *point* variable's
single-point segment: it returns the absolute z-score of the point's value
relative to the ``context`` points immediately preceding it in the series.
A point with fewer than two preceding context points scores 0.

The paper writes this as ``ZScoreOutlier(ℓ)`` with an implicit value column;
our canonical templates make the column explicit as the first argument
(documented substitution in DESIGN.md).  Per Table 6 the aggregate has no
shared index — each evaluation is linear in the context size.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.aggregates.base import Aggregate
from repro.errors import AggregateError


class ZScoreOutlier(Aggregate):
    """Absolute z-score of a point against its preceding context window.

    Unlike the other aggregates, this one needs series context *before* the
    segment, so it is evaluated through :meth:`evaluate_with_context` and the
    expression evaluator passes the full column plus the point index.
    """

    name = "zscore_outlier"
    num_columns = 1
    num_extra = 1
    direct_cost_shape = "L"
    index_cost_shape = None
    lookup_cost_shape = None
    needs_series_context = True

    def evaluate(self, arrays: Sequence[np.ndarray],
                 extra: Sequence[float]) -> float:
        raise AggregateError(
            "zscore_outlier needs series context; evaluate_with_context "
            "must be used (is it applied to a point variable?)")

    def evaluate_with_context(self, full_column: np.ndarray, start: int,
                              end: int, extra: Sequence[float]) -> float:
        if start != end:
            raise AggregateError(
                "zscore_outlier applies to point variables (single-point "
                f"segments); got [{start}, {end}]")
        context = int(extra[0])
        if context < 2:
            raise AggregateError(
                f"zscore_outlier context size must be >= 2, got {context}")
        lo = max(0, start - context)
        window = np.asarray(full_column[lo:start], dtype=np.float64)
        if len(window) < 2:
            return 0.0
        std = float(np.std(window))
        if std <= 1e-12:
            return 0.0
        return abs(float(full_column[start]) - float(np.mean(window))) / std
