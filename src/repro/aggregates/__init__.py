"""Aggregates with computation sharing (``index()`` / ``lookup()``).

See :mod:`repro.aggregates.base` for the interface and
:mod:`repro.aggregates.registry` for registration of user-defined
aggregates.
"""

from repro.aggregates.base import Aggregate, AggregateIndex
from repro.aggregates.registry import DEFAULT_REGISTRY, AggregateRegistry

__all__ = ["Aggregate", "AggregateIndex", "AggregateRegistry",
           "DEFAULT_REGISTRY"]
