"""Prefix-sum and sparse-table machinery backing aggregate indexes.

The paper's Example 2 builds accumulative sums over expressions such as
``x``, ``y``, ``x**2`` and ``xy`` so that segment means are O(1) lookups.
:class:`PrefixSums` packages that pattern; :class:`SparseTable` provides
O(1) range min/max after O(n log n) build, used by the min/max aggregates.
"""

from __future__ import annotations

import numpy as np


class PrefixSums:
    """Accumulative sums with a leading zero for O(1) range sums.

    ``range_sum(i, j)`` returns ``sum(values[i..j])`` inclusive.  A single
    NaN (or inf) in the raw cumulative array would poison every range at or
    after it — ``nan - nan`` is ``nan`` even for ranges that do not contain
    the bad point — so non-finite inputs are zeroed out of the cumulative
    array and ranges that actually contain one fall back to a direct
    ``np.sum`` over the stored values, matching unshared evaluation.
    """

    __slots__ = ("_sums", "_values", "_dirty")

    def __init__(self, values: np.ndarray):
        values = np.asarray(values, dtype=np.float64)
        finite = np.isfinite(values)
        if bool(finite.all()):
            clean = values
            self._values = None
            self._dirty = None
        else:
            clean = np.where(finite, values, 0.0)
            dirty = np.empty(len(values) + 1, dtype=np.int64)
            dirty[0] = 0
            np.cumsum(~finite, out=dirty[1:])
            self._values = values
            self._dirty = dirty
        sums = np.empty(len(values) + 1, dtype=np.float64)
        sums[0] = 0.0
        np.cumsum(clean, out=sums[1:])
        self._sums = sums

    def range_sum(self, start: int, end: int) -> float:
        if self._dirty is not None and \
                self._dirty[end + 1] - self._dirty[start]:
            return float(np.sum(self._values[start:end + 1]))
        return float(self._sums[end + 1] - self._sums[start])

    def range_mean(self, start: int, end: int) -> float:
        return self.range_sum(start, end) / (end - start + 1)

    # trex: no-tick(dirty fallback over one already-ticked batch)
    def range_sum_batch(self, starts: np.ndarray,
                        ends: np.ndarray) -> np.ndarray:
        """Vector of :meth:`range_sum` values, bit-identical per element.

        Clean ranges are one prefix-difference array op; ranges that
        contain a non-finite value re-run the exact scalar fallback
        (``np.sum`` over the same slice, hence the same pairwise
        accumulation order) per dirty element.
        """
        out = self._sums[ends + 1] - self._sums[starts]
        if self._dirty is not None:
            dirty = (self._dirty[ends + 1] - self._dirty[starts]) != 0
            for i in np.flatnonzero(dirty):
                out[i] = np.sum(self._values[starts[i]:ends[i] + 1])
        return out

    def range_mean_batch(self, starts: np.ndarray,
                         ends: np.ndarray) -> np.ndarray:
        """Vector of :meth:`range_mean` values, bit-identical per element."""
        return self.range_sum_batch(starts, ends) / (ends - starts + 1)


class SparseTable:
    """O(1) range minimum/maximum queries after O(n log n) preprocessing."""

    __slots__ = ("_table", "_log", "_reduce")

    # trex: no-tick(O(n log n) one-time build at index-build time)
    def __init__(self, values: np.ndarray, mode: str = "min"):
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        self._reduce = np.minimum if mode == "min" else np.maximum
        n = len(values)
        levels = max(1, int(np.floor(np.log2(max(n, 1)))) + 1)
        table = [np.asarray(values, dtype=np.float64)]
        span = 1
        for _ in range(1, levels):
            prev = table[-1]
            if len(prev) <= span:
                break
            table.append(self._reduce(prev[:-span], prev[span:]))
            span *= 2
        self._table = table
        log = np.zeros(n + 1, dtype=np.int64)
        for i in range(2, n + 1):
            log[i] = log[i // 2] + 1
        self._log = log

    def query(self, start: int, end: int) -> float:
        """Min/max of ``values[start..end]`` inclusive."""
        length = end - start + 1
        level = int(self._log[length])
        span = 1 << level
        row = self._table[level]
        return float(self._reduce(row[start], row[end - span + 1]))

    # trex: no-tick(at most log2(n) distinct levels per batch)
    def query_batch(self, starts: np.ndarray,
                    ends: np.ndarray) -> np.ndarray:
        """Vector of :meth:`query` values, bit-identical per element."""
        levels = self._log[ends - starts + 1]
        out = np.empty(len(starts), dtype=np.float64)
        for level in np.unique(levels):
            span = 1 << int(level)
            row = self._table[int(level)]
            members = levels == level
            out[members] = self._reduce(row[starts[members]],
                                        row[ends[members] - span + 1])
        return out


def pairwise_sign_matrix_row(values: np.ndarray, j: int) -> float:
    """Sum of ``sign(values[j] - values[k])`` for ``k < j`` (helper).

    Accumulated as float: ``sign`` of a NaN difference is NaN, and casting
    that to int raises instead of propagating.
    """
    if j == 0:
        return 0.0
    diffs = values[j] - values[:j]
    return float(np.sum(np.sign(diffs)))
