"""Tick-balance aggregate used by the AFA_Q1 query.

``equal_up_down_ticks(col)`` returns 1.0 when the number of rising steps
equals the number of falling steps across the segment, else 0.0 — the
``EqualUpDownTicks`` condition of AFA_Q1 [28].

Indexable: prefix counts of up-ticks and down-ticks make the lookup O(1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.aggregates.base import Aggregate, AggregateIndex, as_float_arrays
from repro.aggregates.prefix import PrefixSums


def _tick_signs(values: np.ndarray) -> np.ndarray:
    if len(values) < 2:
        return np.zeros(0, dtype=np.float64)
    return np.sign(np.diff(values))


class _TickIndex(AggregateIndex):
    """Prefix sums of up/down tick indicators.

    Tick ``k`` describes the step from point ``k`` to ``k+1``, so segment
    ``[i, j]`` covers ticks ``i .. j-1``.
    """

    __slots__ = ("_ups", "_downs")

    def __init__(self, values: np.ndarray):
        signs = _tick_signs(values)
        self._ups = PrefixSums((signs > 0).astype(np.float64))
        self._downs = PrefixSums((signs < 0).astype(np.float64))

    def lookup(self, start: int, end: int) -> float:
        if end - start < 1:
            return 1.0
        ups = self._ups.range_sum(start, end - 1)
        downs = self._downs.range_sum(start, end - 1)
        return 1.0 if ups == downs else 0.0


class EqualUpDownTicks(Aggregate):
    """1.0 when up-tick count equals down-tick count over the segment."""

    name = "equal_up_down_ticks"
    num_columns = 1
    num_extra = 0
    direct_cost_shape = "L"
    index_cost_shape = "L"
    lookup_cost_shape = "C"

    def evaluate(self, arrays: Sequence[np.ndarray],
                 extra: Sequence[float]) -> float:
        (values,) = as_float_arrays(arrays)
        signs = _tick_signs(values)
        ups = int(np.sum(signs > 0))
        downs = int(np.sum(signs < 0))
        return 1.0 if ups == downs else 0.0

    def build_index(self, columns: Sequence[np.ndarray],
                    extra: Sequence[float]) -> AggregateIndex:
        (values,) = as_float_arrays(columns)
        return _TickIndex(values)
