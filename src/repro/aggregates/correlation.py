"""Pearson correlation across two (possibly different) segments.

``corr(A.x, B.x)`` compares the value sequences of two matched segments —
the Figure 5 example correlates a candidate segment with a previously
matched ``UP`` segment delivered through the ``refs`` mechanism.

Segments of unequal length are compared over the aligned prefix of the
shorter length (documented choice; the paper leaves alignment unspecified).
``corr`` takes arrays from *different* segments, so it cannot use a shared
single-series index and is always evaluated directly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.aggregates.base import Aggregate, segment_pair


class Correlation(Aggregate):
    """Pearson correlation of two segments' value sequences."""

    name = "corr"
    num_columns = 2
    num_extra = 0
    direct_cost_shape = "L"
    index_cost_shape = None
    lookup_cost_shape = None
    #: Arguments may come from different variables' segments.
    cross_segment = True

    def evaluate(self, arrays: Sequence[np.ndarray],
                 extra: Sequence[float]) -> float:
        first, second = segment_pair(arrays)
        n = min(len(first), len(second))
        if n < 2:
            return 0.0
        a = first[:n]
        b = second[:n]
        std_a = float(np.std(a))
        std_b = float(np.std(b))
        if std_a <= 1e-12 or std_b <= 1e-12:
            return 0.0
        cov = float(np.mean((a - np.mean(a)) * (b - np.mean(b))))
        value = cov / (std_a * std_b)
        return min(max(value, -1.0), 1.0)
