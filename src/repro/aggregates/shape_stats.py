"""Additional shape-analysis aggregates.

These extend the built-in library with aggregates spanning all three cost
shapes of Appendix D.2:

* ``slope`` — least-squares slope of y against x; prefix-indexable like
  ``linear_regression_r2`` (L build / C lookup);
* ``median`` — exact median; not prefix-decomposable, direct-only with a
  linearithmic evaluation (annotated L, the model's closest shape);
* ``max_drawdown`` — largest peak-to-trough fractional decline inside the
  segment; direct-only, linear.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.aggregates.base import Aggregate, AggregateIndex, as_float_arrays, \
    segment_pair
from repro.aggregates.prefix import PrefixSums

_EPSILON = 1e-12


class _SlopeIndex(AggregateIndex):
    __slots__ = ("_px", "_py", "_pxx", "_pxy")

    def __init__(self, x: np.ndarray, y: np.ndarray):
        self._px = PrefixSums(x)
        self._py = PrefixSums(y)
        self._pxx = PrefixSums(x * x)
        self._pxy = PrefixSums(x * y)

    def lookup(self, start: int, end: int) -> float:
        n = end - start + 1
        if n < 2:
            return 0.0
        mean_x = self._px.range_sum(start, end) / n
        mean_y = self._py.range_sum(start, end) / n
        var_x = self._pxx.range_sum(start, end) / n - mean_x * mean_x
        cov = self._pxy.range_sum(start, end) / n - mean_x * mean_y
        if var_x <= _EPSILON:
            return 0.0
        return cov / var_x


class Slope(Aggregate):
    """Least-squares slope of the second column against the first."""

    name = "slope"
    num_columns = 2
    num_extra = 0
    direct_cost_shape = "L"
    index_cost_shape = "L"
    lookup_cost_shape = "C"

    def evaluate(self, arrays: Sequence[np.ndarray],
                 extra: Sequence[float]) -> float:
        x, y = segment_pair(arrays)
        n = len(x)
        if n < 2:
            return 0.0
        mean_x = float(np.mean(x))
        var_x = float(np.mean(x * x)) - mean_x * mean_x
        if var_x <= _EPSILON:
            return 0.0
        cov = float(np.mean(x * y)) - mean_x * float(np.mean(y))
        return cov / var_x

    def build_index(self, columns: Sequence[np.ndarray],
                    extra: Sequence[float]) -> AggregateIndex:
        x, y = segment_pair(columns)
        return _SlopeIndex(x, y)


class Median(Aggregate):
    """Exact median of the segment (direct-only: medians do not decompose
    into prefix structures)."""

    name = "median"
    num_columns = 1
    num_extra = 0
    direct_cost_shape = "L"
    index_cost_shape = None
    lookup_cost_shape = None

    def evaluate(self, arrays: Sequence[np.ndarray],
                 extra: Sequence[float]) -> float:
        (values,) = as_float_arrays(arrays)
        if len(values) == 0:
            return float("nan")
        return float(np.median(values))


class MaxDrawdown(Aggregate):
    """Largest fractional peak-to-trough decline within the segment.

    Returns a value in [0, 1]: 0.25 means the value at some point fell 25%
    below an earlier in-segment peak.  A classic risk screen for the SP500
    templates.
    """

    name = "max_drawdown"
    num_columns = 1
    num_extra = 0
    direct_cost_shape = "L"
    index_cost_shape = None
    lookup_cost_shape = None

    def evaluate(self, arrays: Sequence[np.ndarray],
                 extra: Sequence[float]) -> float:
        (values,) = as_float_arrays(arrays)
        if len(values) < 2:
            return 0.0
        peaks = np.maximum.accumulate(values)
        with np.errstate(divide="ignore", invalid="ignore"):
            drawdowns = np.where(peaks > 0, 1.0 - values / peaks, 0.0)
        result = float(np.max(drawdowns))
        return max(result, 0.0)
