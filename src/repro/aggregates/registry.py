"""Aggregate registry, including user-defined aggregates.

The registry maps lowercase names (and aliases) to :class:`Aggregate`
instances.  ``register()`` is the UDA entry point the paper describes for
advanced users: an aggregate registered with an ``index_cost_shape``
annotation participates in computation sharing and the optimizer's cost
model exactly like the built-ins (Appendix D.2 — unannotated UDAs default
to a linear direct-cost model).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.aggregates.base import COST_SHAPES, Aggregate
from repro.aggregates.basic import (AvgAggregate, CountAggregate,
                                    MaxAggregate, MinAggregate,
                                    StdDevAggregate, SumAggregate)
from repro.aggregates.correlation import Correlation
from repro.aggregates.linreg import (LinearRegressionR2,
                                     LinearRegressionR2Signed)
from repro.aggregates.mann_kendall import MannKendallTest
from repro.aggregates.outlier import ZScoreOutlier
from repro.aggregates.shape_stats import MaxDrawdown, Median, Slope
from repro.aggregates.ticks import EqualUpDownTicks
from repro.errors import AggregateError


class AggregateRegistry:
    """Name → aggregate lookup with alias support."""

    def __init__(self):
        self._aggregates: Dict[str, Aggregate] = {}

    def register(self, aggregate: Aggregate,
                 aliases: Iterable[str] = ()) -> None:
        """Register an aggregate under its name and optional aliases."""
        if not aggregate.name:
            raise AggregateError("aggregate must define a non-empty name")
        for shape in (aggregate.direct_cost_shape, aggregate.index_cost_shape,
                      aggregate.lookup_cost_shape):
            if shape is not None and shape not in COST_SHAPES:
                raise AggregateError(
                    f"aggregate {aggregate.name!r} has invalid cost shape "
                    f"{shape!r}; expected one of {COST_SHAPES}")
        for name in (aggregate.name, *aliases):
            key = name.lower()
            if key in self._aggregates:
                raise AggregateError(f"aggregate {name!r} already registered")
            self._aggregates[key] = aggregate

    def get(self, name: str) -> Aggregate:
        try:
            return self._aggregates[name.lower()]
        except KeyError:
            raise AggregateError(
                f"unknown aggregate {name!r}; registered: "
                f"{sorted(self._aggregates)}") from None

    def lookup(self, name: str) -> Optional[Aggregate]:
        """Like :meth:`get` but returns ``None`` when unknown."""
        return self._aggregates.get(name.lower())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._aggregates

    def names(self) -> list:
        return sorted(self._aggregates)


def _build_default_registry() -> AggregateRegistry:
    registry = AggregateRegistry()
    registry.register(LinearRegressionR2(), aliases=("linear_reg_r2",))
    registry.register(LinearRegressionR2Signed(),
                      aliases=("linear_reg_r2_signed",))
    registry.register(MannKendallTest(), aliases=("mann_kandall_test",))
    registry.register(ZScoreOutlier(), aliases=("zscoreoutlier",))
    registry.register(Correlation())
    registry.register(EqualUpDownTicks(), aliases=("equalupdownticks",))
    registry.register(SumAggregate())
    registry.register(AvgAggregate())
    registry.register(CountAggregate())
    registry.register(MinAggregate())
    registry.register(MaxAggregate())
    registry.register(StdDevAggregate())
    registry.register(Slope())
    registry.register(Median())
    registry.register(MaxDrawdown())
    return registry


#: Process-wide default registry used when a query does not supply its own.
DEFAULT_REGISTRY = _build_default_registry()
