"""Basic segment aggregates: sum, avg, count, min, max, stddev.

All are indexable: sums/averages/counts/stddev via prefix sums, min/max via
sparse tables.  They exist both for user queries and as simple, well-behaved
fixtures for the optimizer's cost model tests.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.aggregates.base import Aggregate, AggregateIndex, as_float_arrays
from repro.aggregates.prefix import PrefixSums, SparseTable


class _SumIndex(AggregateIndex):
    __slots__ = ("_sums",)

    def __init__(self, values: np.ndarray):
        self._sums = PrefixSums(values)

    def lookup(self, start: int, end: int) -> float:
        return self._sums.range_sum(start, end)

    def lookup_batch(self, starts: np.ndarray,
                     ends: np.ndarray) -> np.ndarray:
        return self._sums.range_sum_batch(starts, ends)


class _AvgIndex(AggregateIndex):
    __slots__ = ("_sums",)

    def __init__(self, values: np.ndarray):
        self._sums = PrefixSums(values)

    def lookup(self, start: int, end: int) -> float:
        return self._sums.range_mean(start, end)

    def lookup_batch(self, starts: np.ndarray,
                     ends: np.ndarray) -> np.ndarray:
        return self._sums.range_mean_batch(starts, ends)


class _CountIndex(AggregateIndex):
    __slots__ = ()

    def lookup(self, start: int, end: int) -> float:
        return float(end - start + 1)

    def lookup_batch(self, starts: np.ndarray,
                     ends: np.ndarray) -> np.ndarray:
        return (ends - starts + 1).astype(np.float64)


class _StdIndex(AggregateIndex):
    """Prefix-sum stddev with two numeric guards the naive E[x^2] - E[x]^2
    formula lacks:

    * values are shifted by the series mean — rounded to the nearest
      integer so the shift is exactly representable — before squaring.
      The two terms stay of comparable (small) magnitude instead of
      cancelling catastrophically for segments far from zero, and
      lattice-valued inputs keep exact deltas: shifting by the raw
      (usually non-representable) mean would perturb every delta by an
      ulp and make exactly-representable statistics like
      ``stddev([0, 2]) == 1.0`` disagree with the direct ``np.std``
      path, the bit-for-bit agreement the differential fuzzer's
      threshold policy relies on (docs/FUZZING.md);
    * constant segments are detected exactly via run lengths and answer
      0.0 outright — cancellation noise in the prefix sums can otherwise
      make ``stddev(plateau) > 0`` flicker between shared and unshared
      evaluation.
    """

    __slots__ = ("_sums", "_squares", "_finite", "_run_end")

    # trex: no-tick(one linear pass at index-build time)
    def __init__(self, values: np.ndarray):
        finite = np.isfinite(values)
        shift = (float(np.round(np.mean(values[finite])))
                 if bool(finite.any()) else 0.0)
        deltas = values - shift
        self._sums = PrefixSums(deltas)
        self._squares = PrefixSums(deltas * deltas)
        self._finite = finite
        n = len(values)
        run_end = np.arange(n, dtype=np.int64)
        for i in range(n - 2, -1, -1):
            if values[i] == values[i + 1]:
                run_end[i] = run_end[i + 1]
        self._run_end = run_end

    def lookup(self, start: int, end: int) -> float:
        if self._run_end[start] >= end:
            return 0.0 if bool(self._finite[start]) else math.nan
        n = end - start + 1
        mean = self._sums.range_sum(start, end) / n
        mean_sq = self._squares.range_sum(start, end) / n
        variance = max(mean_sq - mean * mean, 0.0)
        return math.sqrt(variance)

    def lookup_batch(self, starts: np.ndarray,
                     ends: np.ndarray) -> np.ndarray:
        """Bit-identical batch :meth:`lookup`.

        ``np.maximum(x, 0.0)`` matches the scalar ``max(x, 0.0)`` here:
        the operand is never ``-0.0`` (an exactly-cancelling ``x - x``
        rounds to ``+0.0``), negatives clamp to ``+0.0`` on both paths
        and NaN propagates through both; ``np.sqrt`` and ``math.sqrt``
        are both correctly rounded.
        """
        out = np.empty(len(starts), dtype=np.float64)
        plateau = self._run_end[starts] >= ends
        if bool(plateau.any()):
            out[plateau] = np.where(self._finite[starts[plateau]],
                                    0.0, np.nan)
        rest = np.logical_not(plateau)
        if bool(rest.any()):
            s, e = starts[rest], ends[rest]
            n = e - s + 1
            mean = self._sums.range_sum_batch(s, e) / n
            mean_sq = self._squares.range_sum_batch(s, e) / n
            variance = np.maximum(mean_sq - mean * mean, 0.0)
            out[rest] = np.sqrt(variance)
        return out


class _ExtremeIndex(AggregateIndex):
    __slots__ = ("_table",)

    def __init__(self, values: np.ndarray, mode: str):
        self._table = SparseTable(values, mode=mode)

    def lookup(self, start: int, end: int) -> float:
        return self._table.query(start, end)

    def lookup_batch(self, starts: np.ndarray,
                     ends: np.ndarray) -> np.ndarray:
        return self._table.query_batch(starts, ends)


class _OneColumnAggregate(Aggregate):
    """Shared plumbing for the single-column basic aggregates."""

    num_columns = 1
    num_extra = 0
    direct_cost_shape = "L"
    index_cost_shape = "L"
    lookup_cost_shape = "C"

    def _direct(self, values: np.ndarray) -> float:
        raise NotImplementedError

    def _index(self, values: np.ndarray) -> AggregateIndex:
        raise NotImplementedError

    def evaluate(self, arrays: Sequence[np.ndarray],
                 extra: Sequence[float]) -> float:
        (values,) = as_float_arrays(arrays)
        return self._direct(values)

    def build_index(self, columns: Sequence[np.ndarray],
                    extra: Sequence[float]) -> AggregateIndex:
        (values,) = as_float_arrays(columns)
        return self._index(values)


class SumAggregate(_OneColumnAggregate):
    """Sum of a column over the segment."""

    name = "sum"

    def _direct(self, values):
        return float(np.sum(values))

    def _index(self, values):
        return _SumIndex(values)


class AvgAggregate(_OneColumnAggregate):
    """Arithmetic mean over the segment."""

    name = "avg"

    def _direct(self, values):
        return float(np.mean(values)) if len(values) else 0.0

    def _index(self, values):
        return _AvgIndex(values)


class CountAggregate(_OneColumnAggregate):
    """Number of points in the segment."""

    name = "count"
    direct_cost_shape = "C"

    def _direct(self, values):
        return float(len(values))

    def _index(self, values):
        return _CountIndex()


class MinAggregate(_OneColumnAggregate):
    """Minimum over the segment."""

    name = "min"

    def _direct(self, values):
        return float(np.min(values)) if len(values) else math.nan

    def _index(self, values):
        return _ExtremeIndex(values, "min")


class MaxAggregate(_OneColumnAggregate):
    """Maximum over the segment."""

    name = "max"

    def _direct(self, values):
        return float(np.max(values)) if len(values) else math.nan

    def _index(self, values):
        return _ExtremeIndex(values, "max")


class StdDevAggregate(_OneColumnAggregate):
    """Population standard deviation over the segment."""

    name = "stddev"

    def _direct(self, values):
        if not len(values):
            return 0.0
        # Constant segments answer exactly 0.0 on both evaluation paths
        # (see _StdIndex); np.std on a plateau returns ~1e-17 noise when
        # the mean is not representable.  NaNs fail the equality and fall
        # through to np.std, which propagates them.
        if bool(np.all(values == values[0])):
            return 0.0
        return float(np.std(values))

    def _index(self, values):
        return _StdIndex(values)
