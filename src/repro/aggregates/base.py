"""Aggregate interface with computation sharing (Section 4.2).

An :class:`Aggregate` evaluates a scalar over one segment's column values
(or, for multi-segment aggregates like ``corr``, over several segments').
Aggregates that can amortize work across overlapping segments additionally
implement :meth:`Aggregate.build_index`, returning an
:class:`AggregateIndex` whose :meth:`AggregateIndex.lookup` answers a single
segment in (near-)constant time.  This is the paper's ``index()`` /
``lookup()`` primitive pair.

Cost shapes (``'C'``/``'L'``/``'Q'`` for constant/linear/quadratic) annotate
how indexing cost scales with the search-space start–end range size and how
per-segment evaluation cost scales with segment length; the optimizer's cost
model consumes them (Appendix D.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AggregateError

#: Valid cost-shape annotations.
COST_SHAPES = ("C", "L", "Q")


class AggregateIndex(ABC):
    """Query-time index over a whole series for one aggregate call."""

    @abstractmethod
    def lookup(self, start: int, end: int) -> float:
        """Aggregate value over the inclusive segment ``[start, end]``."""

    # trex: no-tick(scalar loop over one already-ticked candidate batch)
    def lookup_batch(self, starts: np.ndarray,
                     ends: np.ndarray) -> np.ndarray:
        """Vector of :meth:`lookup` values over parallel bound arrays.

        The default scalar loop is correct for any index; indexes served
        by the vector kernels (``repro.exec.vector``) override it with
        array implementations that reproduce ``lookup`` bit-for-bit.
        """
        out = np.empty(len(starts), dtype=np.float64)
        for i in range(len(starts)):
            out[i] = self.lookup(int(starts[i]), int(ends[i]))
        return out

    def materialize_all(self) -> None:
        """Eagerly build the complete index.

        Indexes that materialize lazily override this; forced computation
        sharing (the baselines of Figure 22b) calls it so the full upfront
        cost is actually paid, as in the paper's eager ``index()``.
        """


class Aggregate(ABC):
    """A named aggregate over segment column values.

    Subclasses set:

    ``name``
        registry key (lowercase).
    ``num_columns``
        number of column arguments (each resolved to a value array over a
        segment before evaluation).
    ``num_extra``
        number of scalar extra arguments (e.g. a context size).
    ``direct_cost_shape``
        cost of one direct evaluation as a function of segment length.
    ``index_cost_shape`` / ``lookup_cost_shape``
        cost of building the index as a function of the start–end range
        size, and of one lookup as a function of segment length; ``None``
        when the aggregate does not support indexing.
    """

    name: str = ""
    num_columns: int = 1
    num_extra: int = 0
    direct_cost_shape: str = "L"
    index_cost_shape: Optional[str] = None
    lookup_cost_shape: Optional[str] = None

    @property
    def supports_index(self) -> bool:
        """Whether :meth:`build_index` is implemented."""
        return self.index_cost_shape is not None

    @abstractmethod
    def evaluate(self, arrays: Sequence[np.ndarray],
                 extra: Sequence[float]) -> float:
        """Direct evaluation over already-sliced column arrays."""

    def build_index(self, columns: Sequence[np.ndarray],
                    extra: Sequence[float]) -> AggregateIndex:
        """Build a whole-series index (only if :attr:`supports_index`).

        ``columns`` are the *full* series arrays, not segment slices.
        """
        raise AggregateError(
            f"aggregate {self.name!r} does not support indexing")

    def validate_call(self, n_columns: int, n_extra: int) -> None:
        """Raise :class:`AggregateError` when the call shape is wrong."""
        if n_columns != self.num_columns or n_extra != self.num_extra:
            raise AggregateError(
                f"{self.name}() expects {self.num_columns} column argument(s) "
                f"and {self.num_extra} scalar argument(s); got {n_columns} "
                f"and {n_extra}")

    def __repr__(self) -> str:
        return f"<aggregate {self.name}>"


# trex: no-tick(bounded by the aggregate's column arity)
def as_float_arrays(arrays: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Coerce column slices to float arrays, rejecting non-numeric data."""
    out = []
    for arr in arrays:
        if arr.dtype == object:
            raise AggregateError("aggregate applied to non-numeric column")
        out.append(np.asarray(arr, dtype=np.float64))
    return out


def segment_pair(arrays: Sequence[np.ndarray]) \
        -> Tuple[np.ndarray, np.ndarray]:
    """Unpack exactly two column arrays (helper for binary aggregates)."""
    if len(arrays) != 2:
        raise AggregateError(f"expected 2 column arguments, got {len(arrays)}")
    first, second = as_float_arrays(arrays)
    return first, second
