"""Boolean/arithmetic condition expressions for ``DEFINE`` clauses.

The expression language covers everything Appendix E's queries need:

* literals, query parameters (``:name``),
* column references — bare ``temp`` (current variable's segment) or
  qualified ``UP.temp`` (the current variable, or a *reference* to another
  variable's matched segment delivered through ``refs``),
* ``first(expr_over_column)`` / ``last(...)`` point accessors,
* aggregate calls (``linear_reg_r2_signed(tstamp, price)``, ...),
* arithmetic (``+ - * /``), comparisons (``< <= > >= = != <>``),
  ``BETWEEN ... AND ...`` and boolean ``AND`` / ``OR`` / ``NOT``.

Expressions are immutable trees.  Evaluation happens against an
:class:`EvalContext` that knows the series, the current segment, the current
variable name and any referenced segments; aggregate evaluation is delegated
to a pluggable provider so the executor can swap in shared indexes
(Section 4.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Dict, FrozenSet, Iterator,
                    List, Optional, Sequence, Tuple)

from repro.aggregates.base import Aggregate
from repro.aggregates.registry import DEFAULT_REGISTRY, AggregateRegistry
from repro.errors import BindError, ExecutionError

if TYPE_CHECKING:
    from repro.timeseries.series import Series


class Expr:
    """Base class for expression nodes (immutable)."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant (number, string or boolean)."""

    value: object

    def __repr__(self):
        return repr(self.value)


@dataclass(frozen=True)
class Param(Expr):
    """A query parameter ``:name``, substituted at bind time."""

    name: str

    def __repr__(self):
        return f":{self.name}"


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A column reference, optionally qualified by a variable name."""

    variable: Optional[str]
    column: str

    def __repr__(self):
        if self.variable:
            return f"{self.variable}.{self.column}"
        return self.column


@dataclass(frozen=True)
class PointAccess(Expr):
    """``first(col)`` / ``last(col)`` over a segment."""

    which: str  # 'first' or 'last'
    arg: ColumnRef

    def __repr__(self):
        return f"{self.which}({self.arg!r})"


@dataclass(frozen=True)
class AggCall(Expr):
    """An aggregate call over column arguments plus scalar extras."""

    name: str
    columns: Tuple[ColumnRef, ...]
    extra: Tuple[Expr, ...] = ()

    def __repr__(self):
        args = ", ".join(repr(a) for a in self.columns + self.extra)
        return f"{self.name}({args})"


@dataclass(frozen=True)
class Unary(Expr):
    """Unary minus or boolean NOT."""

    op: str  # '-' or 'not'
    operand: Expr

    def __repr__(self):
        return f"({self.op} {self.operand!r})"


@dataclass(frozen=True)
class Binary(Expr):
    """Binary arithmetic/comparison/boolean operator."""

    op: str
    left: Expr
    right: Expr

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class Between(Expr):
    """``expr BETWEEN lo AND hi`` (inclusive)."""

    operand: Expr
    low: Expr
    high: Expr

    def __repr__(self):
        return f"({self.operand!r} between {self.low!r} and {self.high!r})"


@dataclass(frozen=True)
class Interval(Expr):
    """An ``INTERVAL '5' DAY`` literal.

    Evaluates to the duration expressed in the *series'* native time unit,
    so ``tstamp - first(D.tstamp) <= INTERVAL '5' DAY`` works regardless of
    whether timestamps count days, hours or seconds.
    """

    value: float
    unit: str

    def __repr__(self):
        return f"INTERVAL '{self.value:g}' {self.unit}"


@dataclass(frozen=True)
class WindowCall(Expr):
    """A ``window(...)`` constraint appearing in a DEFINE condition.

    Kept opaque at parse time; the binder interprets the argument shape
    (point/time, bounded/fixed/wild) into a :class:`WindowSpec` and pulls it
    out of the residual Boolean condition.  A window call may only appear as
    a top-level conjunct of a definition.
    """

    args: Tuple[Expr, ...]

    def __repr__(self):
        return "window(" + ", ".join(repr(a) for a in self.args) + ")"


TRUE = Literal(True)

_ARITHMETIC: Dict[str, Callable[[float, float], float]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b != 0
    else math.inf * (1 if a > 0 else -1 if a < 0 else 0),
}

_COMPARISON: Dict[str, Callable[[object, object], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
}


def truthy(value: object) -> bool:
    """SQL-ish truthiness: booleans as-is, numbers nonzero, else bool()."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0 and not (isinstance(value, float)
                                   and math.isnan(value))
    return bool(value)


class AggregateProvider:
    """Strategy for evaluating aggregate calls.

    The default provider evaluates directly over segment slices.  The
    executor substitutes an index-aware provider for computation sharing.
    """

    def __init__(self, registry: AggregateRegistry = DEFAULT_REGISTRY):
        self.registry = registry

    def evaluate(self, agg: Aggregate, call: AggCall, ctx: "EvalContext",
                 segments: Sequence[Tuple[str, int, int]]) -> float:
        """Evaluate ``call`` where ``segments`` gives, per column argument,
        the resolved ``(column, start, end)`` triple."""
        if getattr(agg, "needs_series_context", False):
            column, start, end = segments[0]
            extra = [as_number(evaluate(e, ctx)) for e in call.extra]
            return agg.evaluate_with_context(
                ctx.series.column(column), start, end, extra)
        arrays = [ctx.series.values(column, start, end)
                  for column, start, end in segments]
        extra = [as_number(evaluate(e, ctx)) for e in call.extra]
        return agg.evaluate(arrays, extra)


class EvalContext:
    """Everything needed to evaluate an expression over one segment."""

    __slots__ = ("series", "start", "end", "variable", "refs", "provider",
                 "registry")

    def __init__(self, series: "Series", start: int, end: int,
                 variable: Optional[str] = None,
                 refs: Optional[Dict[str, Tuple[int, int]]] = None,
                 provider: Optional[AggregateProvider] = None,
                 registry: AggregateRegistry = DEFAULT_REGISTRY):
        self.series = series
        self.start = start
        self.end = end
        self.variable = variable
        self.refs = refs or {}
        self.registry = registry
        self.provider = provider or AggregateProvider(registry)

    def resolve_segment(self, variable: Optional[str]) -> Tuple[int, int]:
        """Segment addressed by a (possibly qualified) column reference."""
        if variable is None or variable == self.variable:
            return self.start, self.end
        if variable in self.refs:
            return self.refs[variable]
        raise ExecutionError(
            f"condition references variable {variable!r} but no matching "
            f"segment was provided (current={self.variable!r}, "
            f"refs={sorted(self.refs)})")


def as_number(value: object) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    raise ExecutionError(f"expected a number, got {value!r}")


def evaluate(expr: Expr, ctx: EvalContext) -> object:
    """Evaluate an expression tree to a Python value."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Interval):
        from repro.timeseries.timeunits import to_base_units
        return to_base_units(expr.value, expr.unit, ctx.series.time_unit)
    if isinstance(expr, WindowCall):
        raise ExecutionError(
            "window(...) must appear as a top-level conjunct of a DEFINE "
            "condition; it cannot be evaluated as a value")
    if isinstance(expr, Param):
        raise ExecutionError(f"unbound parameter :{expr.name} at evaluation "
                             f"time; bind the query with params first")
    if isinstance(expr, ColumnRef):
        start, end = ctx.resolve_segment(expr.variable)
        # A bare column over a multi-point segment is only meaningful inside
        # first()/last()/aggregates; standalone it denotes the last value
        # (MATCH_RECOGNIZE "final" semantics for navigation-free references).
        return ctx.series.value_at(expr.column,
                                   end if end is not None else start)
    if isinstance(expr, PointAccess):
        start, end = ctx.resolve_segment(expr.arg.variable)
        index = start if expr.which == "first" else end
        return ctx.series.value_at(expr.arg.column, index)
    if isinstance(expr, AggCall):
        agg = ctx.registry.get(expr.name)
        segments = []
        for ref in expr.columns:
            start, end = ctx.resolve_segment(ref.variable)
            segments.append((ref.column, start, end))
        return ctx.provider.evaluate(agg, expr, ctx, segments)
    if isinstance(expr, Unary):
        value = evaluate(expr.operand, ctx)
        if expr.op == "-":
            return -as_number(value)
        if expr.op == "not":
            return not truthy(value)
        raise ExecutionError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, Binary):
        if expr.op == "and":
            return truthy(evaluate(expr.left, ctx)) and \
                truthy(evaluate(expr.right, ctx))
        if expr.op == "or":
            return truthy(evaluate(expr.left, ctx)) or \
                truthy(evaluate(expr.right, ctx))
        left = evaluate(expr.left, ctx)
        right = evaluate(expr.right, ctx)
        if expr.op in _COMPARISON:
            try:
                # bool() strips numpy scalar types leaking from columns.
                return bool(_COMPARISON[expr.op](left, right))
            except TypeError:
                raise ExecutionError(
                    f"cannot compare {left!r} {expr.op} {right!r}") from None
        if expr.op in _ARITHMETIC:
            return _ARITHMETIC[expr.op](as_number(left), as_number(right))
        raise ExecutionError(f"unknown binary operator {expr.op!r}")
    if isinstance(expr, Between):
        value = evaluate(expr.operand, ctx)
        low = evaluate(expr.low, ctx)
        high = evaluate(expr.high, ctx)
        return low <= value <= high
    raise ExecutionError(f"cannot evaluate expression node {expr!r}")


def evaluate_condition(expr: Optional[Expr], ctx: EvalContext) -> bool:
    """Evaluate a condition (``None`` means ``true``)."""
    if expr is None:
        return True
    return truthy(evaluate(expr, ctx))


# ---------------------------------------------------------------------------
# Static analysis helpers
# ---------------------------------------------------------------------------

def walk(expr: Expr) -> Iterator[Expr]:
    """Yield every node of the tree (pre-order)."""
    yield expr
    if isinstance(expr, WindowCall):
        for child in expr.args:
            yield from walk(child)
    elif isinstance(expr, PointAccess):
        yield from walk(expr.arg)
    elif isinstance(expr, AggCall):
        for child in expr.columns + expr.extra:
            yield from walk(child)
    elif isinstance(expr, Unary):
        yield from walk(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, Between):
        yield from walk(expr.operand)
        yield from walk(expr.low)
        yield from walk(expr.high)


def referenced_variables(expr: Optional[Expr]) -> FrozenSet[str]:
    """All variable names qualifying column references in the tree."""
    if expr is None:
        return frozenset()
    names = set()
    for node in walk(expr):
        if isinstance(node, ColumnRef) and node.variable:
            names.add(node.variable)
    return frozenset(names)


def external_references(expr: Optional[Expr],
                        self_name: str) -> FrozenSet[str]:
    """Variables other than ``self_name`` referenced by the condition."""
    return frozenset(name for name in referenced_variables(expr)
                     if name != self_name)


def aggregate_calls(expr: Optional[Expr]) -> List[AggCall]:
    """All aggregate calls in the tree (document order)."""
    if expr is None:
        return []
    return [node for node in walk(expr) if isinstance(node, AggCall)]


def columns_used(expr: Optional[Expr]) -> FrozenSet[str]:
    if expr is None:
        return frozenset()
    return frozenset(node.column for node in walk(expr)
                     if isinstance(node, ColumnRef))


def parameters_used(expr: Optional[Expr]) -> FrozenSet[str]:
    if expr is None:
        return frozenset()
    return frozenset(node.name for node in walk(expr)
                     if isinstance(node, Param))


def transform(expr: Expr, fn: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Bottom-up rewrite: ``fn`` may return a replacement node or ``None``."""
    if isinstance(expr, WindowCall):
        rebuilt_args = tuple(transform(a, fn) for a in expr.args)
        replacement = fn(WindowCall(rebuilt_args))
        return WindowCall(rebuilt_args) if replacement is None else replacement
    if isinstance(expr, PointAccess):
        arg = transform(expr.arg, fn)
        if not isinstance(arg, ColumnRef):
            raise BindError(f"{expr.which}() argument must stay a column "
                            f"reference after rewriting")
        rebuilt: Expr = PointAccess(expr.which, arg)
    elif isinstance(expr, AggCall):
        columns = tuple(transform(c, fn) for c in expr.columns)
        extra = tuple(transform(e, fn) for e in expr.extra)
        for col in columns:
            if not isinstance(col, ColumnRef):
                raise BindError("aggregate column arguments must stay column "
                                "references after rewriting")
        rebuilt = AggCall(expr.name, columns, extra)
    elif isinstance(expr, Unary):
        rebuilt = Unary(expr.op, transform(expr.operand, fn))
    elif isinstance(expr, Binary):
        rebuilt = Binary(expr.op, transform(expr.left, fn),
                         transform(expr.right, fn))
    elif isinstance(expr, Between):
        rebuilt = Between(transform(expr.operand, fn),
                          transform(expr.low, fn), transform(expr.high, fn))
    else:
        rebuilt = expr
    replacement = fn(rebuilt)
    return rebuilt if replacement is None else replacement


def substitute_params(expr: Optional[Expr],
                      params: Dict[str, object]) -> Optional[Expr]:
    """Replace every :class:`Param` with its literal value.

    Raises :class:`BindError` for parameters missing from ``params``.
    """
    if expr is None:
        return None

    def replace(node: Expr) -> Optional[Expr]:
        if isinstance(node, Param):
            if node.name not in params:
                raise BindError(f"missing value for parameter :{node.name}")
            return Literal(params[node.name])
        return None

    return transform(expr, replace)


def rename_variable(expr: Optional[Expr], old: str,
                    new: str) -> Optional[Expr]:
    """Rename qualified references from ``old`` to ``new`` (rewriter aid)."""
    if expr is None:
        return None

    def replace(node: Expr) -> Optional[Expr]:
        if isinstance(node, ColumnRef) and node.variable == old:
            return ColumnRef(new, node.column)
        return None

    return transform(expr, replace)


def split_conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Flatten top-level AND into a list of conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, Binary) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    if isinstance(expr, Literal) and expr.value is True:
        return []
    return [expr]


def conjoin(conjuncts: Sequence[Expr]) -> Optional[Expr]:
    """Rebuild an AND tree from a list of conjuncts (None when empty)."""
    result: Optional[Expr] = None
    for conjunct in conjuncts:
        result = conjunct if result is None \
            else Binary("and", result, conjunct)
    return result
