"""Bound queries: validated pattern + variable definitions.

The binder takes a :class:`~repro.lang.parser.ParsedQuery`, substitutes
parameters, interprets ``window(...)`` calls into :class:`WindowSpec`
constraints, fills in implicit definitions, and validates variables,
aggregates and references.  The result, :class:`Query`, is the input to
logical planning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.aggregates.registry import DEFAULT_REGISTRY, AggregateRegistry
from repro.errors import BindError
from repro.lang import expr as E
from repro.lang import pattern as P
from repro.lang.parser import ParsedQuery, parse
from repro.lang.windows import WindowConjunction, WindowSpec

#: Recognized time-unit names inside window(...) calls.
_UNIT_NAMES = {"SECOND", "MINUTE", "HOUR", "DAY", "WEEK"}


@dataclass(frozen=True)
class VarDef:
    """A bound variable definition.

    ``windows`` holds the window constraints extracted from the definition's
    top-level conjuncts; ``condition`` is the residual Boolean condition
    (``None`` when always true).  ``external_refs`` are other variables whose
    matched segments the condition needs (the ``refs`` mechanism).
    """

    name: str
    is_segment: bool
    windows: Tuple[WindowSpec, ...] = ()
    condition: Optional[E.Expr] = None
    external_refs: FrozenSet[str] = frozenset()

    @property
    def window_conjunction(self) -> WindowConjunction:
        return WindowConjunction(list(self.windows))

    @property
    def is_window_only(self) -> bool:
        """True when the variable is nothing but a window constraint."""
        return self.condition is None

    @property
    def is_wild(self) -> bool:
        """True when the variable matches any segment (``AS true``)."""
        return self.condition is None and all(w.is_wild for w in self.windows)

    def aggregate_calls(self) -> List[E.AggCall]:
        return E.aggregate_calls(self.condition)

    def describe(self) -> str:
        kind = "SEGMENT " if self.is_segment else ""
        parts = [w.describe() for w in self.windows]
        if self.condition is not None:
            parts.append(repr(self.condition))
        body = " AND ".join(parts) if parts else "true"
        return f"{kind}{self.name} AS {body}"


@dataclass
class Query:
    """A bound, validated query ready for planning."""

    pattern: P.Pattern
    variables: Dict[str, VarDef]
    partition_by: List[str] = field(default_factory=list)
    order_by: str = "tstamp"
    subsets: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    registry: AggregateRegistry = field(
        default_factory=lambda: DEFAULT_REGISTRY)

    def var(self, name: str) -> VarDef:
        try:
            return self.variables[name]
        except KeyError:
            raise BindError(f"unknown variable {name!r}") from None

    def has_segment_variables(self, node: P.Pattern) -> bool:
        """Whether a sub-pattern contains any segment variable.

        Determines concatenation semantics: shared-boundary when segments
        are involved, classic disjoint otherwise (Definition 2.1).
        """
        for sub in P.walk(node):
            if isinstance(sub, P.VarRef) and self.var(sub.name).is_segment:
                return True
        return False

    def external_refs_of(self, node: P.Pattern) -> FrozenSet[str]:
        """Variables referenced by conditions inside ``node`` but matched
        outside of it."""
        inside = {sub.name for sub in P.walk(node)
                  if isinstance(sub, P.VarRef)}
        needed = set()
        for name in inside:
            needed |= set(self.var(name).external_refs)
        return frozenset(needed - inside)

    def referenced_variables(self) -> FrozenSet[str]:
        """Variables whose matched segments some condition references."""
        needed = set()
        for var in self.variables.values():
            needed |= set(var.external_refs)
        return frozenset(needed)

    def describe(self) -> str:
        lines = []
        if self.partition_by:
            lines.append("PARTITION BY " + ", ".join(self.partition_by))
        lines.append(f"ORDER BY {self.order_by}")
        lines.append(f"PATTERN {self.pattern.describe()}")
        defines = [self.variables[name].describe()
                   for name in sorted(self.variables)]
        if defines:
            lines.append("DEFINE " + ",\n       ".join(defines))
        return "\n".join(lines)


def _as_bound_number(expr: E.Expr, what: str) -> Optional[float]:
    if isinstance(expr, E.Literal):
        if expr.value is None:
            return None
        if isinstance(expr.value, (int, float)) \
                and not isinstance(expr.value, bool):
            return float(expr.value)
    if isinstance(expr, E.Unary) and expr.op == "-":
        inner = _as_bound_number(expr.operand, what)
        if inner is not None:
            return -inner
    raise BindError(f"window {what} must be a number, null or inf, "
                    f"got {expr!r}")


def _interpret_window(call: E.WindowCall, var_name: str) -> WindowSpec:
    """Turn a ``window(...)`` call into a :class:`WindowSpec` (footnote 4)."""
    args = call.args
    if not args:
        return WindowSpec.point(0.0, None)
    if isinstance(args[0], E.ColumnRef):
        first = args[0]
        if first.variable not in (None, var_name):
            raise BindError(
                f"window column must belong to the defined variable "
                f"{var_name!r}, got {first.variable!r}")
        column = first.column
        rest = args[1:]
        if not rest:
            raise BindError("time-based window needs bounds and a unit")
        unit_ref = rest[-1]
        if not (isinstance(unit_ref, E.ColumnRef)
                and unit_ref.variable is None
                and unit_ref.column.upper() in _UNIT_NAMES):
            raise BindError(
                f"time-based window must end with a unit "
                f"({sorted(_UNIT_NAMES)}); got {unit_ref!r}")
        unit = unit_ref.column.upper()
        bounds = rest[:-1]
        if len(bounds) == 1:
            size = _as_bound_number(bounds[0], "size")
            if size is None:
                raise BindError("fixed window size cannot be unbounded")
            return WindowSpec.time(column, size, size, unit)
        if len(bounds) == 2:
            lo = _as_bound_number(bounds[0], "lower bound")
            hi = _as_bound_number(bounds[1], "upper bound")
            return WindowSpec.time(column, lo if lo is not None else 0.0,
                                   hi, unit)
        raise BindError(f"time-based window takes 3 or 4 arguments, "
                        f"got {len(args)}")
    if len(args) == 1:
        size = _as_bound_number(args[0], "size")
        if size is None:
            raise BindError("fixed window size cannot be unbounded")
        return WindowSpec.point_fixed(size)
    if len(args) == 2:
        lo = _as_bound_number(args[0], "lower bound")
        hi = _as_bound_number(args[1], "upper bound")
        return WindowSpec.point(lo if lo is not None else 0.0, hi)
    raise BindError(f"point-based window takes 0-2 arguments, got {len(args)}")


def _split_definition(name: str, condition: E.Expr) \
        -> Tuple[Tuple[WindowSpec, ...], Optional[E.Expr]]:
    """Separate window constraints from the residual Boolean condition."""
    windows: List[WindowSpec] = []
    residual: List[E.Expr] = []
    for conjunct in E.split_conjuncts(condition):
        if isinstance(conjunct, E.WindowCall):
            windows.append(_interpret_window(conjunct, name))
            continue
        for node in E.walk(conjunct):
            if isinstance(node, E.WindowCall):
                raise BindError(
                    f"window(...) in variable {name!r} must be a top-level "
                    f"conjunct of its definition")
        residual.append(conjunct)
    return tuple(windows), E.conjoin(residual)


def bind(parsed: ParsedQuery, params: Optional[Dict[str, object]] = None,
         registry: AggregateRegistry = DEFAULT_REGISTRY) -> Query:
    """Bind and validate a parsed query."""
    params = params or {}
    if parsed.pattern is None:
        raise BindError("query has no pattern")
    if parsed.order_by is None:
        raise BindError("query needs an ORDER BY column")

    pattern_vars = parsed.pattern.variables()
    pattern_var_set = set(pattern_vars)

    variables: Dict[str, VarDef] = {}
    for raw in parsed.defines:
        if raw.name in variables:
            raise BindError(f"variable {raw.name!r} defined twice")
        if raw.name not in pattern_var_set:
            raise BindError(f"variable {raw.name!r} is defined but does not "
                            f"appear in the pattern")
        condition = E.substitute_params(raw.condition, params)
        windows, residual = _split_definition(raw.name, condition)
        if not raw.is_segment:
            if windows:
                raise BindError(f"point variable {raw.name!r} cannot declare "
                                f"a window; declare it SEGMENT")
        external = E.external_references(residual, raw.name)
        variables[raw.name] = VarDef(raw.name, raw.is_segment, windows,
                                     residual, external)

    # Variables appearing in the pattern without a DEFINE default to point
    # variables matching any record (standard MATCH_RECOGNIZE behaviour).
    for name in pattern_vars:
        if name not in variables:
            variables[name] = VarDef(name, is_segment=False)

    # Validate references and aggregate calls.
    known = set(variables) | set(parsed.subsets)
    for var in variables.values():
        unknown = set(var.external_refs) - known
        if unknown:
            raise BindError(
                f"variable {var.name!r} references undefined variable(s) "
                f"{sorted(unknown)}")
        for call in var.aggregate_calls():
            agg = registry.get(call.name)
            agg.validate_call(len(call.columns), len(call.extra))
        remaining = E.parameters_used(var.condition)
        if remaining:
            raise BindError(f"variable {var.name!r} has unbound parameter(s) "
                            f"{sorted(remaining)}")

    return Query(pattern=parsed.pattern, variables=variables,
                 partition_by=list(parsed.partition_by),
                 order_by=parsed.order_by, subsets=dict(parsed.subsets),
                 registry=registry)


def compile_query(text: str, params: Optional[Dict[str, object]] = None,
                  registry: AggregateRegistry = DEFAULT_REGISTRY) -> Query:
    """Parse + bind in one step (the common entry point)."""
    return bind(parse(text, params), params, registry)
