"""Tokenizer for the extended MATCH_RECOGNIZE query syntax."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import QuerySyntaxError

#: Reserved words (case-insensitive).  ``window`` is *not* reserved — it is
#: parsed as a function call in conditions.
KEYWORDS = {
    "PARTITION", "ORDER", "BY", "PATTERN", "DEFINE", "SEGMENT", "SEG", "AS",
    "AND", "OR", "NOT", "BETWEEN", "TRUE", "FALSE", "NULL", "INF", "SUBSET",
    "MEASURES",
}

#: Multi-character operators, longest first.
_MULTI_OPS = ["<=", ">=", "!=", "<>", "=="]
_SINGLE_OPS = "()[]{},.&|~*+?=<>-/:"


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    kind: str  # 'ident', 'keyword', 'number', 'string', 'param', 'op', 'eof'
    text: str
    line: int
    column: int

    def upper(self) -> str:
        return self.text.upper()

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(text: str) -> List[Token]:
    """Tokenize query text, raising :class:`QuerySyntaxError` on bad input.

    Supports ``--`` line comments.  String literals use single quotes with
    ``''`` as the escape for a literal quote.
    """
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(text)

    def error(message: str) -> QuerySyntaxError:
        return QuerySyntaxError(message, line, column)

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_line, start_column = line, column
        if ch == "'":
            j = i + 1
            value_chars = []
            while j < n:
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        value_chars.append("'")
                        j += 2
                        continue
                    break
                if text[j] == "\n":
                    raise error("unterminated string literal")
                value_chars.append(text[j])
                j += 1
            if j >= n:
                raise error("unterminated string literal")
            tokens.append(Token("string", "".join(value_chars),
                                start_line, start_column))
            column += (j + 1 - i)
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # Don't swallow a trailing '.' used for qualified names.
                    if j + 1 < n and text[j + 1].isdigit():
                        seen_dot = True
                        j += 1
                    else:
                        break
                elif c in "eE" and not seen_exp and j > i:
                    if j + 1 < n and (text[j + 1].isdigit()
                                      or text[j + 1] in "+-"):
                        seen_exp = True
                        j += 1
                        if text[j] in "+-":
                            j += 1
                    else:
                        break
                else:
                    break
            tokens.append(Token("number", text[i:j], start_line, start_column))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "keyword" if word.upper() in KEYWORDS else "ident"
            tokens.append(Token(kind, word, start_line, start_column))
            column += j - i
            i = j
            continue
        if ch == ":" and i + 1 < n and (text[i + 1].isalpha()
                                        or text[i + 1] == "_"):
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("param", text[i + 1:j],
                                start_line, start_column))
            column += j - i
            i = j
            continue
        matched: Optional[str] = None
        for op in _MULTI_OPS:
            if text.startswith(op, i):
                matched = op
                break
        if matched is None and ch in _SINGLE_OPS:
            matched = ch
        if matched is None:
            raise error(f"unexpected character {ch!r}")
        tokens.append(Token("op", matched, start_line, start_column))
        column += len(matched)
        i += len(matched)

    tokens.append(Token("eof", "", line, column))
    return tokens
