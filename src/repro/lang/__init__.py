"""The extended MATCH_RECOGNIZE language: lexer, parser, AST, binder.

The typical entry point is :func:`repro.lang.query.compile_query`, which
parses and binds a query text (with parameters) into a validated
:class:`repro.lang.query.Query`.
"""

from repro.lang.query import Query, VarDef, compile_query
from repro.lang.windows import WILD, WindowConjunction, WindowSpec

__all__ = ["Query", "VarDef", "compile_query", "WILD", "WindowConjunction",
           "WindowSpec"]
