"""Recursive-descent parser for the extended MATCH_RECOGNIZE syntax.

Grammar sketch (clauses may appear in any reasonable order; ``PATTERN`` and
``DEFINE`` are the interesting ones)::

    query        := clauses
    clauses      := [PARTITION BY ident (, ident)*] [ORDER BY ident]
                    PATTERN '(' pattern ')' subset* [DEFINE define_list]
    subset       := SUBSET ident '=' '(' ident (, ident)* ')'
    define_list  := define (',' define)*
    define       := [SEGMENT|SEG] ident AS condition

    pattern      := alternation
    alternation  := conjunction ('|' conjunction)*
    conjunction  := sequence ('&' sequence)*
    sequence     := unary+
    unary        := '~' unary | postfix
    postfix      := primary quantifier?
    quantifier   := '*' | '+' | '?' | '{' bound [',' bound?] '}'
    primary      := ident | '(' pattern ')'

Operator precedence (loosest to tightest): ``|``, ``&``, juxtaposition
(concatenation), ``~``, quantifiers.  Quantifier bounds may be numbers or
``:params`` (resolved from the ``params`` mapping at parse time, since
pattern shape must be known before binding).

Conditions use conventional precedence: ``OR`` < ``AND`` < ``NOT`` <
comparison/``BETWEEN`` < additive < multiplicative < unary minus < primary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import QuerySyntaxError
from repro.lang import expr as E
from repro.lang import pattern as P
from repro.lang.lexer import Token, tokenize


@dataclass
class RawDefine:
    """One DEFINE entry before binding.

    ``line``/``column`` locate the defined name in the query text (1-based;
    0 when unknown) so diagnostics can point at the definition site.
    """

    name: str
    is_segment: bool
    condition: E.Expr
    line: int = 0
    column: int = 0


@dataclass
class ParsedQuery:
    """Parser output, consumed by the binder.

    ``var_spans`` maps each variable name to the (line, column) of its first
    occurrence in the PATTERN clause, for diagnostics.
    """

    partition_by: List[str] = field(default_factory=list)
    order_by: Optional[str] = None
    pattern: Optional[P.Pattern] = None
    subsets: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    defines: List[RawDefine] = field(default_factory=list)
    var_spans: Dict[str, Tuple[int, int]] = field(default_factory=dict)


class _Parser:
    def __init__(self, tokens: List[Token], params: Dict[str, object]):
        self._tokens = tokens
        self._pos = 0
        self._params = params
        self._var_spans: Dict[str, Tuple[int, int]] = {}

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _error(self, message: str) -> QuerySyntaxError:
        token = self._peek()
        return QuerySyntaxError(f"{message} (found {token.text!r})",
                                token.line, token.column)

    def _check_op(self, text: str) -> bool:
        token = self._peek()
        return token.kind == "op" and token.text == text

    def _check_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "keyword" and token.upper() == word

    def _accept_op(self, text: str) -> bool:
        if self._check_op(text):
            self._advance()
            return True
        return False

    def _expect_op(self, text: str) -> Token:
        if not self._check_op(text):
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._check_keyword(word):
            raise self._error(f"expected {word}")
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind != "ident":
            raise self._error("expected an identifier")
        return self._advance()

    # -- query clauses -----------------------------------------------------

    def parse_query(self) -> ParsedQuery:
        query = ParsedQuery()
        while not self._peek().kind == "eof":
            if self._check_keyword("PARTITION"):
                self._advance()
                self._expect_keyword("BY")
                query.partition_by.append(self._expect_ident().text)
                while self._accept_op(","):
                    query.partition_by.append(self._expect_ident().text)
            elif self._check_keyword("ORDER"):
                self._advance()
                self._expect_keyword("BY")
                query.order_by = self._expect_ident().text
            elif self._check_keyword("PATTERN"):
                self._advance()
                # The pattern is a full expression; outer parentheses (as in
                # "PATTERN (A B)") are consumed by the pattern grammar, and
                # trailing operators ("PATTERN (...) & WINDOW") still bind.
                query.pattern = self.parse_pattern()
            elif self._check_keyword("SUBSET"):
                self._advance()
                name = self._expect_ident().text
                self._expect_op("=")
                self._expect_op("(")
                members = [self._expect_ident().text]
                while self._accept_op(","):
                    members.append(self._expect_ident().text)
                self._expect_op(")")
                query.subsets[name] = tuple(members)
            elif self._check_keyword("DEFINE"):
                self._advance()
                query.defines = self._parse_defines()
            else:
                raise self._error("expected a query clause")
        if query.pattern is None:
            raise QuerySyntaxError("query has no PATTERN clause")
        query.var_spans = dict(self._var_spans)
        return query

    def _parse_defines(self) -> List[RawDefine]:
        defines = [self._parse_define()]
        while self._accept_op(","):
            if self._peek().kind == "eof":
                break  # tolerate a trailing comma
            defines.append(self._parse_define())
        return defines

    def _parse_define(self) -> RawDefine:
        is_segment = False
        if self._check_keyword("SEGMENT") or self._check_keyword("SEG"):
            self._advance()
            is_segment = True
        name_token = self._expect_ident()
        self._expect_keyword("AS")
        condition = self.parse_condition()
        return RawDefine(name_token.text, is_segment, condition,
                         line=name_token.line, column=name_token.column)

    # -- pattern grammar ---------------------------------------------------

    def parse_pattern(self) -> P.Pattern:
        return self._parse_alternation()

    def _parse_alternation(self) -> P.Pattern:
        parts = [self._parse_conjunction()]
        while self._accept_op("|"):
            parts.append(self._parse_conjunction())
        return P.disj(*parts)

    def _parse_conjunction(self) -> P.Pattern:
        parts = [self._parse_sequence()]
        while self._accept_op("&"):
            parts.append(self._parse_sequence())
        return P.conj(*parts)

    def _parse_sequence(self) -> P.Pattern:
        parts = [self._parse_pattern_unary()]
        while True:
            token = self._peek()
            if token.kind == "ident" or (token.kind == "op"
                                         and token.text in ("(", "~")):
                parts.append(self._parse_pattern_unary())
            else:
                break
        return P.concat(*parts)

    def _parse_pattern_unary(self) -> P.Pattern:
        if self._accept_op("~"):
            return P.Not(self._parse_pattern_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> P.Pattern:
        node = self._parse_pattern_primary()
        while True:
            if self._accept_op("*"):
                node = P.Kleene(node, 0, None)
            elif self._accept_op("+"):
                node = P.Kleene(node, 1, None)
            elif self._accept_op("?"):
                node = P.Kleene(node, 0, 1)
            elif self._check_op("{"):
                self._advance()
                low = self._parse_quantifier_bound()
                high: Optional[int] = low
                if self._accept_op(","):
                    if self._check_op("}"):
                        high = None
                    else:
                        high = self._parse_quantifier_bound()
                self._expect_op("}")
                node = P.Kleene(node, low, high)
            else:
                break
        return node

    def _parse_quantifier_bound(self) -> int:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return int(float(token.text))
        if token.kind == "param":
            self._advance()
            if token.text not in self._params:
                raise QuerySyntaxError(
                    f"quantifier parameter :{token.text} must be supplied at "
                    f"parse time", token.line, token.column)
            return int(self._params[token.text])
        raise self._error("expected a quantifier bound")

    def _parse_pattern_primary(self) -> P.Pattern:
        if self._accept_op("("):
            inner = self.parse_pattern()
            self._expect_op(")")
            return inner
        token = self._peek()
        if token.kind == "ident":
            self._advance()
            self._var_spans.setdefault(token.text, (token.line, token.column))
            return P.VarRef(token.text)
        raise self._error("expected a variable or '('")

    # -- condition grammar ---------------------------------------------------

    def parse_condition(self) -> E.Expr:
        return self._parse_or()

    def _parse_or(self) -> E.Expr:
        node = self._parse_and()
        while self._check_keyword("OR"):
            self._advance()
            node = E.Binary("or", node, self._parse_and())
        return node

    def _parse_and(self) -> E.Expr:
        node = self._parse_not()
        while self._check_keyword("AND"):
            self._advance()
            node = E.Binary("and", node, self._parse_not())
        return node

    def _parse_not(self) -> E.Expr:
        if self._check_keyword("NOT"):
            self._advance()
            return E.Unary("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> E.Expr:
        node = self._parse_additive()
        if self._check_keyword("BETWEEN"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return E.Between(node, low, high)
        token = self._peek()
        if token.kind == "op" and token.text in ("<", "<=", ">", ">=", "=",
                                                 "==", "!=", "<>"):
            self._advance()
            right = self._parse_additive()
            return E.Binary(token.text, node, right)
        return node

    def _parse_additive(self) -> E.Expr:
        node = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self._advance()
                node = E.Binary(token.text, node,
                                self._parse_multiplicative())
            else:
                break
        return node

    def _parse_multiplicative(self) -> E.Expr:
        node = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ("*", "/"):
                self._advance()
                node = E.Binary(token.text, node, self._parse_unary())
            else:
                break
        return node

    def _parse_unary(self) -> E.Expr:
        if self._check_op("-"):
            self._advance()
            return E.Unary("-", self._parse_unary())
        if self._check_op("+"):
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> E.Expr:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            text = token.text
            value = float(text)
            if value.is_integer() and "." not in text \
                    and "e" not in text.lower():
                return E.Literal(int(value))
            return E.Literal(value)
        if token.kind == "string":
            self._advance()
            return E.Literal(token.text)
        if token.kind == "param":
            self._advance()
            if token.text in self._params:
                return E.Literal(self._params[token.text])
            return E.Param(token.text)
        if token.kind == "keyword":
            word = token.upper()
            if word == "TRUE":
                self._advance()
                return E.Literal(True)
            if word == "FALSE":
                self._advance()
                return E.Literal(False)
            if word in ("NULL", "INF"):
                self._advance()
                return E.Literal(None)
            raise self._error("unexpected keyword in condition")
        if token.kind == "op" and token.text == "(":
            self._advance()
            inner = self.parse_condition()
            self._expect_op(")")
            return inner
        if token.kind == "ident":
            return self._parse_name_or_call()
        raise self._error("expected a condition term")

    def _parse_name_or_call(self) -> E.Expr:
        name_token = self._advance()
        name = name_token.text
        # INTERVAL '<n>' UNIT literal (SQL standard spelling).
        if name.upper() == "INTERVAL" and self._peek().kind in ("string",
                                                                "number"):
            value_token = self._advance()
            try:
                value = float(value_token.text)
            except ValueError:
                raise QuerySyntaxError(
                    f"INTERVAL value must be numeric, got "
                    f"{value_token.text!r}", value_token.line,
                    value_token.column) from None
            unit_token = self._expect_ident()
            return E.Interval(value, unit_token.text.upper())
        # Qualified column reference VAR.col
        if self._check_op("."):
            self._advance()
            column = self._expect_ident().text
            return E.ColumnRef(name, column)
        if self._check_op("("):
            self._advance()
            args: List[E.Expr] = []
            if not self._check_op(")"):
                args.append(self.parse_condition())
                while self._accept_op(","):
                    args.append(self.parse_condition())
            self._expect_op(")")
            return self._build_call(name, args, name_token)
        return E.ColumnRef(None, name)

    def _build_call(self, name: str, args: List[E.Expr],
                    token: Token) -> E.Expr:
        lowered = name.lower()
        if lowered == "window":
            return E.WindowCall(tuple(args))
        if lowered in ("first", "last"):
            if len(args) != 1 or not isinstance(args[0], E.ColumnRef):
                raise QuerySyntaxError(
                    f"{lowered}() takes exactly one column reference",
                    token.line, token.column)
            return E.PointAccess(lowered, args[0])
        columns: List[E.ColumnRef] = []
        extra: List[E.Expr] = []
        for arg in args:
            if isinstance(arg, E.ColumnRef) and not extra:
                columns.append(arg)
            else:
                extra.append(arg)
        return E.AggCall(name.lower(), tuple(columns), tuple(extra))


def parse(text: str,
          params: Optional[Dict[str, object]] = None) -> ParsedQuery:
    """Parse a full query text into a :class:`ParsedQuery`."""
    parser = _Parser(tokenize(text), params or {})
    return parser.parse_query()


def parse_pattern(text: str,
                  params: Optional[Dict[str, object]] = None) -> P.Pattern:
    """Parse a standalone pattern expression (testing aid)."""
    parser = _Parser(tokenize(text), params or {})
    pattern = parser.parse_pattern()
    if parser._peek().kind != "eof":
        raise parser._error("trailing input after pattern")
    return pattern


def parse_condition(text: str,
                    params: Optional[Dict[str, object]] = None) -> E.Expr:
    """Parse a standalone condition expression (testing aid)."""
    parser = _Parser(tokenize(text), params or {})
    condition = parser.parse_condition()
    if parser._peek().kind != "eof":
        raise parser._error("trailing input after condition")
    return condition
