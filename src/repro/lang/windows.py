"""Window specifications (Section 2.1, footnote 4).

Two window families exist:

* point-based ``window(lo, hi)`` — constrains the *index duration*
  ``end - start`` of a segment to ``lo <= end - start <= hi``;
* time-based ``window(col, lo, hi, unit)`` — constrains the *time duration*
  ``col[end] - col[start]``.

Fixed-size forms ``window(size)`` / ``window(col, size, unit)`` set
``lo == hi``.  A *wild* window has no constraint at all (``W AS true``).
``hi`` may be ``None`` for "unbounded above".

Windows measure **duration**, not point count: a ``w``-day window on a
daily series admits exactly ``n - w`` start positions, matching the match
counting in the paper's footnote 3.  See DESIGN.md §3.

Because a variable can accumulate several window constraints (its own plus
pushed-down parent windows), the embedded window of a plan node is a
:class:`WindowConjunction` — the intersection of point- and time-based
specs, reduced to a contiguous range of valid end positions per start
position on a concrete series.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import BindError
from repro.timeseries.series import Series
from repro.timeseries.timeunits import to_base_units


@dataclass(frozen=True)
class WindowSpec:
    """One window constraint.

    ``kind`` is ``'point'`` or ``'time'``.  For time windows ``column`` and
    ``unit`` identify the timestamp column and the unit of ``lo``/``hi``.
    """

    kind: str
    lo: float = 0.0
    hi: Optional[float] = None
    column: Optional[str] = None
    unit: Optional[str] = None

    def __post_init__(self):
        if self.kind not in ("point", "time"):
            raise BindError(f"window kind must be 'point' or 'time', got "
                            f"{self.kind!r}")
        if self.lo < 0:
            raise BindError(f"window lower bound must be >= 0, got {self.lo}")
        if self.hi is not None and self.hi < self.lo:
            raise BindError(f"window upper bound {self.hi} < lower {self.lo}")
        if self.kind == "time" and self.unit is None:
            raise BindError("time-based window needs a unit")

    @staticmethod
    def point(lo: float, hi: Optional[float]) -> "WindowSpec":
        return WindowSpec("point", float(lo),
                          None if hi is None else float(hi))

    @staticmethod
    def point_fixed(size: float) -> "WindowSpec":
        return WindowSpec("point", float(size), float(size))

    @staticmethod
    def time(column: Optional[str], lo: float, hi: Optional[float],
             unit: str) -> "WindowSpec":
        return WindowSpec("time", float(lo), None if hi is None else float(hi),
                          column, unit)

    @property
    def is_wild(self) -> bool:
        """True when the spec never rejects any segment."""
        return self.lo <= 0 and self.hi is None

    def relax_lower(self) -> "WindowSpec":
        """Keep only the upper bound (used by window push-down)."""
        return WindowSpec(self.kind, 0.0, self.hi, self.column, self.unit)

    def bounds_on(self, series: Series) -> Tuple[float, Optional[float]]:
        """(lo, hi) expressed in the series' native duration units."""
        if self.kind == "point":
            return self.lo, self.hi
        lo = to_base_units(self.lo, self.unit, series.time_unit)
        hi = None if self.hi is None else to_base_units(
            self.hi, self.unit, series.time_unit)
        return lo, hi

    def describe(self) -> str:
        hi = "inf" if self.hi is None else f"{self.hi:g}"
        if self.kind == "point":
            return f"window({self.lo:g}, {hi})"
        return f"window({self.column}, {self.lo:g}, {hi}, {self.unit})"


#: The wild window: accepts every segment.
WILD = WindowSpec.point(0.0, None)


class WindowConjunction:
    """Intersection of zero or more window specs, bound to nothing yet.

    An empty conjunction is wild.  On a concrete series the conjunction maps
    each start position to one contiguous range of admissible end positions
    (both point- and time-duration constraints are monotone in the end
    index since timestamps are sorted).
    """

    __slots__ = ("specs",)

    def __init__(self, specs: Optional[List[WindowSpec]] = None):
        merged: List[WindowSpec] = []
        for spec in specs or []:
            if not spec.is_wild:
                merged.append(spec)
        self.specs = tuple(merged)

    @staticmethod
    def wild() -> "WindowConjunction":
        return WindowConjunction()

    @property
    def is_wild(self) -> bool:
        return not self.specs

    def and_also(self, other: "WindowConjunction") -> "WindowConjunction":
        """Intersection of two conjunctions."""
        return WindowConjunction(list(self.specs) + list(other.specs))

    def with_spec(self, spec: WindowSpec) -> "WindowConjunction":
        return WindowConjunction(list(self.specs) + [spec])

    def relax_lower(self) -> "WindowConjunction":
        """Push-down form: only upper bounds survive (Section 3)."""
        relaxed = [spec.relax_lower() for spec in self.specs]
        return WindowConjunction(relaxed)

    def point_duration_bounds(self) -> Tuple[int, Optional[int]]:
        """Combined bounds on index duration from the point specs only."""
        lo = 0
        hi: Optional[int] = None
        for spec in self.specs:
            if spec.kind != "point":
                continue
            lo = max(lo, int(math.ceil(spec.lo)))
            if spec.hi is not None:
                spec_hi = int(math.floor(spec.hi))
                hi = spec_hi if hi is None else min(hi, spec_hi)
        return lo, hi

    def end_range(self, series: Series, start: int) -> Tuple[int, int]:
        """Admissible ``[end_lo, end_hi]`` for segments starting at ``start``.

        Returns an empty range (``end_lo > end_hi``) when no end position is
        admissible.  Both bounds are clamped to the series.
        """
        n = len(series)
        end_lo = start
        end_hi = n - 1
        for spec in self.specs:
            lo, hi = spec.bounds_on(series)
            if spec.kind == "point":
                end_lo = max(end_lo, start + int(math.ceil(lo)))
                if hi is not None:
                    end_hi = min(end_hi, start + int(math.floor(hi)))
            else:
                column = spec.column or series.order_column
                timestamps = series.column(column)
                base = timestamps[start]
                # Smallest end with duration >= lo; the bisect uses
                # base + lo, so fix the boundary up against the canonical
                # duration predicate (ts[e] - base), which can differ by
                # one ULP from the bisect key.
                candidate = bisect.bisect_left(timestamps, base + lo,
                                               lo=start, hi=n)
                while candidate > start and \
                        timestamps[candidate - 1] - base >= lo:
                    candidate -= 1
                while candidate < n and timestamps[candidate] - base < lo:
                    candidate += 1
                end_lo = max(end_lo, candidate)
                if hi is not None:
                    # Largest end with duration <= hi (same fix-up).
                    candidate = bisect.bisect_right(timestamps, base + hi,
                                                    lo=start, hi=n) - 1
                    while candidate + 1 < n and \
                            timestamps[candidate + 1] - base <= hi:
                        candidate += 1
                    while candidate >= start and \
                            timestamps[candidate] - base > hi:
                        candidate -= 1
                    end_hi = min(end_hi, candidate)
        return end_lo, end_hi

    def start_range(self, series: Series, end: int) -> Tuple[int, int]:
        """Admissible ``[start_lo, start_hi]`` for segments ending at ``end``
        (mirror of :meth:`end_range`)."""
        n = len(series)
        start_lo = 0
        start_hi = end
        for spec in self.specs:
            lo, hi = spec.bounds_on(series)
            if spec.kind == "point":
                start_hi = min(start_hi, end - int(math.ceil(lo)))
                if hi is not None:
                    start_lo = max(start_lo, end - int(math.floor(hi)))
            else:
                column = spec.column or series.order_column
                timestamps = series.column(column)
                base = timestamps[end]
                # Largest start with duration >= lo, fixed up against the
                # canonical duration predicate (base - ts[s]).
                candidate = bisect.bisect_right(timestamps, base - lo,
                                                lo=0, hi=end + 1) - 1
                while candidate + 1 <= end and \
                        base - timestamps[candidate + 1] >= lo:
                    candidate += 1
                while candidate >= 0 and base - timestamps[candidate] < lo:
                    candidate -= 1
                start_hi = min(start_hi, candidate)
                if hi is not None:
                    # Smallest start with duration <= hi (same fix-up).
                    candidate = bisect.bisect_left(timestamps, base - hi,
                                                   lo=0, hi=end + 1)
                    while candidate > 0 and \
                            base - timestamps[candidate - 1] <= hi:
                        candidate -= 1
                    while candidate <= end and \
                            base - timestamps[candidate] > hi:
                        candidate += 1
                    start_lo = max(start_lo, candidate)
        return start_lo, start_hi

    def accepts(self, series: Series, start: int, end: int) -> bool:
        """Whether the inclusive ``[start, end]`` satisfies all specs."""
        for spec in self.specs:
            lo, hi = spec.bounds_on(series)
            if spec.kind == "point":
                duration = end - start
            else:
                column = spec.column or series.order_column
                values = series.column(column)
                duration = float(values[end] - values[start])
            if duration < lo:
                return False
            if hi is not None and duration > hi:
                return False
        return True

    def iterate(self, series: Series, s_lo: int, s_hi: int, e_lo: int,
                e_hi: int) -> Iterator[Tuple[int, int]]:
        """All ``(start, end)`` pairs in the boxed search space that satisfy
        the conjunction, in (start, end) lexicographic order."""
        n = len(series)
        s_lo = max(s_lo, 0)
        s_hi = min(s_hi, n - 1)
        for start in range(s_lo, s_hi + 1):
            lo, hi = self.end_range(series, start)
            lo = max(lo, e_lo, start)
            hi = min(hi, e_hi, n - 1)
            for end in range(lo, hi + 1):
                yield start, end

    def iterate_by_end(self, series: Series, s_lo: int, s_hi: int, e_lo: int,
                       e_hi: int) -> Iterator[Tuple[int, int]]:
        """Like :meth:`iterate` but driven by end positions.

        Yields the same pair set ordered by (end, start).  Much cheaper
        when the end range is far smaller than the start range (probe
        search spaces fix the end)."""
        n = len(series)
        e_lo = max(e_lo, 0)
        e_hi = min(e_hi, n - 1)
        for end in range(e_lo, e_hi + 1):
            lo, hi = self.start_range(series, end)
            lo = max(lo, s_lo, 0)
            hi = min(hi, s_hi, end)
            for start in range(lo, hi + 1):
                yield start, end

    def iterate_box(self, series: Series, s_lo: int, s_hi: int, e_lo: int,
                    e_hi: int) -> Iterator[Tuple[int, int]]:
        """Iterate admissible pairs, picking the cheaper driving direction.

        Start-driven iteration costs O(|S|) even when every start yields an
        empty end range; probe search spaces often pin the end, so when the
        end range is smaller the end-driven order wins."""
        if (e_hi - e_lo) < (s_hi - s_lo):
            return self.iterate_by_end(series, s_lo, s_hi, e_lo, e_hi)
        return self.iterate(series, s_lo, s_hi, e_lo, e_hi)

    def count_pairs(self, series: Series, s_lo: int, s_hi: int, e_lo: int,
                    e_hi: int) -> int:
        """Exact number of admissible pairs in the boxed search space."""
        n = len(series)
        s_lo = max(s_lo, 0)
        s_hi = min(s_hi, n - 1)
        total = 0
        for start in range(s_lo, s_hi + 1):
            lo, hi = self.end_range(series, start)
            lo = max(lo, e_lo, start)
            hi = min(hi, e_hi, n - 1)
            if hi >= lo:
                total += hi - lo + 1
        return total

    def selectivity(self, series: Series, s_lo: int, s_hi: int, e_lo: int,
                    e_hi: int, max_starts: int = 256) -> float:
        """Estimated fraction of the boxed search space that is admissible.

        Exact when the start range is small; otherwise sampled over at most
        ``max_starts`` evenly spaced start positions (closed-form-cheap, as
        required by the cost model in Section 5.2).
        """
        n = len(series)
        s_lo = max(s_lo, 0)
        s_hi = min(s_hi, n - 1)
        e_lo = max(e_lo, 0)
        e_hi = min(e_hi, n - 1)
        num_starts = s_hi - s_lo + 1
        num_ends = e_hi - e_lo + 1
        if num_starts <= 0 or num_ends <= 0:
            return 0.0
        box = num_starts * num_ends
        if self.is_wild:
            # Only the e >= s triangle constraint applies; count exactly.
            admissible = 0
            for start in range(s_lo, s_hi + 1):
                lo = max(start, e_lo)
                if e_hi >= lo:
                    admissible += e_hi - lo + 1
            return admissible / box
        if num_starts <= max_starts:
            return self.count_pairs(series, s_lo, s_hi, e_lo, e_hi) / box
        step = max(1, num_starts // max_starts)
        sampled = range(s_lo, s_hi + 1, step)
        admissible = 0
        for start in sampled:
            lo, hi = self.end_range(series, start)
            lo = max(lo, e_lo, start)
            hi = min(hi, e_hi, n - 1)
            if hi >= lo:
                admissible += hi - lo + 1
        return (admissible / len(list(sampled))) * num_starts / box

    def describe(self) -> str:
        if self.is_wild:
            return "wild"
        return " & ".join(spec.describe() for spec in self.specs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WindowConjunction):
            return NotImplemented
        return self.specs == other.specs

    def __hash__(self) -> int:
        return hash(self.specs)

    def __repr__(self) -> str:
        return f"WindowConjunction({self.describe()})"
