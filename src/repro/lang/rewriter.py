"""Appendix B: rewriting standard MATCH_RECOGNIZE queries into T-ReX IR.

A rule system transforms point-variable patterns into segment-variable
patterns that expose optimization opportunities:

* **Rule 1** — convert trivially-true ``x*`` (and time-bounded ``x+``)
  point variables into segment variables;
* **Rule 2** — convert ``SUBSET`` variables into segment variables attached
  with ``&``;
* **Rule 3** — reassign CNF clauses of a variable's condition to the
  variable they actually constrain;
* **Rule 4** — decompose a segment variable's conjunctive condition into
  finer-grained variables combined with ``&``;
* **Rule 5** — remove irrelevant always-true variables.

:func:`rewrite_query` applies the rules to a fixpoint in the order Rule 2,
1, 3, 4, 5 — the sequence walked through in Example 3 of the paper.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Set, Tuple

from repro.lang import expr as E
from repro.lang import pattern as P
from repro.lang.query import Query, VarDef
from repro.lang.windows import WindowSpec

_fresh = itertools.count()


def _fresh_name(base: str, taken: Set[str]) -> str:
    candidate = base
    while candidate in taken:
        candidate = f"{base}_{next(_fresh)}"
    return candidate


def _replace_in_pattern(pattern: P.Pattern, target: P.Pattern,
                        replacement: P.Pattern) -> P.Pattern:
    if pattern == target:
        return replacement
    if isinstance(pattern, P.Concat):
        return P.concat(*[_replace_in_pattern(part, target, replacement)
                          for part in pattern.parts])
    if isinstance(pattern, P.And):
        return P.conj(*[_replace_in_pattern(part, target, replacement)
                        for part in pattern.parts])
    if isinstance(pattern, P.Or):
        return P.disj(*[_replace_in_pattern(part, target, replacement)
                        for part in pattern.parts])
    if isinstance(pattern, P.Kleene):
        return P.Kleene(_replace_in_pattern(pattern.child, target,
                                            replacement),
                        pattern.min_reps, pattern.max_reps)
    if isinstance(pattern, P.Not):
        return P.Not(_replace_in_pattern(pattern.child, target, replacement))
    return pattern


def _rename_refs_everywhere(query: Query, old: str, new: str) -> None:
    for name, var in list(query.variables.items()):
        if var.condition is not None and old in var.external_refs:
            condition = E.rename_variable(var.condition, old, new)
            query.variables[name] = VarDef(
                var.name, var.is_segment, var.windows, condition,
                E.external_references(condition, var.name))


def rule1_point_to_segment(query: Query) -> bool:
    """Rule 1: ``x*`` with a trivially-true or time-only condition becomes
    a segment variable."""
    changed = False
    for node in list(P.walk(query.pattern)):
        if not (isinstance(node, P.Kleene) and
                isinstance(node.child, P.VarRef)):
            continue
        name = node.child.name
        var = query.variables.get(name)
        if var is None or var.is_segment:
            continue
        if var.condition is not None:
            # Only the trivially-true case is automated here; the
            # time-delta form requires recognizing the specific shape
            # ``col - first(x.col) <= delta`` which we translate below.
            window = _time_delta_window(var, query)
            if window is None:
                continue
            new_var = VarDef(name, True, (window,), None, frozenset())
        else:
            if node.min_reps == 0:
                new_var = VarDef(name, True, (), None, frozenset())
            else:
                new_var = VarDef(name, True,
                                 (WindowSpec.point(1, None),), None,
                                 frozenset())
        query.variables[name] = new_var
        replacement: P.Pattern = P.VarRef(name)
        query.pattern = _replace_in_pattern(query.pattern, node, replacement)
        changed = True
    return changed


def _time_delta_window(var: VarDef, query: Query) -> Optional[WindowSpec]:
    """Recognize ``DEFINE x AS col - first(x.col) <= delta`` (Rule 1).

    ``delta`` may be a plain number (series-native units) or an
    ``INTERVAL '<n>' UNIT`` literal.
    """
    cond = var.condition
    if not (isinstance(cond, E.Binary) and cond.op == "<="):
        return None
    delta = cond.right
    interval_unit: Optional[str] = None
    if isinstance(delta, E.Interval):
        value = float(delta.value)
        interval_unit = delta.unit
    elif isinstance(delta, E.Literal) and isinstance(
            delta.value, (int, float)) and not isinstance(delta.value, bool):
        value = float(delta.value)
    else:
        return None
    left = cond.left
    if not (isinstance(left, E.Binary) and left.op == "-"):
        return None
    if not (isinstance(left.left, E.ColumnRef)
            and isinstance(left.right, E.PointAccess)
            and left.right.which == "first"
            and left.right.arg.column == left.left.column):
        return None
    column = left.left.column
    if interval_unit is not None:
        return WindowSpec("time", 0.0, value, column, interval_unit)
    if column == query.order_by:
        return WindowSpec("point", 0.0, value)
    return WindowSpec("time", 0.0, value, column, "DAY")


def rule2_subset_to_segment(query: Query) -> bool:
    """Rule 2: a SUBSET variable whose members form a contiguous Concat/
    Kleene sub-pattern becomes an ``&``-attached segment variable."""
    changed = False
    for subset_name, members in list(query.subsets.items()):
        target = _minimal_covering_subpattern(query.pattern, set(members))
        if target is None:
            continue
        new_name = _fresh_name(subset_name + subset_name[-1],
                               set(query.variables))
        query.variables[new_name] = VarDef(new_name, True, (), None,
                                           frozenset())
        replacement = P.conj(target, P.VarRef(new_name))
        rewritten = _replace_subpattern(query.pattern, target, replacement)
        if rewritten is None:
            del query.variables[new_name]
            continue
        query.pattern = rewritten
        _rename_refs_everywhere(query, subset_name, new_name)
        del query.subsets[subset_name]
        changed = True
    return changed


def _replace_subpattern(pattern: P.Pattern, target: P.Pattern,
                        replacement: P.Pattern) -> Optional[P.Pattern]:
    """Replace ``target`` in ``pattern``; unlike ``_replace_in_pattern``
    this also splices a target that is a contiguous *run* of a larger
    Concat's parts.  Returns None when the target is not found."""
    if pattern == target:
        return replacement
    direct = _replace_in_pattern(pattern, target, replacement)
    if direct != pattern:
        return direct
    if isinstance(target, P.Concat):
        run = target.parts
        spliced = _splice_concat_run(pattern, run, replacement)
        if spliced is not None:
            return spliced
    return None


def _splice_concat_run(pattern: P.Pattern, run: Tuple[P.Pattern, ...],
                       replacement: P.Pattern) -> Optional[P.Pattern]:
    if isinstance(pattern, P.Concat):
        parts = pattern.parts
        for i in range(len(parts) - len(run) + 1):
            if parts[i:i + len(run)] == run:
                new_parts = parts[:i] + (replacement,) + parts[i + len(run):]
                if len(new_parts) == 1:
                    return new_parts[0]
                return P.Concat(new_parts)
    rebuilt_children = []
    hit = False
    for child in pattern.children():
        spliced = _splice_concat_run(child, run, replacement)
        if spliced is not None and not hit:
            rebuilt_children.append(spliced)
            hit = True
        else:
            rebuilt_children.append(child)
    if not hit:
        return None
    if isinstance(pattern, P.Concat):
        return P.Concat(tuple(rebuilt_children))
    if isinstance(pattern, P.And):
        return P.And(tuple(rebuilt_children))
    if isinstance(pattern, P.Or):
        return P.Or(tuple(rebuilt_children))
    if isinstance(pattern, P.Kleene):
        return P.Kleene(rebuilt_children[0], pattern.min_reps,
                        pattern.max_reps)
    if isinstance(pattern, P.Not):
        return P.Not(rebuilt_children[0])
    return None


def _minimal_covering_subpattern(pattern: P.Pattern,
                                 members: Set[str]) -> Optional[P.Pattern]:
    """Smallest Concat/Kleene-only sub-pattern containing exactly the
    subset's point variables."""

    def vars_of(node: P.Pattern) -> Set[str]:
        return {sub.name for sub in P.walk(node)
                if isinstance(sub, P.VarRef)}

    def only_concat_kleene(node: P.Pattern) -> bool:
        return all(isinstance(sub, (P.Concat, P.Kleene, P.VarRef))
                   for sub in P.walk(node))

    best: Optional[P.Pattern] = None
    for node in P.walk(pattern):
        names = vars_of(node)
        if members <= names and names <= members and \
                only_concat_kleene(node):
            if best is None or len(list(P.walk(node))) < \
                    len(list(P.walk(best))):
                best = node
    if best is not None:
        return best
    # Try contiguous runs inside Concat nodes.
    for node in P.walk(pattern):
        if not isinstance(node, P.Concat):
            continue
        parts = node.parts
        for i in range(len(parts)):
            for j in range(i, len(parts)):
                sub = parts[i:j + 1]
                candidate = sub[0] if len(sub) == 1 else P.Concat(sub)
                names = vars_of(candidate)
                if members <= names and names <= members and \
                        only_concat_kleene(candidate):
                    return candidate
    return None


def rule3_reassign_conditions(query: Query) -> bool:
    """Rule 3: move CNF clauses onto the variable they constrain."""
    changed = False
    for name, var in list(query.variables.items()):
        if var.condition is None:
            continue
        keep: List[E.Expr] = []
        for clause in E.split_conjuncts(var.condition):
            referenced = E.referenced_variables(clause)
            if len(referenced) == 1:
                (target,) = referenced
                if target != name and target in query.variables and \
                        query.variables[target].is_segment:
                    clause = E.rename_variable(clause, target, target)
                    _append_condition(query, target, clause)
                    changed = True
                    continue
            keep.append(clause)
        if changed:
            condition = E.conjoin(keep)
            query.variables[name] = VarDef(
                name, var.is_segment, var.windows, condition,
                E.external_references(condition, name))
    return changed


def _append_condition(query: Query, name: str, clause: E.Expr) -> None:
    var = query.variables[name]
    combined = E.conjoin(E.split_conjuncts(var.condition) + [clause])
    query.variables[name] = VarDef(
        name, var.is_segment, var.windows, combined,
        E.external_references(combined, name))


def rule4_decompose(query: Query) -> bool:
    """Rule 4: split a segment variable's conjunctive condition into
    finer-grained ``&``-combined variables."""
    changed = False
    for name, var in list(query.variables.items()):
        if not var.is_segment or var.condition is None:
            continue
        clauses = E.split_conjuncts(var.condition)
        if len(clauses) < 2:
            continue
        taken = set(query.variables)
        new_parts: List[P.Pattern] = []
        for index, clause in enumerate(clauses, start=1):
            sub_name = _fresh_name(f"{name}{index}", taken)
            taken.add(sub_name)
            clause = E.rename_variable(clause, name, sub_name)
            query.variables[sub_name] = VarDef(
                sub_name, True, var.windows if index == 1 else (),
                clause, E.external_references(clause, sub_name))
            new_parts.append(P.VarRef(sub_name))
        del query.variables[name]
        replacement = P.conj(*new_parts)
        query.pattern = _replace_in_pattern(query.pattern, P.VarRef(name),
                                            replacement)
        changed = True
    return changed


def rule5_remove_irrelevant(query: Query) -> bool:
    """Rule 5: drop always-true variables nobody references."""
    referenced = query.referenced_variables()
    changed = False
    for name, var in list(query.variables.items()):
        if not var.is_wild or name in referenced:
            continue
        target = P.VarRef(name)
        pattern = query.pattern
        # (A & Z) -> A
        for node in P.walk(pattern):
            if isinstance(node, P.And) and target in node.parts and \
                    len(node.parts) > 1:
                rest = tuple(part for part in node.parts
                             if part != target)
                replacement = rest[0] if len(rest) == 1 else P.And(rest)
                query.pattern = _replace_in_pattern(pattern, node,
                                                    replacement)
                del query.variables[name]
                changed = True
                break
        if changed:
            break
        # (A Z) at the pattern root -> A.  Restricted to *point* variables:
        # removing a trailing wild point (the Example 3 artifact Z) drops a
        # vestigial one-row extension, whereas removing a trailing wild
        # segment (padding like B) would change the match set.
        if (not var.is_segment and isinstance(pattern, P.Concat)
                and pattern.parts[-1] == target):
            rest = pattern.parts[:-1]
            query.pattern = rest[0] if len(rest) == 1 else P.Concat(rest)
            del query.variables[name]
            changed = True
    return changed


def rule_window_recognition(query: Query) -> bool:
    """Convert duration conditions into window specs.

    ``last(X.t) - first(X.t) BETWEEN a AND b`` (or ``<= b``) on a segment
    variable is exactly a window constraint; expressing it as one lets the
    logical rewrite embed and push it down (the Figure 18 form uses
    ``window(...)`` for these).  Only the series' order column qualifies.
    """
    changed = False
    for name, var in list(query.variables.items()):
        if not var.is_segment or var.condition is None:
            continue
        keep: List[E.Expr] = []
        new_windows = list(var.windows)
        for clause in E.split_conjuncts(var.condition):
            window = _duration_clause_to_window(clause, name, query)
            if window is not None:
                new_windows.append(window)
                changed = True
            else:
                keep.append(clause)
        if len(new_windows) != len(var.windows):
            condition = E.conjoin(keep)
            query.variables[name] = VarDef(
                name, True, tuple(new_windows), condition,
                E.external_references(condition, name))
    return changed


def _duration_clause_to_window(clause: E.Expr, name: str,
                               query: Query) -> Optional[WindowSpec]:
    """Recognize ``last(col) - first(col) BETWEEN a AND b`` / ``<= b``."""

    def is_duration(expr: E.Expr) -> Optional[str]:
        if (isinstance(expr, E.Binary) and expr.op == "-"
                and isinstance(expr.left, E.PointAccess)
                and expr.left.which == "last"
                and isinstance(expr.right, E.PointAccess)
                and expr.right.which == "first"
                and expr.left.arg.column == expr.right.arg.column
                and expr.left.arg.variable in (None, name)
                and expr.right.arg.variable in (None, name)):
            return expr.left.arg.column
        return None

    def bound(expr: E.Expr) -> Optional[Tuple[float, Optional[str]]]:
        """(value, unit-or-None) for numeric literals and INTERVALs."""
        if isinstance(expr, E.Interval):
            return float(expr.value), expr.unit
        if isinstance(expr, E.Literal) and isinstance(
                expr.value, (int, float)) and not isinstance(
                expr.value, bool):
            return float(expr.value), None
        return None

    if isinstance(clause, E.Between):
        column = is_duration(clause.operand)
        lo = bound(clause.low)
        hi = bound(clause.high)
        if column is None or lo is None or hi is None or lo[0] < 0:
            return None
        if lo[1] or hi[1]:
            unit = lo[1] or hi[1]
            if (lo[1] or unit) != unit or (hi[1] or unit) != unit:
                return None
            return WindowSpec("time", lo[0], hi[0], column, unit)
        if column == query.order_by:
            return WindowSpec.point(lo[0], hi[0])
        return None
    if isinstance(clause, E.Binary) and clause.op in ("<=", "<"):
        column = is_duration(clause.left)
        hi = bound(clause.right)
        if column is None or hi is None or hi[0] < 0:
            return None
        if hi[1]:
            return WindowSpec("time", 0.0, hi[0], column, hi[1])
        if column == query.order_by:
            return WindowSpec.point(0, hi[0])
    return None


#: Rule application order (the Example 3 walkthrough).
RULES = (rule2_subset_to_segment, rule1_point_to_segment,
         rule3_reassign_conditions, rule_window_recognition,
         rule4_decompose, rule5_remove_irrelevant)


def rewrite_query(query: Query, max_rounds: int = 10) -> Query:
    """Apply the rewrite rules to a fixpoint (mutates and returns query)."""
    for _ in range(max_rounds):
        changed = False
        for rule in RULES:
            while rule(query):
                changed = True
        if not changed:
            break
    return query
