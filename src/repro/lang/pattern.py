"""Pattern ASTs: variables composed with operators (Section 2.2).

Nodes:

* :class:`VarRef` — a point or segment variable;
* :class:`Concat` — n-ary concatenation (Definition 2.1);
* :class:`And` — n-ary conjunction (Definition 2.4, new in T-ReX);
* :class:`Or` — n-ary alternation (Definition 2.2);
* :class:`Kleene` — quantifiers ``* ? + {n} {m,n}`` (Definition 2.3);
* :class:`Not` — negation (Definition 2.5, new in T-ReX).

``Concat``/``And``/``Or`` are kept n-ary so the optimizer can reorder and
re-bracket chains; the parser flattens nested same-operator nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import BindError

#: Sentinel for an unbounded Kleene upper bound.
UNBOUNDED: Optional[int] = None


class Pattern:
    """Base class for pattern nodes (immutable)."""

    __slots__ = ()

    def children(self) -> Tuple["Pattern", ...]:
        return ()

    def variables(self) -> List[str]:
        """Variable names in document order (with repetitions collapsed)."""
        seen: List[str] = []
        for node in walk(self):
            if isinstance(node, VarRef) and node.name not in seen:
                seen.append(node.name)
        return seen

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class VarRef(Pattern):
    """A reference to a (point or segment) variable."""

    name: str

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class Concat(Pattern):
    """Concatenation of two or more sub-patterns."""

    parts: Tuple[Pattern, ...]

    def __post_init__(self):
        if len(self.parts) < 2:
            raise BindError("Concat needs at least two sub-patterns")

    def children(self):
        return self.parts

    def describe(self) -> str:
        return "(" + " ".join(p.describe() for p in self.parts) + ")"


@dataclass(frozen=True)
class And(Pattern):
    """Conjunction: every sub-pattern must match the same segment."""

    parts: Tuple[Pattern, ...]

    def __post_init__(self):
        if len(self.parts) < 2:
            raise BindError("And needs at least two sub-patterns")

    def children(self):
        return self.parts

    def describe(self) -> str:
        return "(" + " & ".join(p.describe() for p in self.parts) + ")"


@dataclass(frozen=True)
class Or(Pattern):
    """Alternation: at least one sub-pattern matches the segment."""

    parts: Tuple[Pattern, ...]

    def __post_init__(self):
        if len(self.parts) < 2:
            raise BindError("Or needs at least two sub-patterns")

    def children(self):
        return self.parts

    def describe(self) -> str:
        return "(" + " | ".join(p.describe() for p in self.parts) + ")"


@dataclass(frozen=True)
class Kleene(Pattern):
    """Repetition of a sub-pattern between ``min_reps`` and ``max_reps``.

    ``max_reps is None`` means unbounded (``*`` / ``+``).
    """

    child: Pattern
    min_reps: int
    max_reps: Optional[int]

    def __post_init__(self):
        if self.min_reps < 0:
            raise BindError(
                f"Kleene minimum must be >= 0, got {self.min_reps}")
        if self.max_reps is not None and self.max_reps < max(self.min_reps, 1):
            raise BindError(f"Kleene maximum {self.max_reps} below minimum "
                            f"{self.min_reps}")

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        inner = self.child.describe()
        if self.min_reps == 0 and self.max_reps is None:
            suffix = "*"
        elif self.min_reps == 1 and self.max_reps is None:
            suffix = "+"
        elif self.min_reps == 0 and self.max_reps == 1:
            suffix = "?"
        elif self.max_reps == self.min_reps:
            suffix = f"{{{self.min_reps}}}"
        else:
            hi = "" if self.max_reps is None else self.max_reps
            suffix = f"{{{self.min_reps},{hi}}}"
        return f"{inner}{suffix}"


@dataclass(frozen=True)
class Not(Pattern):
    """Negation: matches segments the sub-pattern does not match."""

    child: Pattern

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        return f"~{self.child.describe()}"


def walk(pattern: Pattern) -> Iterator[Pattern]:
    """Pre-order traversal."""
    yield pattern
    for child in pattern.children():
        yield from walk(child)


def concat(*parts: Pattern) -> Pattern:
    """Build a flattened Concat (single part passes through)."""
    flat: List[Pattern] = []
    for part in parts:
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def conj(*parts: Pattern) -> Pattern:
    """Build a flattened And."""
    flat: List[Pattern] = []
    for part in parts:
        if isinstance(part, And):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*parts: Pattern) -> Pattern:
    """Build a flattened Or."""
    flat: List[Pattern] = []
    for part in parts:
        if isinstance(part, Or):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def contains_kleene(pattern: Pattern) -> bool:
    return any(isinstance(node, Kleene) for node in walk(pattern))


def contains_not(pattern: Pattern) -> bool:
    return any(isinstance(node, Not) for node in walk(pattern))
