"""Appendix A machinery: reducing patterns to special-pattern alternations.

Lemma A.1 states that any point-variable pattern built from Concatenation,
Alternation and Kleene operators reduces to an alternation
``(A_1 | A_2 | ... | A_l)`` of *special patterns* — plain concatenations of
point variables — by enumerating the paths of the pattern's NFA, safely
truncated at the series length since each point variable consumes one
distinct record.  This module implements that construction; it is the
constructive core of the paper's expressiveness-equivalence proof
(Theorem 2.3) and doubles as an executable sanity check: the alternation
of special patterns must match exactly the segments the original pattern
matches.

Only point-variable patterns qualify (Proposition 2.1 removes segment
variables first); ``And``/``Not`` reductions (Proposition 2.2) build on the
special-pattern form as sketched in the paper.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import PlanError
from repro.lang import pattern as P
from repro.lang.query import Query
from repro.timeseries.series import Series

#: A special pattern: a finite concatenation of point variables.
SpecialPattern = Tuple[str, ...]


def _check_point_only(pattern: P.Pattern, query: Query) -> None:
    for node in P.walk(pattern):
        if isinstance(node, P.VarRef) and query.var(node.name).is_segment:
            raise PlanError(
                f"special-pattern reduction applies to point-variable "
                f"patterns; {node.name!r} is a segment variable "
                f"(apply Proposition 2.1 / the rewriter first)")
        if isinstance(node, (P.And, P.Not)):
            raise PlanError(
                "special-pattern reduction (Lemma A.1) covers the standard "
                "MATCH_RECOGNIZE operators; eliminate And/Not first "
                "(Proposition 2.2)")


def enumerate_special_patterns(pattern: P.Pattern, query: Query,
                               max_length: int,
                               limit: int = 100_000) -> List[SpecialPattern]:
    """All special patterns of length ≤ ``max_length`` equivalent to
    ``pattern`` (Lemma A.1).

    ``max_length`` plays the role of the series length *n* in the lemma:
    every point variable consumes a distinct record, so longer paths can
    never match.  ``limit`` guards against combinatorial explosions.
    """
    _check_point_only(pattern, query)
    results: List[SpecialPattern] = []
    seen = set()

    def expand(node: P.Pattern,
               prefix: Tuple[str, ...]) -> List[Tuple[str, ...]]:
        """All variable sequences of ``prefix + node`` within max_length."""
        if len(results) > limit:
            raise PlanError(f"special-pattern enumeration exceeded {limit} "
                            f"paths")
        if len(prefix) > max_length:
            return []
        if isinstance(node, P.VarRef):
            extended = prefix + (node.name,)
            return [extended] if len(extended) <= max_length else []
        if isinstance(node, P.Concat):
            sequences = [prefix]
            for part in node.parts:
                next_sequences: List[Tuple[str, ...]] = []
                for sequence in sequences:
                    next_sequences.extend(expand(part, sequence))
                sequences = next_sequences
                if not sequences:
                    break
            return sequences
        if isinstance(node, P.Or):
            sequences = []
            for part in node.parts:
                sequences.extend(expand(part, prefix))
            return sequences
        if isinstance(node, P.Kleene):
            sequences = []
            if node.min_reps == 0:
                sequences.append(prefix)
            current = [prefix]
            reps = 0
            while True:
                reps += 1
                if node.max_reps is not None and reps > node.max_reps:
                    break
                next_current: List[Tuple[str, ...]] = []
                for sequence in current:
                    next_current.extend(expand(node.child, sequence))
                current = [sequence for sequence in next_current
                           if len(sequence) <= max_length]
                if not current:
                    break
                if reps >= node.min_reps:
                    sequences.extend(current)
            return sequences
        raise PlanError(f"unsupported pattern node {node!r}")

    for sequence in expand(pattern, ()):
        if sequence and sequence not in seen:
            seen.add(sequence)
            results.append(sequence)
    return sorted(results)


def special_pattern_matches(special: SpecialPattern, query: Query,
                            series: Series, start: int) -> bool:
    """Whether the special pattern matches points ``start .. start+len-1``."""
    from repro.lang import expr as E

    if start + len(special) > len(series):
        return False
    for offset, name in enumerate(special):
        var = query.var(name)
        index = start + offset
        ctx = E.EvalContext(series, index, index, variable=name,
                            registry=query.registry)
        if not E.evaluate_condition(var.condition, ctx):
            return False
    return True


def matches_via_special_patterns(pattern: P.Pattern, query: Query,
                                 series: Series) -> set:
    """Match set of ``pattern`` computed through its special-pattern form.

    Used to validate Lemma A.1 executably: this must equal the brute-force
    match set of the original pattern.
    """
    n = len(series)
    specials = enumerate_special_patterns(pattern, query, n)
    matches = set()
    for special in specials:
        for start in range(n - len(special) + 1):
            if special_pattern_matches(special, query, series, start):
                matches.add((start, start + len(special) - 1))
    return matches
