"""Exception hierarchy for the T-ReX reproduction.

Every error raised by the library derives from :class:`TRexError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish parse-time, bind-time, plan-time and run-time problems.
"""

from __future__ import annotations


class TRexError(Exception):
    """Base class for all errors raised by this library."""


class QuerySyntaxError(TRexError):
    """The query text could not be tokenized or parsed.

    Carries the 1-based line/column of the offending token when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")


class BindError(TRexError):
    """The query parsed but is semantically invalid.

    Examples: a pattern uses a variable with no definition and no implicit
    ``true`` default allowed, a condition references an unknown variable or
    column, an aggregate name is not registered.
    """


class QueryLintError(BindError):
    """Static analysis rejected the query (engine ``lint=True`` mode).

    Carries the full list of :class:`repro.analysis.Diagnostic` findings
    (errors and warnings) in :attr:`diagnostics`; the message summarizes
    the errors.
    """

    def __init__(self, message: str, diagnostics=()):
        self.diagnostics = list(diagnostics)
        super().__init__(message)


class PlanError(TRexError):
    """No valid physical plan exists for the query.

    The usual cause is an unsatisfiable reference dependency (e.g. truly
    cyclic references that even Filter-lifting cannot resolve).
    """


class PlanningBudgetExceeded(PlanError):
    """Cost-based planning exceeded its dedicated time budget.

    Raised only when the engine runs with ``planning_timeout_seconds``;
    the engine reacts by falling back to a rule-based strategy, so this
    error normally never reaches callers.
    """


class ExecutionError(TRexError):
    """A physical operator failed while evaluating a query."""


class QueryTimeout(ExecutionError):
    """Query execution exceeded the engine's deadline."""


class ResourceBudgetExceeded(ExecutionError):
    """A resource budget (``max_segments``) was exhausted mid-query.

    Under the default ``on_error='raise'`` policy this propagates; under
    ``'skip'``/``'partial'`` the engine converts it into a degraded
    :class:`~repro.core.result.QueryResult` (see docs/ROBUSTNESS.md).
    """


class WorkerCrashed(ExecutionError):
    """A parallel worker died or produced an unserializable failure.

    Raised by the process backend when a pool worker exits abnormally
    (OOM-kill, segfault, unpicklable exception).  Classified as an
    ordinary per-series ``'execution'`` fault so the ``on_error``
    policies isolate it like any other operator failure
    (docs/PARALLELISM.md).
    """


class EngineLintError(TRexError):
    """The engine contract analyzer found violations.

    Raised by ``repro lint --engine`` when TRX3xx/4xx/5xx findings
    survive the baseline (or warnings under ``--strict``).  Carries the
    offending :class:`~repro.analysis.engine_lint.EngineLintReport` in
    :attr:`report` when available.
    """

    def __init__(self, message: str, report=None):
        self.report = report
        super().__init__(message)


class DataError(TRexError):
    """Input data is malformed (unsorted timestamps, ragged columns, ...).

    When the failure is tied to a specific place in an input file, the
    optional ``source``/``row`` attributes carry the file path and the
    1-based row number so callers (and the CLI's one-line ``error:``
    output) can point at the offending data.
    """

    def __init__(self, message: str, source: str = None, row: int = None):
        self.source = source
        self.row = row
        if source is not None:
            location = f"{source}:{row}" if row is not None else source
            message = f"{location}: {message}"
        super().__init__(message)


class AggregateError(TRexError):
    """An aggregate was called with invalid arguments or is unknown."""


class ServiceError(TRexError):
    """Base class for the multi-tenant query service's failures.

    Raised only by :mod:`repro.service` — the engine itself never
    produces these.  Subclasses map onto HTTP statuses and dedicated
    CLI exit codes (docs/SERVICE.md).
    """


class AdmissionRejected(ServiceError):
    """Admission control refused the request (HTTP 429).

    Either the tenant's token bucket ran dry (``reason='rate'``) or its
    concurrent-query quota is saturated (``reason='concurrency'``).
    ``retry_after`` is the suggested client backoff in seconds.
    """

    def __init__(self, message: str, reason: str = "rate",
                 retry_after: float = 1.0):
        self.reason = reason
        self.retry_after = retry_after
        super().__init__(message)


class ServiceOverloaded(ServiceError):
    """The service shed the request before execution (HTTP 503).

    Raised when the bounded request queue is full, or when the
    queue's estimated wait already exceeds the request deadline
    (deadline-aware load shedding: reject early rather than queue a
    request past the point where its answer can still arrive in time).
    """

    def __init__(self, message: str, reason: str = "queue_full",
                 retry_after: float = 1.0):
        self.reason = reason
        self.retry_after = retry_after
        super().__init__(message)


class ServiceUnavailable(ServiceError):
    """The service is draining (graceful shutdown) and admits nothing."""


#: CLI exit code per error family (first match wins along the MRO, so
#: subclasses like :class:`QueryTimeout` take precedence over their bases).
#: Codes 3..13 avoid 1 (generic failure) and 2 (argparse usage errors);
#: 130 (= 128 + SIGINT) is the conventional interrupted-by-Ctrl-C code.
_EXIT_CODES = (
    (QuerySyntaxError, 3),
    (BindError, 4),          # includes QueryLintError
    (QueryTimeout, 8),
    (ResourceBudgetExceeded, 8),
    (PlanError, 5),          # includes PlanningBudgetExceeded
    (DataError, 6),
    (AggregateError, 9),
    (ExecutionError, 7),
    (EngineLintError, 10),
    (AdmissionRejected, 11),
    (ServiceOverloaded, 12),
    (ServiceError, 13),      # includes ServiceUnavailable
    (TRexError, 1),
)

#: Exit code for a run interrupted by the user (SIGINT / Ctrl-C); the
#: CLI catches :class:`KeyboardInterrupt`, settles what the error
#: policy allows, and exits with this (docs/ROBUSTNESS.md).
EXIT_INTERRUPTED = 130


def exit_code(error: BaseException) -> int:
    """Distinct process exit code for a :class:`TRexError` subclass."""
    for cls in type(error).__mro__:
        for family, code in _EXIT_CODES:
            if cls is family:
                return code
    return 1


def error_kind(error: BaseException) -> str:
    """Coarse failure classification used by the error-policy machinery.

    ``'timeout'`` and ``'budget'`` are *degradations* (the engine stops
    and returns what it has); everything else is a per-series *fault*
    that the ``'skip'``/``'partial'`` policies isolate to one series.
    """
    if isinstance(error, QueryTimeout):
        return "timeout"
    if isinstance(error, ResourceBudgetExceeded):
        return "budget"
    if isinstance(error, DataError):
        return "data"
    if isinstance(error, AggregateError):
        return "aggregate"
    if isinstance(error, (QuerySyntaxError, BindError)):
        return "bind"
    if isinstance(error, PlanError):
        return "plan"
    if isinstance(error, EngineLintError):
        return "engine-lint"
    if isinstance(error, AdmissionRejected):
        return "admission"
    if isinstance(error, ServiceOverloaded):
        return "overload"
    if isinstance(error, ServiceError):
        return "service"
    if isinstance(error, TRexError):
        return "execution"
    return "internal"
