"""Exception hierarchy for the T-ReX reproduction.

Every error raised by the library derives from :class:`TRexError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish parse-time, bind-time, plan-time and run-time problems.
"""

from __future__ import annotations


class TRexError(Exception):
    """Base class for all errors raised by this library."""


class QuerySyntaxError(TRexError):
    """The query text could not be tokenized or parsed.

    Carries the 1-based line/column of the offending token when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")


class BindError(TRexError):
    """The query parsed but is semantically invalid.

    Examples: a pattern uses a variable with no definition and no implicit
    ``true`` default allowed, a condition references an unknown variable or
    column, an aggregate name is not registered.
    """


class QueryLintError(BindError):
    """Static analysis rejected the query (engine ``lint=True`` mode).

    Carries the full list of :class:`repro.analysis.Diagnostic` findings
    (errors and warnings) in :attr:`diagnostics`; the message summarizes
    the errors.
    """

    def __init__(self, message: str, diagnostics=()):
        self.diagnostics = list(diagnostics)
        super().__init__(message)


class PlanError(TRexError):
    """No valid physical plan exists for the query.

    The usual cause is an unsatisfiable reference dependency (e.g. truly
    cyclic references that even Filter-lifting cannot resolve).
    """


class ExecutionError(TRexError):
    """A physical operator failed while evaluating a query."""


class QueryTimeout(ExecutionError):
    """Query execution exceeded the engine's deadline."""


class DataError(TRexError):
    """Input data is malformed (unsorted timestamps, ragged columns, ...)."""


class AggregateError(TRexError):
    """An aggregate was called with invalid arguments or is unknown."""
