"""Baseline executors used in the paper's evaluation (Section 6.3).

All baselines expose ``match_series(series) -> sorted [(start, end)]`` and
a ``name`` attribute; :func:`make_executor` builds any of them (plus the
T-ReX engine wrappers) from a label.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.baselines.afa import AFAExecutor
from repro.baselines.naive_tree import NaiveTreeExecutor
from repro.baselines.nested_afa import NestedAFAExecutor
from repro.errors import PlanError
from repro.lang.query import Query
from repro.timeseries.series import Series


class TRexExecutorAdapter:
    """Adapter exposing the T-ReX engine under the baseline interface."""

    def __init__(self, query: Query, optimizer: str = "cost",
                 sharing: str = "auto", name: str = "T-ReX",
                 timeout_seconds=None):
        from repro.core.engine import TRexEngine
        self.query = query
        self.name = name
        self._engine = TRexEngine(optimizer=optimizer, sharing=sharing,
                                  timeout_seconds=timeout_seconds)

    def match_series(self, series: Series) -> List[Tuple[int, int]]:
        result = self._engine.execute_query(self.query, [series])
        return result.per_series[0].matches


EXECUTOR_LABELS = ("trex", "trex-batch", "afa", "nested-afa", "zstream",
                   "opencep")


def make_executor(label: str, query: Query, sharing: bool = True,
                  timeout_seconds=None):
    """Build an executor by label (Section 6.3 line-up).

    ``timeout_seconds`` bounds each ``match_series`` call; exceeding it
    raises :class:`repro.errors.QueryTimeout`.
    """
    sharing_mode = "on" if sharing else "off"
    if label == "trex":
        # 'auto' lets the optimizer decide about computation sharing unless
        # it is globally disabled.
        return TRexExecutorAdapter(
            query, "cost", "auto" if sharing else "off", "T-ReX",
            timeout_seconds=timeout_seconds)
    if label == "trex-batch":
        return TRexExecutorAdapter(query, "batch", sharing_mode,
                                   "T-ReX Batch",
                                   timeout_seconds=timeout_seconds)
    if label == "afa":
        return AFAExecutor(query, sharing=sharing,
                           timeout_seconds=timeout_seconds)
    if label == "nested-afa":
        return NestedAFAExecutor(query, sharing=sharing)
    if label == "zstream":
        return NaiveTreeExecutor(query, "zstream", sharing=sharing,
                                 timeout_seconds=timeout_seconds)
    if label == "opencep":
        return NaiveTreeExecutor(query, "opencep", sharing=sharing,
                                 timeout_seconds=timeout_seconds)
    raise PlanError(f"unknown executor label {label!r}; expected one of "
                    f"{EXECUTOR_LABELS}")


__all__ = ["AFAExecutor", "NestedAFAExecutor", "NaiveTreeExecutor",
           "TRexExecutorAdapter", "make_executor", "EXECUTOR_LABELS"]
