"""Nested-AFA baseline ([43], Section 6.3).

Evaluates nested patterns "top-down": the outer pattern runs first with
inner nested sub-patterns (Not bodies) treated as match-all placeholders;
then each inner pattern is evaluated only under the search-space conditions
inferred from the outer matches, with results materialized and shared
across outer candidates.  For patterns without nested sub-patterns the
executor reverts to plain AFA — as does the original algorithm, which also
cannot evaluate nested segments inside a Kleene closure.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Set, Tuple

from repro.baselines.afa import AFAExecutor
from repro.lang.query import Query
from repro.plan.logical import (LKleene, LNot, LogicalNode,
                                build_logical_plan, walk)
from repro.timeseries.series import Series


# trex: no-tick(one-time plan rewrite, bounded by pattern size)
def _replaceable_nots(plan: LogicalNode) -> List[LNot]:
    """Not nodes outside any Kleene body (the nesting [43] can split off)."""
    inside_kleene: Set[int] = set()
    for node in walk(plan):
        if isinstance(node, LKleene):
            for sub in walk(node.child):
                inside_kleene.add(sub.node_id)
    return [node for node in walk(plan)
            if isinstance(node, LNot) and node.node_id not in inside_kleene]


class NestedAFAExecutor:
    """Top-down nested evaluation wrapped around the AFA executor."""

    name = "Nested-AFA"

    def __init__(self, query: Query, sharing: bool = True,
                 hand_tuned: bool = True):
        self.query = query
        self.sharing = sharing
        self.hand_tuned = hand_tuned
        self.plan = build_logical_plan(query)
        self._nots = _replaceable_nots(self.plan)
        self._afa = AFAExecutor(query, sharing=sharing,
                                hand_tuned=hand_tuned)

    @property
    def is_nested(self) -> bool:
        return bool(self._nots)

    def match_series(self, series: Series) -> List[Tuple[int, int]]:
        if not self._nots:
            return self._afa.match_series(series)
        # Phase 1: outer pattern with Not bodies as match-all placeholders.
        outer = copy.deepcopy(self.plan)
        placeholder_ids = {node.node_id for node in self._nots}
        outer_afa = AFAExecutor.__new__(AFAExecutor)
        outer_afa.query = self.query
        outer_afa.plan = _with_placeholder_nots(outer, placeholder_ids)
        outer_afa.sharing = self.sharing
        outer_afa.hand_tuned = self.hand_tuned
        outer_afa.timeout_seconds = self._afa.timeout_seconds
        outer_matches = outer_afa.match_series(series)
        if not outer_matches:
            return []
        # Phase 2: evaluate each inner (negated) pattern only on the
        # segments the outer matches propose, sharing results.
        inner_cache: Dict[Tuple[int, int, int], bool] = {}
        results: List[Tuple[int, int]] = []
        full_afa = self._afa
        full_afa_ctx_ready = False
        for start, end in outer_matches:
            ok = True
            for not_node in self._nots:
                key = (not_node.node_id, start, end)
                verdict = inner_cache.get(key)
                if verdict is None:
                    if not full_afa_ctx_ready:
                        # Prepare context lazily on the real plan.
                        full_afa.match_series_prepare(series)
                        full_afa_ctx_ready = True
                    child_ends = full_afa._ends(not_node.child, start, {})
                    verdict = all(e != end for e, _env in child_ends)
                    inner_cache[key] = verdict
                if not verdict:
                    ok = False
                    break
            if ok:
                results.append((start, end))
        return sorted(results)


def _with_placeholder_nots(plan: LogicalNode,
                           placeholder_ids: Set[int]) -> LogicalNode:
    """Rewrite Not nodes into always-true placeholders in a deep copy.

    A Not constrained by a window matches exactly the windowed complement;
    as a placeholder it accepts every windowed segment, which the shared
    :class:`~repro.plan.logical.LNot` would model with an always-empty
    child.  The simplest faithful placeholder keeps the node but replaces
    its child with an unsatisfiable pattern; since building one requires a
    variable definition, we instead drop the Not from And parents and
    replace standalone Nots with their windowed universe.
    """
    from repro.lang.query import VarDef
    from repro.plan.logical import LVar

    def rewrite(node: LogicalNode) -> LogicalNode:
        if isinstance(node, LNot) and node.node_id in placeholder_ids:
            wild = VarDef(name=f"__nested_placeholder_{node.node_id}",
                          is_segment=True)
            return LVar(window=node.window, var=wild)
        for attr in ("parts",):
            if hasattr(node, attr):
                setattr(node, attr,
                        tuple(rewrite(child) for child in getattr(node, attr)))
        if hasattr(node, "child") and getattr(node, "child", None) is not None:
            node.child = rewrite(node.child)
        return node

    return rewrite(plan)
