"""ZStream- and OpenCEP-style batch tree executors (Section 6.3).

Both baselines are tree-based executors without T-ReX's search-space
machinery.  They share one substrate — a fixed-order, batch (Sort-Merge
style) physical plan — configured to capture each system's defining traits
as used in the paper's analysis:

* **ZStream** [41]: syntactic left-deep join order, hash/merge joins, no
  probe operators, window-*unaware* Kleene assembly (chains are checked
  against the window only at emission — see the OpenCEP_Q2 discussion).
* **OpenCEP** [20] (default tree executor): right-deep order, nested-loop
  ``And`` joins, equally window-unaware Kleene.

Both receive leaf window embedding and push-down (as the paper granted its
baselines when fairness demanded it), and computation sharing can be
toggled, mirroring Figure 22b.

Substitution note (DESIGN.md §4): these are behavioural stand-ins for the
original libraries, not ports.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.errors import PlanError
from repro.exec.base import Env, ExecContext, PhysicalOperator, dedupe
from repro.exec.kleene import MaterializeKleene
from repro.exec.and_or import SortMergeAnd
from repro.lang.query import Query
from repro.lang.windows import WindowConjunction
from repro.optimizer.construct import (NOT_MATERIALIZE, SORT_MERGE,
                                       BuildResult, Construction,
                                       validate_scoping)
from repro.optimizer.rulebased import RuleBasedPlanner, RuleStrategy
from repro.plan.logical import LKleene, build_logical_plan
from repro.plan.search_space import SearchSpace
from repro.timeseries.segment import Segment
from repro.timeseries.series import Series


class NestedLoopAnd(SortMergeAnd):
    """Quadratic nested-loop conjunction join (OpenCEP flavour)."""

    name = "NestedLoopAnd"

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        self.check_refs(refs)
        sp = sp.clamp(len(ctx.series))
        if sp.is_empty():
            return

        def generate() -> Iterator[Segment]:
            lefts = list(self.left.eval(ctx, sp, refs))
            rights = list(self.right.eval(ctx, sp, refs))
            for left in lefts:
                for right in rights:
                    ctx.tick()
                    ctx.stats["nested_loop_pairs"] += 1
                    if left.bounds == right.bounds:
                        yield from self._join(ctx, sp, left, right)

        yield from dedupe(generate())


class _NaiveConstruction(Construction):
    """Construction variant producing window-unaware Kleene operators and,
    optionally, nested-loop And joins."""

    def __init__(self, query: Query, sharing: str, nested_loop_and: bool):
        super().__init__(query, sharing=sharing)
        self.nested_loop_and = nested_loop_and

    def combine_and(self, left: BuildResult, right: BuildResult,
                    window: WindowConjunction, impl: str) -> BuildResult:
        if impl == SORT_MERGE and self.nested_loop_and:
            publish, requires = self._merged_meta(left.op, right.op)
            op = NestedLoopAnd(left.op, right.op, window, publish, requires)
            return BuildResult(op, left.lifted + right.lifted)
        return super().combine_and(left, right, window, impl)

    def build_kleene(self, child: BuildResult,
                     node: LKleene) -> BuildResult:
        if child.lifted:
            raise PlanError("conditions cannot be lifted out of a Kleene "
                            "body")
        op = MaterializeKleene(child.op, node.min_reps, node.max_reps,
                               node.gap, node.window, frozenset(),
                               child.op.requires, window_aware=False)
        return BuildResult(op)


class NaiveTreeExecutor:
    """Batch tree executor in ZStream or OpenCEP configuration."""

    def __init__(self, query: Query, flavour: str = "zstream",
                 sharing: bool = True,
                 timeout_seconds=None):
        if flavour not in ("zstream", "opencep"):
            raise PlanError(f"flavour must be 'zstream' or 'opencep', "
                            f"got {flavour!r}")
        self.query = query
        self.flavour = flavour
        self.name = "ZStream" if flavour == "zstream" else "OpenCEP"
        self.sharing = sharing
        logical = build_logical_plan(query)
        validate_scoping(query, logical)
        direction = "left" if flavour == "zstream" else "right"
        strategy = RuleStrategy(direction, "sm", NOT_MATERIALIZE)
        planner = RuleBasedPlanner(strategy,
                                   sharing="on" if sharing else "off")
        construction = _NaiveConstruction(
            query, sharing="on" if sharing else "off",
            nested_loop_and=(flavour == "opencep"))
        result = planner._build(logical, construction, frozenset())
        result = construction.apply_filter(result, logical.window)
        if result.lifted or result.op.requires:
            raise PlanError("naive tree executor could not resolve "
                            "references")
        self.plan: PhysicalOperator = result.op
        self.timeout_seconds = timeout_seconds

    def match_series(self, series: Series) -> List[Tuple[int, int]]:
        import time
        deadline = None
        if self.timeout_seconds is not None:
            deadline = time.perf_counter() + self.timeout_seconds
        ctx = ExecContext(series, self.query.registry, deadline=deadline)
        if self.sharing:
            calls = []
            # trex: no-tick(bounded by the query's variable count)
            for var in self.query.variables.values():
                calls.extend(var.aggregate_calls())
            ctx.prebuild_indexes(calls)
        sp = SearchSpace.full(len(series))
        seen = set()
        for segment in self.plan.eval(ctx, sp, {}):
            seen.add(segment.bounds)
        return sorted(seen)
