"""AFA baseline: an augmented-NFA pattern executor ([28], Section 6.3).

The executor runs the automaton compiled from the pattern *in syntactic
order*: anchored at every start position, it advances segment by segment
left-to-right, evaluating each variable's Boolean condition the moment its
segment's boundaries are fixed (register semantics).  There is no
cross-variable reordering, no selectivity reasoning and no search-space
probing — exactly the cost profile the paper attributes to NFA-based
executors.  Two paper-faithful courtesies are applied, mirroring the
hand-tuned transition graphs of Section 6.3.1:

* window conditions are checked as early as possible (the logical plan's
  embedded/pushed windows bound the enumeration),
* within an ``And`` state, cheaper conditions are ordered ahead of more
  expensive ones (``hand_tuned=True``).

State merging: partial matches that reach the same automaton state at the
same position are merged (memoized), as NFA executors do; conditions are
still evaluated eagerly in pattern order.

Computation sharing (``sharing=True``) pre-builds aggregate indexes for
the whole series before matching, as in the paper's Figure 22b setup.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.errors import ExecutionError
from repro.exec.base import ExecContext
from repro.lang import expr as E
from repro.lang.query import Query
from repro.plan.logical import (LAnd, LConcat, LKleene, LNot, LOr, LVar,
                                LogicalNode, build_logical_plan, walk)
from repro.timeseries.series import Series

Env = Dict[str, Tuple[int, int]]


# trex: no-tick(plan-time ranking, bounded by pattern size)
def _condition_cost_rank(node: LogicalNode, query: Query) -> Tuple[int, int]:
    """Cheapness rank for the hand-tuned ordering inside And states."""
    rank = 0
    size = 0
    for sub in walk(node):
        size += 1
        if isinstance(sub, LVar) and sub.var.condition is not None:
            calls = sub.var.aggregate_calls()
            if not calls:
                rank = max(rank, 1)
            else:
                for call in calls:
                    agg = query.registry.get(call.name)
                    shape = agg.direct_cost_shape
                    rank = max(rank, 2 if shape in ("C", "L") else 3)
    return (rank, size)


class AFAExecutor:
    """Augmented-NFA executor over one bound query."""

    name = "AFA"

    def __init__(self, query: Query, sharing: bool = True,
                 hand_tuned: bool = True,
                 timeout_seconds: Optional[float] = None):
        self.query = query
        self.plan = build_logical_plan(query)
        self.sharing = sharing
        self.hand_tuned = hand_tuned
        self.timeout_seconds = timeout_seconds

    # -- public API ----------------------------------------------------------

    def match_series_prepare(self, series: Series) -> None:
        """Initialize per-series state (index prebuild, state-merge memo)."""
        import time
        deadline = None
        if self.timeout_seconds is not None:
            deadline = time.perf_counter() + self.timeout_seconds
        ctx = ExecContext(series, self.query.registry, deadline=deadline)
        if self.sharing:
            calls = []
            # trex: no-tick(bounded by the query's variable count)
            for var in self.query.variables.values():
                calls.extend(var.aggregate_calls())
            ctx.prebuild_indexes(calls)
        self._ctx = ctx
        self._ends_memo: Dict[tuple, Tuple[Tuple[int, Env], ...]] = {}

    def match_series(self, series: Series) -> List[Tuple[int, int]]:
        """All matched (start, end) segments, sorted."""
        self.match_series_prepare(series)
        matches: Set[Tuple[int, int]] = set()
        n = len(series)
        for start in range(n):
            for end, _env in self._ends(self.plan, start, {}):
                matches.add((start, end))
        return sorted(matches)

    # -- anchored enumeration ------------------------------------------------

    def _provider(self):
        return (self._ctx.indexed_provider if self.sharing
                else self._ctx.direct_provider)

    def _check(self, name: str, start: int, end: int, condition,
               refs: Env) -> bool:
        self._ctx.stats["condition_evals"] += 1
        ectx = E.EvalContext(self._ctx.series, start, end, variable=name,
                             refs=refs, provider=self._provider(),
                             registry=self.query.registry)
        return E.evaluate_condition(condition, ectx)

    def _ends(self, node: LogicalNode, start: int,
              refs: Env) -> Tuple[Tuple[int, Env], ...]:
        """All (end, bindings) of matches of ``node`` anchored at ``start``.

        Memoized per (node, start, refs) — AFA state merging.
        """
        key = (node.node_id, start,
               tuple(sorted((k, v) for k, v in refs.items()
                            if k in node.requires)))
        hit = self._ends_memo.get(key)
        if hit is not None:
            return hit
        result = tuple(self._enumerate(node, start, refs))
        self._ends_memo[key] = result
        return result

    def _enumerate(self, node: LogicalNode, start: int,
                   refs: Env) -> Iterator[Tuple[int, Env]]:
        series = self._ctx.series
        n = len(series)
        if start >= n:
            return
        if isinstance(node, LVar):
            var = node.var
            lo, hi = node.window.end_range(series, start)
            lo = max(lo, start)
            hi = min(hi, n - 1)
            if not var.is_segment:
                if lo <= start <= hi:
                    lo = hi = start
                else:
                    return
            for end in range(lo, hi + 1):
                self._ctx.tick()
                if var.condition is not None:
                    missing = set(var.external_refs) - set(refs)
                    if missing:
                        raise ExecutionError(
                            f"AFA cannot evaluate {var.name!r}: references "
                            f"{sorted(missing)} unavailable in pattern order")
                    if not self._check(var.name, start, end, var.condition,
                                       refs):
                        continue
                env = {var.name: (start, end)} if var.name in \
                    self._published else {}
                yield end, env
            return
        if isinstance(node, LConcat):
            yield from self._enumerate_concat(node, start, refs)
            return
        if isinstance(node, LAnd):
            yield from self._enumerate_and(node, start, refs)
            return
        if isinstance(node, LOr):
            seen: Set[Tuple[int, tuple]] = set()
            for part in node.parts:
                for end, env in self._ends(part, start, refs):
                    if node.window.accepts(series, start, end):
                        key = (end, tuple(sorted(env.items())))
                        if key not in seen:
                            seen.add(key)
                            yield end, env
            return
        if isinstance(node, LKleene):
            yield from self._enumerate_kleene(node, start, refs)
            return
        if isinstance(node, LNot):
            yield from self._enumerate_not(node, start, refs)
            return
        raise ExecutionError(f"AFA cannot execute node {node!r}")

    @property
    def _published(self) -> FrozenSet[str]:
        names = set()
        for var in self.query.variables.values():
            names |= set(var.external_refs)
        return frozenset(names)

    def _enumerate_concat(self, node: LConcat, start: int,
                          refs: Env) -> Iterator[Tuple[int, Env]]:
        series = self._ctx.series

        def advance(index: int, position: int,
                    env: Env) -> Iterator[Tuple[int, Env]]:
            merged = dict(refs)
            merged.update(env)
            for end, part_env in self._ends(node.parts[index], position,
                                            merged):
                new_env = dict(env)
                new_env.update(part_env)
                if index == len(node.parts) - 1:
                    if node.window.accepts(series, start, end):
                        yield end, new_env
                else:
                    yield from advance(index + 1, end + node.gaps[index],
                                       new_env)

        seen: Set[Tuple[int, tuple]] = set()
        for end, env in advance(0, start, {}):
            key = (end, tuple(sorted(env.items())))
            if key not in seen:
                seen.add(key)
                yield end, env

    def _enumerate_and(self, node: LAnd, start: int,
                       refs: Env) -> Iterator[Tuple[int, Env]]:
        series = self._ctx.series
        parts = list(node.parts)
        if self.hand_tuned:
            parts.sort(key=lambda p: _condition_cost_rank(p, self.query))
        first, rest = parts[0], parts[1:]
        for end, env in self._ends(first, start, refs):
            if not node.window.accepts(series, start, end):
                continue
            candidates = [(env, ())]
            satisfied = True
            for part in rest:
                next_candidates = []
                for cand_env, _ in candidates:
                    merged = dict(refs)
                    merged.update(cand_env)
                    for other_end, other_env in self._ends(part, start,
                                                           merged):
                        if other_end == end:
                            combined = dict(cand_env)
                            combined.update(other_env)
                            next_candidates.append((combined, ()))
                if not next_candidates:
                    satisfied = False
                    break
                candidates = next_candidates
            if satisfied:
                for cand_env, _ in candidates:
                    self._ctx.tick()
                    yield end, cand_env

    def _enumerate_kleene(self, node: LKleene, start: int,
                          refs: Env) -> Iterator[Tuple[int, Env]]:
        series = self._ctx.series
        emitted: Set[int] = set()
        visited: Set[Tuple[int, int]] = set()

        def extend(position: int, reps: int) -> Iterator[int]:
            for end, _env in self._ends(node.child, position, refs):
                if node.gap == 0 and end == position:
                    # Zero-progress repetitions cannot chain, but a lone
                    # zero-width repetition is a complete match when it is
                    # both the first and the final one (the final
                    # repetition may cover the remaining — possibly
                    # single-point — span).
                    if (reps == 0 and node.min_reps <= 1
                            and node.window.accepts(series, start, end)):
                        yield end
                    continue
                new_reps = reps + 1
                if node.max_reps is not None and new_reps > node.max_reps:
                    continue
                state = (end, new_reps)
                if state in visited:
                    continue
                visited.add(state)
                if new_reps >= node.min_reps and \
                        node.window.accepts(series, start, end):
                    yield end
                yield from extend(end + node.gap, new_reps)

        for end in extend(start, 0):
            if end not in emitted:
                emitted.add(end)
                yield end, {}

    def _enumerate_not(self, node: LNot, start: int,
                       refs: Env) -> Iterator[Tuple[int, Env]]:
        series = self._ctx.series
        lo, hi = node.window.end_range(series, start)
        lo = max(lo, start)
        hi = min(hi, len(series) - 1)
        for end in range(lo, hi + 1):
            matched = any(child_end == end for child_end, _env
                          in self._ends(node.child, start, refs))
            if not matched:
                yield end, {}
