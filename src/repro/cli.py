"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``query``   — run a pattern query over a CSV file or a built-in dataset;
* ``explain`` — show the optimizer's physical plan; with ``--analyze``
  execute the query and annotate every operator with runtime metrics
  (per-operator time, segment counts, probe hits/misses, search-space
  range sizes — see docs/OBSERVABILITY.md);
* ``lint``    — static analysis of query files or templates (trexlint);
* ``datasets`` — list the synthetic datasets and their shapes;
* ``templates`` — list the paper's query templates;
* ``profile`` — run the offline cost-parameter profiling (Tables 5 & 6);
* ``bench``   — downscaled benchmark smoke run emitting a machine-readable
  ``BENCH_*.json`` metrics artifact;
* ``fuzz``    — grammar-level differential fuzzing campaign: seeded random
  queries and series run through every executor against the brute-force
  oracle, with metamorphic relations and delta-debugged reproducers
  (docs/FUZZING.md); emits a ``FUZZ_summary_seed*.json`` artifact;
* ``serve``   — run the resilient multi-tenant query service (admission
  control, load shedding, retry/backoff, circuit breaker, graceful
  drain — docs/SERVICE.md);
* ``loadgen`` — drive a service with a concurrent mixed-template
  workload (optionally fault-injected) and emit a
  ``BENCH_service_load.json`` latency/error report.

A run interrupted with Ctrl-C settles what the active ``--on-error``
policy allows (``partial`` keeps every match found so far), prints the
usual summary, and exits with code 130 (docs/ROBUSTNESS.md).

Examples::

    python -m repro query --dataset weather --template cld_wave \\
        --param fall_diff=18 --param down_r2_min=0.9
    python -m repro query --csv prices.csv --query-file vshape.sql \\
        --param fit=0.85
    python -m repro explain --dataset sp500 --template v_shape \\
        --param down_r2_max=-0.7 --param up_r2_min=0.9 \\
        --param total_window_size=60
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from repro.core.engine import TRexEngine
from repro.datasets import DATASET_SHAPES, load
from repro.datasets.loader import load_csv
from repro.errors import EXIT_INTERRUPTED, TRexError, exit_code
from repro.lang.query import compile_query
from repro.queries import ALL_TEMPLATES, get_template


def _parse_params(items) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for item in items or []:
        if "=" not in item:
            raise SystemExit(f"--param needs name=value, got {item!r}")
        name, _, raw = item.partition("=")
        try:
            params[name] = json.loads(raw)
        except json.JSONDecodeError:
            params[name] = raw
    return params


def _resolve_query(args, params):
    if args.template:
        template = get_template(args.template)
        if not params and template.param_sets():
            # No --param given: bind the template's first grid point,
            # matching the query service's bare-template behaviour.
            params = template.param_sets()[0]
        return template.compile(params), template
    if args.query_file:
        with open(args.query_file) as handle:
            text = handle.read()
        return compile_query(text, params), None
    if args.query:
        return compile_query(args.query, params), None
    raise SystemExit("provide --template, --query or --query-file")


def _engine_options(args) -> Dict[str, object]:
    """Resilience-related engine options shared by query/explain."""
    return {
        "on_error": args.on_error,
        "max_segments": args.max_segments,
        "timeout_seconds": args.timeout,
        "executor": args.executor,
        "workers": args.workers,
        "prefilter": (None if args.prefilter is None
                      else args.prefilter == "on"),
    }


def _warn_degradations(result) -> None:
    """One-line stderr notes for errors/degradations (docs/ROBUSTNESS.md)."""
    for error in result.errors:
        print(f"warning: {error.format()}", file=sys.stderr)
    if result.interrupted:
        print(f"warning: partial result ({result.degradation})",
              file=sys.stderr)
    if result.planner_fallback:
        print(f"warning: {result.planner_fallback}", file=sys.stderr)


def _resolve_table(args, template, query=None):
    if args.csv:
        # Thread the compiled query's grouping into the loader so
        # duplicate/non-monotonic timestamps fail at load time with
        # file/row context instead of deep inside execution.
        return load_csv(args.csv, time_unit=args.time_unit,
                        nan_policy=args.nan_policy,
                        time_column=query.order_by if query else None,
                        group_by=query.partition_by if query else None)
    dataset = args.dataset or (template.dataset if template else None)
    if dataset is None:
        raise SystemExit("provide --csv or --dataset")
    kwargs = {}
    if args.series is not None:
        kwargs["num_series"] = args.series
    if args.length is not None:
        kwargs["length"] = args.length
    return load(dataset, scale=args.scale, **kwargs)


def cmd_query(args) -> int:
    params = _parse_params(args.param)
    query, template = _resolve_query(args, params)
    table = _resolve_table(args, template, query)
    engine = TRexEngine(optimizer=args.optimizer, sharing=args.sharing,
                        **_engine_options(args))
    t0 = time.perf_counter()
    result = engine.execute_query(
        query, table.partition(query.partition_by, query.order_by))
    elapsed = time.perf_counter() - t0
    _warn_degradations(result)
    print(result.summary())
    # Ctrl-C settled by the engine (on_error != 'raise'): the matches
    # printed above are the partial subset; exit with the interrupt
    # code so callers can tell a settled interrupt from a clean run.
    code = EXIT_INTERRUPTED if result.interrupted and \
        "KeyboardInterrupt" in (result.degradation or "") else 0
    if args.show_plan:
        print("\nPhysical plan:")
        print(result.plan_explain)
    shown = 0
    for key, matches in result.matches_by_key().items():
        for start, end in matches:
            if shown >= args.limit:
                print(f"... ({result.total_matches - shown} more)")
                return code
            label = "/".join(str(part) for part in key) or "-"
            print(f"{label}\t[{start}, {end}]")
            shown += 1
    del elapsed
    return code


def cmd_explain(args) -> int:
    if args.json and not args.analyze:
        raise SystemExit("--json requires --analyze")
    params = _parse_params(args.param)
    query, template = _resolve_query(args, params)
    table = _resolve_table(args, template, query)
    series_list = table.partition(query.partition_by, query.order_by)
    if args.analyze:
        engine = TRexEngine(optimizer=args.optimizer, sharing=args.sharing,
                            analyze=True, **_engine_options(args))
        result = engine.execute_query(query, series_list)
        _warn_degradations(result)
        if args.json:
            print(json.dumps(result.metrics_dict(), indent=2,
                             sort_keys=True))
            return 0
        print("Query:")
        print(query.describe())
        print("\nPhysical plan (analyzed):")
        print(result.plan_analyze)
        print(f"\n{result.summary()}")
        return 0
    engine = TRexEngine(optimizer=args.optimizer, sharing=args.sharing)
    from repro.plan.logical import build_logical_plan
    logical = build_logical_plan(query)
    print("Query:")
    print(query.describe())
    print("\nLogical plan:")
    print(logical.describe())
    plan = engine.build_plan(query, logical, series_list)
    print("\nPhysical plan:")
    print(plan.explain())
    return 0


def _lint_one(label, text, params, out):
    """Lint one query; returns (num_errors, num_warnings)."""
    from repro.analysis import lint_text
    diags = lint_text(text, params)
    out.extend((label, diag) for diag in diags)
    errors = sum(1 for d in diags if d.is_error)
    return errors, len(diags) - errors


def cmd_engine_lint(args) -> int:
    """``repro lint --engine``: run the engine contract analyzer."""
    from repro.analysis.engine_lint import (apply_baseline, lint_engine,
                                            load_baseline, render_json,
                                            render_sarif, render_text,
                                            write_baseline)
    from repro.errors import EngineLintError

    report = lint_engine()
    if args.write_baseline:
        write_baseline(report, args.write_baseline)
        print(f"wrote {args.write_baseline} "
              f"({len(report.findings)} entr"
              f"{'y' if len(report.findings) == 1 else 'ies'})")
        return 0
    if args.baseline:
        report = apply_baseline(report, load_baseline(args.baseline))
    if args.format == "json":
        print(render_json(report))
    elif args.format == "sarif":
        print(render_sarif(report))
    else:
        print(render_text(report))
    print(report.summary(), file=sys.stderr)
    if report.errors or (args.strict and report.warnings):
        raise EngineLintError(report.summary(), report=report)
    return 0


def cmd_lint(args) -> int:
    if args.engine:
        return cmd_engine_lint(args)
    if args.format == "sarif":
        raise SystemExit("--format sarif requires --engine")
    params = _parse_params(args.param)
    findings = []
    errors = warnings = checked = 0

    def tally(counts):
        nonlocal errors, warnings, checked
        errors += counts[0]
        warnings += counts[1]
        checked += 1

    for path in args.paths:
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as exc:
            raise SystemExit(f"error: cannot read {path}: {exc}")
        tally(_lint_one(path, text, params, findings))
    templates = []
    if args.template:
        templates.append(get_template(args.template))
    if args.all_templates:
        templates.extend(ALL_TEMPLATES)
    for template in templates:
        param_sets = template.param_sets() if not params else [params]
        for instance in param_sets:
            label = f"template:{template.name}"
            tally(_lint_one(label, template.text, dict(instance), findings))
    if not checked:
        raise SystemExit(
            "provide query files, --template or --all-templates")

    if args.format == "json":
        print(json.dumps([dict(file=label, **diag.to_dict())
                          for label, diag in findings], indent=2))
    else:
        for label, diag in findings:
            print(diag.format(label))
        print(f"{checked} quer{'y' if checked == 1 else 'ies'} checked: "
              f"{errors} error(s), {warnings} warning(s)")
    if errors or (args.strict and warnings):
        return 1
    return 0


def cmd_datasets(_args) -> int:
    print(f"{'dataset':10s} {'default':>16s} {'paper (full)':>16s}")
    for name, (default, full) in sorted(DATASET_SHAPES.items()):
        print(f"{name:10s} {default[0]:6d} x {default[1]:<7d} "
              f"{full[0]:6d} x {full[1]:<7d}")
    return 0


def cmd_templates(_args) -> int:
    for template in ALL_TEMPLATES:
        grid = len(template.param_sets())
        print(f"{template.name:14s} dataset={template.dataset:8s} "
              f"instances={grid:3d}  {template.description}")
    return 0


def cmd_bench(args) -> int:
    if args.vector:
        import json

        from repro.bench.runner import run_bench_vector
        path = run_bench_vector(args.out, length=max(args.length, 2000))
        print(f"wrote {path}")
        with open(path) as handle:
            legs = json.load(handle)["legs"]
        failed = False
        for name, leg in sorted(legs.items()):
            speedup = leg["speedup"]
            gated = name.startswith("fig08")
            status = ""
            if gated and args.min_speedup and speedup < args.min_speedup:
                status = f"  REGRESSION (< {args.min_speedup:.1f}x gate)"
                failed = True
            print(f"{name:14s} {speedup:6.1f}x  "
                  f"scalar={min(leg['scalar_wall_seconds']):.3f}s "
                  f"vector={min(leg['vector_wall_seconds']):.3f}s"
                  f"{status}")
        return 1 if failed else 0
    if args.prefilter:
        import json

        from repro.bench.runner import run_bench_prefilter
        path = run_bench_prefilter(
            args.out, num_series=max(args.series, 32),
            length=max(args.length, 256))
        print(f"wrote {path}")
        with open(path) as handle:
            data = json.load(handle)
        speedup = data["speedup"]
        pf = data["prefilter"]
        print(f"prefilter {speedup:6.1f}x  "
              f"off={min(data['off_wall_seconds']):.3f}s "
              f"on={min(data['on_wall_seconds']):.3f}s  "
              f"skipped={pf['series_skipped']}/{pf['series_examined']} "
              f"coverage={pf['coverage']:.3f}")
        if args.min_speedup and speedup < args.min_speedup:
            print(f"REGRESSION: prefilter speedup {speedup:.1f}x below "
                  f"{args.min_speedup:.1f}x gate")
            return 1
        return 0
    if args.parallel:
        from repro.bench.runner import run_bench_parallel
        path = run_bench_parallel(
            args.out, template_name=args.template,
            num_series=max(args.series, 8), length=args.length,
            workers=args.bench_workers,
            executor=args.bench_executor)
        print(f"wrote {path}")
        return 0
    from repro.bench.runner import run_bench_smoke
    path = run_bench_smoke(args.out, template_name=args.template,
                           num_series=args.series, length=args.length,
                           instances=args.instances,
                           timeout_seconds=args.timeout)
    print(f"wrote {path}")
    return 0


def cmd_profile(args) -> int:
    from repro.optimizer.profiler import profile_aggregates, profile_operators
    sizes = tuple(int(s) for s in args.sizes.split(","))
    print("Operator weights (w in f_op, ns):")
    for name, value in sorted(profile_operators(sizes=sizes).items()):
        print(f"  {name:20s} {value:12.1f}")
    print("\nAggregate weights (w_ind, w_lookup, w_direct, ns):")
    for name, values in sorted(profile_aggregates(sizes=sizes).items()):
        print(f"  {name:24s} {values[0]:10.1f} {values[1]:10.1f} "
              f"{values[2]:10.1f}")
    return 0


def cmd_fuzz(args) -> int:
    import os

    from repro.testing.fuzz import case_name, run_fuzz

    started = time.perf_counter()

    def on_case(produced: int) -> None:
        if args.progress and produced % 25 == 0:
            elapsed = time.perf_counter() - started
            print(f"  {produced}/{args.queries} queries "
                  f"({elapsed:.1f}s)", file=sys.stderr)

    report = run_fuzz(queries=args.queries, seed=args.seed,
                      series_per_query=args.series_per_query,
                      max_nodes=args.max_nodes,
                      minimize=not args.no_minimize,
                      on_case=on_case)
    elapsed = time.perf_counter() - started
    summary = report.to_dict()
    summary["elapsed_seconds"] = round(elapsed, 3)
    os.makedirs(args.out, exist_ok=True)
    out_path = os.path.join(args.out, f"FUZZ_summary_seed{args.seed}.json")
    with open(out_path, "w") as handle:
        json.dump(summary, handle, indent=2)
    print(f"seed {args.seed}: {report.cases_checked} cases, "
          f"{report.oracle_checks} oracle checks, "
          f"{report.metamorphic_checks} metamorphic checks, "
          f"{report.vector_checks} vector checks, "
          f"{report.prefilter_checks} prefilter checks, "
          f"{report.queries_rejected} rejected, "
          f"{len(report.discrepancies)} discrepancies ({elapsed:.1f}s)")
    print(f"wrote {out_path}")
    if report.discrepancies:
        corpus_dir = args.corpus_dir
        if corpus_dir:
            os.makedirs(corpus_dir, exist_ok=True)
        for case in report.minimized:
            print(f"  {case['kind']}: "
                  f"{' '.join(str(case['query']).split())[:100]}")
            print(f"    detail: {str(case['detail'])[:160]}")
            if corpus_dir:
                path = os.path.join(corpus_dir, case_name(case))
                with open(path, "w") as handle:
                    json.dump(case, handle, indent=2)
                print(f"    reproducer: {path}")
        return 1
    return 0


def _parse_dataset_specs(entries):
    """``name[:series[:length]]`` entries → ServiceConfig datasets."""
    specs = []
    for entry in entries or []:
        parts = entry.split(":")
        name = parts[0]
        series = int(parts[1]) if len(parts) > 1 else 4
        length = int(parts[2]) if len(parts) > 2 else 120
        specs.append((name, series, length))
    return tuple(specs)


def cmd_serve(args) -> int:
    import asyncio

    from repro.service import QueryService, ServiceConfig

    config = ServiceConfig(host=args.host, port=args.port,
                           workers=args.service_workers,
                           queue_depth=args.queue_depth,
                           optimizer=args.optimizer,
                           executor=args.executor or "serial",
                           engine_workers=args.workers,
                           default_timeout_seconds=args.timeout or 10.0,
                           default_on_error=args.on_error,
                           prefilter=(None if args.prefilter is None
                                      else args.prefilter == "on"))
    if args.serve_dataset:
        config.datasets = _parse_dataset_specs(args.serve_dataset)

    async def _run() -> None:
        service = QueryService(config)
        host, port = await service.start()
        print(f"serving on http://{host}:{port} "
              f"(datasets: {', '.join(sorted(service.tables))}; "
              f"SIGTERM/Ctrl-C drains gracefully)", flush=True)
        await service.run()

    asyncio.run(_run())
    return 0


def cmd_loadgen(args) -> int:
    import os

    from repro.service import (LoadgenConfig, check_report, run_load,
                               run_self_hosted)

    config = LoadgenConfig(
        clients=args.clients, requests_per_client=args.requests,
        templates=tuple(args.templates.split(",")),
        tenants=tuple(args.tenants.split(",")),
        timeout_seconds=args.timeout or 10.0, on_error=args.on_error,
        seed=args.seed, think_seconds=args.think)
    if args.url:
        from urllib.parse import urlparse
        parsed = urlparse(args.url if "//" in args.url
                          else f"http://{args.url}")
        config.host = parsed.hostname or "127.0.0.1"
        config.port = parsed.port or 8080
        report = run_load(config)
    else:
        report = run_self_hosted(config, faults=args.faults)
    os.makedirs(args.out, exist_ok=True)
    out_path = os.path.join(args.out, "BENCH_service_load.json")
    with open(out_path, "w") as handle:
        json.dump(report.to_dict(), handle, indent=2)
        handle.write("\n")
    latency = report.latency or {}
    print(f"{report.requests} requests, {report.ok} ok, "
          f"shed rate {report.shed_rate:.1%}, "
          f"{report.retried_requests} retried "
          f"({report.total_attempts} attempts), "
          f"{report.throughput_rps:.1f} req/s")
    if latency:
        print(f"latency p50={latency['p50_seconds'] * 1e3:.1f}ms "
              f"p95={latency['p95_seconds'] * 1e3:.1f}ms "
              f"p99={latency['p99_seconds'] * 1e3:.1f}ms")
    for family, count in sorted(report.errors_by_family.items()):
        if family != "ok":
            print(f"  {family}: {count}")
    print(f"wrote {out_path}")
    if args.check:
        problems = check_report(report,
                                expect_retries=args.expect_retries,
                                max_shed_rate=args.max_shed_rate)
        for problem in problems:
            print(f"check failed: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("all load checks passed")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_query_options(p):
        p.add_argument("--template", help="a built-in query template name")
        p.add_argument("--query", help="inline query text")
        p.add_argument("--query-file", help="file containing the query")
        p.add_argument("--param", action="append", metavar="NAME=VALUE",
                       help="query parameter (repeatable)")
        p.add_argument("--csv", help="CSV input file")
        p.add_argument("--dataset", help="built-in synthetic dataset")
        p.add_argument("--scale", default="default",
                       choices=["default", "full"])
        p.add_argument("--series", type=int, help="series count override")
        p.add_argument("--length", type=int, help="series length override")
        p.add_argument("--time-unit", default="DAY")
        p.add_argument("--optimizer", default="cost")
        p.add_argument("--sharing", default="auto",
                       choices=["auto", "on", "off"])
        p.add_argument("--on-error", default="raise",
                       choices=["raise", "skip", "partial"],
                       help="per-series failure policy (docs/ROBUSTNESS.md)")
        p.add_argument("--max-segments", type=int, default=None,
                       metavar="N",
                       help="abort/degrade once a query materializes more "
                            "than N segments")
        p.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="query deadline covering planning + execution")
        p.add_argument("--nan-policy", default="allow",
                       choices=["allow", "raise", "omit"],
                       help="non-finite value handling for --csv input")
        p.add_argument("--executor", default=None,
                       choices=["serial", "thread", "process"],
                       help="per-series execution backend (default: "
                            "$TREX_EXECUTOR or serial; docs/PARALLELISM.md)")
        p.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker-pool size for parallel executors "
                            "(default: $TREX_WORKERS or a CPU heuristic)")
        p.add_argument("--prefilter", default=None,
                       choices=["on", "off"],
                       help="force the symbolic pruning prefilter on or "
                            "off (default: $TREX_PREFILTER or off; "
                            "docs/PREFILTER.md)")

    q = sub.add_parser("query", help="run a pattern query")
    add_query_options(q)
    q.add_argument("--limit", type=int, default=20,
                   help="max matches to print")
    q.add_argument("--show-plan", action="store_true")
    q.set_defaults(fn=cmd_query)

    e = sub.add_parser("explain", help="show the plan; --analyze runs it "
                                       "and annotates runtime metrics")
    add_query_options(e)
    e.add_argument("--analyze", action="store_true",
                   help="execute the query and annotate the plan with "
                        "per-operator runtime metrics")
    e.add_argument("--json", action="store_true",
                   help="with --analyze, print the metrics as JSON")
    e.set_defaults(fn=cmd_explain)

    li = sub.add_parser("lint", help="static analysis of query files "
                                     "or (--engine) the engine source")
    li.add_argument("paths", nargs="*", metavar="FILE",
                    help="query files to lint")
    li.add_argument("--template", help="lint a built-in template")
    li.add_argument("--all-templates", action="store_true",
                    help="lint every built-in template instance")
    li.add_argument("--param", action="append", metavar="NAME=VALUE",
                    help="query parameter (repeatable)")
    li.add_argument("--engine", action="store_true",
                    help="run the TRX3xx-5xx engine contract analyzer "
                         "over src/repro (docs/ENGINE_CONTRACTS.md)")
    li.add_argument("--format", default="text",
                    choices=["text", "json", "sarif"],
                    help="output format (sarif requires --engine)")
    li.add_argument("--strict", action="store_true",
                    help="exit non-zero on warnings too")
    li.add_argument("--baseline", metavar="PATH",
                    help="with --engine: suppress findings listed in "
                         "this baseline file")
    li.add_argument("--write-baseline", metavar="PATH",
                    help="with --engine: write current findings as the "
                         "new baseline and exit 0")
    li.set_defaults(fn=cmd_lint)

    d = sub.add_parser("datasets", help="list synthetic datasets")
    d.set_defaults(fn=cmd_datasets)

    t = sub.add_parser("templates", help="list query templates")
    t.set_defaults(fn=cmd_templates)

    p = sub.add_parser("profile", help="offline cost profiling")
    p.add_argument("--sizes", default="200,400")
    p.set_defaults(fn=cmd_profile)

    b = sub.add_parser("bench", help="benchmark smoke run; writes a "
                                     "BENCH_*.json metrics artifact")
    b.add_argument("--out", default="bench-artifacts",
                   help="directory for the artifact")
    b.add_argument("--template", default="v_shape")
    b.add_argument("--series", type=int, default=3)
    b.add_argument("--length", type=int, default=60)
    b.add_argument("--instances", type=int, default=1,
                   help="parameter sets to run (prefix of the grid)")
    b.add_argument("--timeout", type=float, default=30.0,
                   help="per-strategy timeout in seconds")
    b.add_argument("--parallel", action="store_true",
                   help="run the serial-vs-parallel speedup benchmark "
                        "instead of the optimizer smoke run")
    b.add_argument("--executor", dest="bench_executor", default="process",
                   choices=["thread", "process"],
                   help="parallel backend for --parallel")
    b.add_argument("--workers", dest="bench_workers", type=int, default=4,
                   help="worker count for --parallel")
    b.add_argument("--vector", action="store_true",
                   help="run the scalar-vs-vector leaf kernel benchmark "
                        "(docs/VECTORIZATION.md) instead of the smoke run")
    b.add_argument("--prefilter", action="store_true",
                   help="run the prefilter on-vs-off speedup benchmark "
                        "(docs/PREFILTER.md) instead of the smoke run")
    b.add_argument("--min-speedup", type=float, default=5.0,
                   help="fail (exit 1) when a fig08 leg of --vector or "
                        "the --prefilter speedup falls below this; "
                        "0 disables the gate")
    b.set_defaults(fn=cmd_bench)

    f = sub.add_parser("fuzz", help="differential fuzzing campaign: random "
                                    "queries x random series through every "
                                    "executor against the brute-force "
                                    "oracle (docs/FUZZING.md)")
    f.add_argument("--queries", type=int, default=100,
                   help="number of generated queries")
    f.add_argument("--seed", type=int, default=0,
                   help="campaign seed (queries and series derive from it)")
    f.add_argument("--series-per-query", type=int, default=3,
                   help="random series checked per query")
    f.add_argument("--max-nodes", type=int, default=6,
                   help="pattern size budget for the query generator")
    f.add_argument("--no-minimize", action="store_true",
                   help="skip delta-debugging of failing cases")
    f.add_argument("--corpus-dir", default=None, metavar="DIR",
                   help="write minimized reproducers to DIR as replayable "
                        "JSON (e.g. tests/corpus)")
    f.add_argument("--out", default="bench-artifacts",
                   help="directory for the FUZZ_summary artifact")
    f.add_argument("--progress", action="store_true",
                   help="print progress to stderr every 25 queries")
    f.set_defaults(fn=cmd_fuzz)

    s = sub.add_parser("serve", help="run the resilient multi-tenant "
                                     "query service (docs/SERVICE.md)")
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=8080,
                   help="listen port (0 picks a free one)")
    s.add_argument("--dataset", dest="serve_dataset", action="append",
                   metavar="NAME[:SERIES[:LENGTH]]",
                   help="synthetic dataset to serve (repeatable; default "
                        "sp500 and weather)")
    s.add_argument("--service-workers", type=int, default=4, metavar="N",
                   help="concurrent query executions")
    s.add_argument("--queue-depth", type=int, default=64, metavar="N",
                   help="bounded request queue size (full => shed 503)")
    s.add_argument("--optimizer", default="cost")
    s.add_argument("--executor", default=None,
                   choices=["serial", "thread", "process"],
                   help="engine execution backend per query")
    s.add_argument("--workers", type=int, default=None, metavar="N",
                   help="engine worker-pool size (parallel executors)")
    s.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="default per-request deadline (default 10)")
    s.add_argument("--on-error", default="partial",
                   choices=["raise", "skip", "partial"],
                   help="default error policy for requests")
    s.add_argument("--prefilter", default=None, choices=["on", "off"],
                   help="symbolic pruning prefilter for every request "
                        "(default: $TREX_PREFILTER or off)")
    s.set_defaults(fn=cmd_serve)

    lg = sub.add_parser("loadgen", help="drive a query service with a "
                                        "concurrent (optionally fault-"
                                        "injected) workload; writes "
                                        "BENCH_service_load.json")
    lg.add_argument("--url", default=None,
                    help="target service (host:port); default self-hosts "
                         "a fresh service for the run")
    lg.add_argument("--clients", type=int, default=8,
                    help="concurrent keep-alive clients")
    lg.add_argument("--requests", type=int, default=25,
                    help="requests per client")
    lg.add_argument("--templates",
                    default="v_shape,head_shldr,outlier,cld_wave,"
                            "limit_sell",
                    help="comma-separated template mix")
    lg.add_argument("--tenants", default="alpha,beta",
                    help="comma-separated tenant names (round-robin)")
    lg.add_argument("--timeout", type=float, default=None,
                    metavar="SECONDS", help="per-request deadline")
    lg.add_argument("--on-error", default="partial",
                    choices=["raise", "skip", "partial"])
    lg.add_argument("--seed", type=int, default=0,
                    help="workload seed (template choice + retry jitter)")
    lg.add_argument("--think", type=float, default=0.0, metavar="SECONDS",
                    help="per-client pause between requests")
    lg.add_argument("--faults", default=None, metavar="SPEC",
                    help="self-hosting only: TREX_FAULTS value for the "
                         "run, e.g. 'service.worker:worker@3*2'")
    lg.add_argument("--out", default="bench-artifacts",
                    help="directory for BENCH_service_load.json")
    lg.add_argument("--check", action="store_true",
                    help="gate the run: fail on non-structured errors, "
                         "unbalanced counters or zero successes")
    lg.add_argument("--expect-retries", action="store_true",
                    help="with --check: require at least one retried "
                         "request (fault-injection runs)")
    lg.add_argument("--max-shed-rate", type=float, default=1.0,
                    help="with --check: maximum acceptable shed rate")
    lg.set_defaults(fn=cmd_loadgen)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except TRexError as error:
        message = " ".join(str(error).split())
        print(f"error: {message}", file=sys.stderr)
        return exit_code(error)
    except KeyboardInterrupt:
        # A Ctrl-C the engine could not settle (on_error='raise', or
        # delivered outside execution): exit with the documented
        # interrupt code instead of a traceback (docs/ROBUSTNESS.md).
        print("error: interrupted (SIGINT); partial results follow the "
              "--on-error policy", file=sys.stderr)
        return EXIT_INTERRUPTED


if __name__ == "__main__":
    raise SystemExit(main())
