"""Logical plans: the pattern tree annotated with embedded windows.

Building a logical plan from a bound query applies the paper's two logical
rewrite rules (Section 3, "Life of a Query"):

1. **Window embedding** — window-only variables combined through ``And`` are
   removed and their windows embedded directly into the ``And`` node and its
   remaining children; point variables get an implicit fixed window of
   duration 0.
2. **Window push-down** — embedded windows propagate to descendants; bounds
   crossing a Concatenation or Kleene boundary are relaxed to upper bounds
   only (a child segment can never out-span its parent).

Every node carries:

* ``window`` — the embedded :class:`WindowConjunction` it must satisfy;
* ``left_kind`` / ``right_kind`` — whether its leftmost/rightmost atomic
  unit is a point or a segment variable, which fixes the concatenation join
  rule per adjacent pair (shared boundary vs disjoint; DESIGN.md §3);
* ``provides`` / ``requires`` — variable names it can bind vs the external
  references its conditions need (the ``refs`` dependency graph).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.errors import BindError, PlanError
from repro.lang import pattern as P
from repro.lang.query import Query, VarDef
from repro.lang.windows import WindowConjunction, WindowSpec

_ids = itertools.count()

POINT = "point"
SEGMENT = "segment"


@dataclass
class LogicalNode:
    """Base logical plan node."""

    window: WindowConjunction = field(default_factory=WindowConjunction.wild)
    node_id: int = field(default_factory=lambda: next(_ids))

    # Boundary kinds; subclasses override where needed.
    left_kind: str = SEGMENT
    right_kind: str = SEGMENT

    def children(self) -> Tuple["LogicalNode", ...]:
        return ()

    @property
    def provides(self) -> FrozenSet[str]:
        """Variable names bound somewhere inside this sub-tree."""
        names: set = set()
        for child in self.children():
            names |= child.provides
        return frozenset(names)

    @property
    def requires(self) -> FrozenSet[str]:
        """External variables whose segments conditions in this sub-tree
        reference (must arrive via ``refs``)."""
        needed: set = set()
        for child in self.children():
            needed |= child.requires
        return frozenset(needed - self.provides)

    def describe(self) -> str:
        raise NotImplementedError


@dataclass
class LVar(LogicalNode):
    """Leaf: one point or segment variable."""

    var: VarDef = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.var is None:
            raise BindError("LVar needs a variable definition")
        kind = POINT if not self.var.is_segment else SEGMENT
        self.left_kind = kind
        self.right_kind = kind

    @property
    def provides(self) -> FrozenSet[str]:
        return frozenset({self.var.name})

    @property
    def requires(self) -> FrozenSet[str]:
        return frozenset(self.var.external_refs)

    def describe(self) -> str:
        suffix = f" [{self.window.describe()}]" \
            if not self.window.is_wild else ""
        return f"{self.var.name}{suffix}"


@dataclass
class LConcat(LogicalNode):
    """N-ary concatenation; ``gaps[i]`` is the join gap between part i and
    i+1 (0 = shared boundary, 1 = disjoint point join)."""

    parts: Tuple[LogicalNode, ...] = ()
    gaps: Tuple[int, ...] = ()

    def __post_init__(self):
        if len(self.parts) < 2:
            raise PlanError("LConcat needs at least two parts")
        if len(self.gaps) != len(self.parts) - 1:
            raise PlanError("LConcat needs one gap per adjacent pair")
        self.left_kind = self.parts[0].left_kind
        self.right_kind = self.parts[-1].right_kind

    def children(self):
        return self.parts

    def describe(self) -> str:
        bits = [self.parts[0].describe()]
        for gap, part in zip(self.gaps, self.parts[1:]):
            bits.append("." if gap == 0 else "·")
            bits.append(part.describe())
        body = " ".join(bits)
        if not self.window.is_wild:
            return f"({body})[{self.window.describe()}]"
        return f"({body})"


@dataclass
class LAnd(LogicalNode):
    """N-ary conjunction: all parts match the same segment."""

    parts: Tuple[LogicalNode, ...] = ()

    def __post_init__(self):
        if len(self.parts) < 2:
            raise PlanError("LAnd needs at least two parts")
        self.left_kind = POINT if any(
            p.left_kind == POINT for p in self.parts) else SEGMENT
        self.right_kind = POINT if any(
            p.right_kind == POINT for p in self.parts) else SEGMENT

    def children(self):
        return self.parts

    def describe(self) -> str:
        body = " & ".join(p.describe() for p in self.parts)
        if not self.window.is_wild:
            return f"({body})[{self.window.describe()}]"
        return f"({body})"


@dataclass
class LOr(LogicalNode):
    """N-ary alternation."""

    parts: Tuple[LogicalNode, ...] = ()

    def __post_init__(self):
        if len(self.parts) < 2:
            raise PlanError("LOr needs at least two parts")
        self.left_kind = POINT if all(
            p.left_kind == POINT for p in self.parts) else SEGMENT
        self.right_kind = POINT if all(
            p.right_kind == POINT for p in self.parts) else SEGMENT

    def children(self):
        return self.parts

    def describe(self) -> str:
        body = " | ".join(p.describe() for p in self.parts)
        if not self.window.is_wild:
            return f"({body})[{self.window.describe()}]"
        return f"({body})"


@dataclass
class LKleene(LogicalNode):
    """Repetition of the child between ``min_reps`` and ``max_reps`` times.

    ``gap`` is the join gap between consecutive repetitions, derived from
    the child's boundary kinds.
    """

    child: LogicalNode = None  # type: ignore[assignment]
    min_reps: int = 1
    max_reps: Optional[int] = None
    gap: int = 0

    def __post_init__(self):
        if self.child is None:
            raise PlanError("LKleene needs a child")
        self.left_kind = self.child.left_kind
        self.right_kind = self.child.right_kind

    def children(self):
        return (self.child,)

    def describe(self) -> str:
        hi = "inf" if self.max_reps is None else self.max_reps
        body = f"{self.child.describe()}{{{self.min_reps},{hi}}}"
        if not self.window.is_wild:
            return f"({body})[{self.window.describe()}]"
        return body


@dataclass
class LNot(LogicalNode):
    """Negation of the child within the node's windowed search space."""

    child: LogicalNode = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.child is None:
            raise PlanError("LNot needs a child")

    def children(self):
        return (self.child,)

    @property
    def provides(self) -> FrozenSet[str]:
        # A negation match asserts the *absence* of the child; it binds no
        # referenceable variables.
        return frozenset()

    def describe(self) -> str:
        body = f"~{self.child.describe()}"
        if not self.window.is_wild:
            return f"({body})[{self.window.describe()}]"
        return body


def _join_gap(left: LogicalNode, right: LogicalNode) -> int:
    """Join gap between two adjacent concatenation parts (DESIGN.md §3)."""
    if left.right_kind == POINT and right.left_kind == POINT:
        return 1
    return 0


#: Implicit fixed window for point variables (duration 0).
_POINT_WINDOW = WindowSpec.point_fixed(0)


def _build(node: P.Pattern, query: Query) -> LogicalNode:
    """Recursive pattern → logical tree conversion with window embedding."""
    if isinstance(node, P.VarRef):
        var = query.var(node.name)
        window = var.window_conjunction
        if not var.is_segment:
            window = window.with_spec(_POINT_WINDOW)
        return LVar(window=window, var=var)
    if isinstance(node, P.And):
        parts = [_build(child, query) for child in node.parts]
        # Window embedding: pull the windows of window-only wild leaves out
        # of the And and embed them into the node (and thus, via push-down,
        # into every sibling).
        window = WindowConjunction.wild()
        kept: List[LogicalNode] = []
        referenced = query.referenced_variables()
        for part in parts:
            # A window-only leaf is only eliminable when nothing reads its
            # segment: another variable's condition (e.g. ``first(W.val)``)
            # needs the leaf kept so the reference has a binding.
            is_window_leaf = (isinstance(part, LVar) and part.var.is_segment
                              and part.var.is_window_only
                              and not part.var.external_refs
                              and part.var.name not in referenced)
            if is_window_leaf:
                window = window.and_also(part.window)
            else:
                kept.append(part)
        if not kept:
            # Pure window pattern: keep one window leaf to generate segments.
            only = parts[0]
            only.window = only.window.and_also(window)
            return only
        if len(kept) == 1:
            kept[0].window = kept[0].window.and_also(window)
            return kept[0]
        return LAnd(window=window, parts=tuple(kept))
    if isinstance(node, P.Or):
        parts = tuple(_build(child, query) for child in node.parts)
        return LOr(parts=parts)
    if isinstance(node, P.Concat):
        parts = tuple(_build(child, query) for child in node.parts)
        gaps = tuple(_join_gap(parts[i], parts[i + 1])
                     for i in range(len(parts) - 1))
        return LConcat(parts=parts, gaps=gaps)
    if isinstance(node, P.Kleene):
        child = _build(node.child, query)
        gap = _join_gap(child, child)
        return LKleene(child=child, min_reps=node.min_reps,
                       max_reps=node.max_reps, gap=gap)
    if isinstance(node, P.Not):
        child = _build(node.child, query)
        return LNot(child=child)
    raise PlanError(f"unknown pattern node {node!r}")


def _push_windows(node: LogicalNode, inherited: WindowConjunction) -> None:
    """Window push-down (rewrite rule 2)."""
    node.window = node.window.and_also(inherited)
    if isinstance(node, (LAnd, LOr)):
        for child in node.children():
            _push_windows(child, node.window)
    elif isinstance(node, LConcat):
        relaxed = node.window.relax_lower()
        for child in node.parts:
            _push_windows(child, relaxed)
    elif isinstance(node, LKleene):
        _push_windows(node.child, node.window.relax_lower())
    elif isinstance(node, LNot):
        # The window is fused with the Not and pushed to its child
        # (Appendix C.2 / Figure 20): candidates come from the windowed
        # space, and the child is tested within that same space.
        _push_windows(node.child, node.window)
    # Leaves keep the conjunction accumulated so far.


def walk(node: LogicalNode):
    yield node
    for child in node.children():
        yield from walk(child)


def _normalize_optionals(pattern: P.Pattern, query: Query) -> P.Pattern:
    """Expand zero-minimum quantifiers over point variables.

    ``A?`` and ``A*`` admit an *empty* match, which the segment executor
    cannot represent directly.  For point-variable children the expansion
    into alternations is finite and exact:

    * inside a Concatenation, each optional part is either omitted or
      present with minimum 1 (``(A? B) -> (A{1,1} B | B)``);
    * elsewhere, an empty match can never cover a non-empty segment, so
      the minimum simply rises to 1.

    Zero-minimum quantifiers over *segment* variables remain rejected with
    a rewrite hint (the Appendix B rewriter turns ``x*`` into a wild
    segment variable instead).
    """

    def is_point_only(node: P.Pattern) -> bool:
        return all(not query.var(sub.name).is_segment
                   for sub in P.walk(node) if isinstance(sub, P.VarRef))

    def rewrite(node: P.Pattern) -> P.Pattern:
        if isinstance(node, P.VarRef):
            return node
        if isinstance(node, P.Kleene):
            child = rewrite(node.child)
            if node.min_reps == 0 and is_point_only(child):
                if node.max_reps == 1:
                    return child  # bare optional outside a Concat
                return P.Kleene(child, 1, node.max_reps)
            return P.Kleene(child, node.min_reps, node.max_reps)
        if isinstance(node, P.And):
            return P.conj(*[rewrite(part) for part in node.parts])
        if isinstance(node, P.Or):
            return P.disj(*[rewrite(part) for part in node.parts])
        if isinstance(node, P.Not):
            return P.Not(rewrite(node.child))
        if isinstance(node, P.Concat):
            parts = [rewrite_concat_part(part) for part in node.parts]
            variants: List[Tuple[P.Pattern, ...]] = [()]
            for options in parts:
                variants = [prefix + (option,)
                            for prefix in variants
                            for option in options
                            if option is not None] + \
                           [prefix for prefix in variants
                            if None in options]
            alternatives = []
            for variant in variants:
                if variant:
                    alternatives.append(P.concat(*variant))
            if not alternatives:
                raise PlanError("pattern admits only the empty match")
            return P.disj(*dict.fromkeys(alternatives))
        raise PlanError(f"unknown pattern node {node!r}")

    def rewrite_concat_part(part: P.Pattern):
        """Options for one Concat part: patterns, or None for 'omitted'."""
        if isinstance(part, P.Kleene) and part.min_reps == 0 and \
                is_point_only(part.child):
            child = rewrite(part.child)
            present = child if part.max_reps == 1 else \
                P.Kleene(child, 1, part.max_reps)
            return (present, None)
        return (rewrite(part),)

    return rewrite(pattern)


def build_logical_plan(query: Query,
                       push_windows: bool = True) -> LogicalNode:
    """Build the rewritten logical plan for a bound query.

    ``push_windows=False`` skips rewrite rule 2 (window push-down) — used
    by ablation experiments and equivalence tests; execution remains
    correct because every node still checks its own embedded window.
    """
    pattern = _normalize_optionals(query.pattern, query)
    root = _build(pattern, query)
    if push_windows:
        _push_windows(root, WindowConjunction.wild())
    _validate_references(root)
    return root


def _validate_references(root: LogicalNode) -> None:
    """Reject references to variables that appear nowhere in the pattern."""
    available = root.provides
    # Collect names bound anywhere (including inside Not sub-trees, which do
    # not "provide" them upward but do bind them for their own conditions).
    bound = {node.var.name for node in walk(root) if isinstance(node, LVar)}
    for node in walk(root):
        if isinstance(node, LVar):
            missing = set(node.var.external_refs) - bound
            if missing:
                raise PlanError(
                    f"variable {node.var.name!r} references {sorted(missing)} "
                    f"which appear nowhere in the pattern")
    del available
