"""Logical planning: search-space algebra, logical trees, window rewrites."""

from repro.plan.logical import (LAnd, LConcat, LKleene, LNot, LOr, LVar,
                                LogicalNode, build_logical_plan)
from repro.plan.search_space import SearchSpace

__all__ = ["LAnd", "LConcat", "LKleene", "LNot", "LOr", "LVar",
           "LogicalNode", "SearchSpace", "build_logical_plan"]
