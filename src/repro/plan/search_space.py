"""Search spaces: boxed ranges of admissible start/end positions.

A :class:`SearchSpace` ``(S = [s_lo, s_hi], E = [e_lo, e_hi])`` constrains
the segments an operator may emit: start in ``S``, end in ``E`` (both
inclusive), and implicitly ``start <= end``.  The root operator gets the
full space ``(S = [0, n-1], E = [0, n-1])`` (Section 4.1).

Concatenation *expands* the space handed to its children; probe operators
*shrink* the probed child's space to a single start (or an exact segment) —
that asymmetry is the paper's core pruning mechanism (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SearchSpace:
    """Inclusive ranges for segment start and end positions."""

    s_lo: int
    s_hi: int
    e_lo: int
    e_hi: int

    @staticmethod
    def empty() -> "SearchSpace":
        """The canonical empty space (``S = E = [0, -1]``).

        All empty spaces produced by :meth:`full` and :meth:`clamp` are
        normalized to this value so that downstream range arithmetic
        (``concat_left``/``concat_right`` offsets, ``span_size``) never
        manipulates arbitrary negative bounds — and in particular never
        hands a negative position to numpy, where it would silently wrap
        around to the end of the series.
        """
        return _EMPTY

    @staticmethod
    def full(n: int) -> "SearchSpace":
        """The root search space over a series of ``n`` points."""
        if n <= 0:
            return _EMPTY
        return SearchSpace(0, n - 1, 0, n - 1)

    @staticmethod
    def exact(start: int, end: int) -> "SearchSpace":
        """The space containing only the segment ``[start, end]``."""
        return SearchSpace(start, start, end, end)

    @property
    def start_range_size(self) -> int:
        """ℓ_s — number of admissible start positions."""
        return max(0, self.s_hi - self.s_lo + 1)

    @property
    def end_range_size(self) -> int:
        """ℓ_e — number of admissible end positions."""
        return max(0, self.e_hi - self.e_lo + 1)

    @property
    def span_size(self) -> int:
        """ℓ_se — size of the combined start–end span ``[s_lo, e_hi]``."""
        return max(0, self.e_hi - self.s_lo + 1)

    def is_empty(self) -> bool:
        """True when no segment can satisfy the space."""
        return (self.s_lo > self.s_hi or self.e_lo > self.e_hi
                or self.s_lo > self.e_hi)

    def contains(self, start: int, end: int) -> bool:
        return (self.s_lo <= start <= self.s_hi
                and self.e_lo <= end <= self.e_hi and start <= end)

    def clamp(self, n: int) -> "SearchSpace":
        """Clamp the ranges to a series of ``n`` points.

        Results that admit no segment come back as the canonical
        :meth:`empty` space rather than as whatever negative bounds the
        raw clamping arithmetic yields.
        """
        if n <= 0:
            return _EMPTY
        clamped = SearchSpace(max(self.s_lo, 0), min(self.s_hi, n - 1),
                              max(self.e_lo, 0), min(self.e_hi, n - 1))
        if clamped.is_empty():
            return _EMPTY
        return clamped

    def intersect(self, other: "SearchSpace") -> "SearchSpace":
        return SearchSpace(max(self.s_lo, other.s_lo),
                           min(self.s_hi, other.s_hi),
                           max(self.e_lo, other.e_lo),
                           min(self.e_hi, other.e_hi))

    # -- concatenation propagation (Section 4.3) ---------------------------

    def concat_left(self, gap: int) -> "SearchSpace":
        """Space for a Concatenation's left child.

        Same start range; end range widens to every possible join point:
        ``E = [s_lo, e_hi - gap]`` (``gap`` is 1 for disjoint point-joins,
        0 for shared-boundary segment-joins).
        """
        return SearchSpace(self.s_lo, self.s_hi, self.s_lo, self.e_hi - gap)

    def concat_right(self, gap: int) -> "SearchSpace":
        """Space for a Concatenation's right child (mirror of the left)."""
        return SearchSpace(self.s_lo + gap, self.e_hi, self.e_lo, self.e_hi)

    def probe_right_of_concat(self, left_end: int, gap: int) -> "SearchSpace":
        """Probe space for the right child given a matched left segment."""
        return SearchSpace(left_end + gap, left_end + gap,
                           self.e_lo, self.e_hi)

    def probe_left_of_concat(self, right_start: int,
                             gap: int) -> "SearchSpace":
        """Probe space for the left child given a matched right segment."""
        return SearchSpace(self.s_lo, self.s_hi,
                           right_start - gap, right_start - gap)

    def kleene_child(self) -> "SearchSpace":
        """Space handed to a Kleene's child: anywhere within the span."""
        return SearchSpace(self.s_lo, self.e_hi, self.s_lo, self.e_hi)

    def describe(self) -> str:
        return (f"(S=[{self.s_lo},{self.s_hi}], E=[{self.e_lo},{self.e_hi}])")


_EMPTY = SearchSpace(0, -1, 0, -1)
