"""Prefilter stage: necessary conditions probed against the symbolic index.

Before the full matcher touches a series, the engine can evaluate a set
of *necessary conditions* extracted from the bound query against the
per-series summaries of :mod:`repro.index` (docs/PREFILTER.md):

* **value clauses** — a CNF over :class:`Atom` constraints, where each
  atom asserts "some element of the match segment lies in this value
  interval".  A clause with no possible witness block anywhere proves
  the series cannot match (whole-series *skip*); the union of a
  clause's possible blocks, expanded by the total window bound, yields
  candidate ranges whose intersection across clauses *narrows* the root
  :class:`~repro.plan.search_space.SearchSpace`;
* **span bounds** — combined point-window and ``count(...)`` envelopes
  give ``[window_lo, window_hi]`` bounds on every match's index
  duration; a series shorter than ``window_lo + 1`` points is skipped
  outright, and ``window_hi`` is the expansion radius for candidate
  ranges.

Everything extracted here is *necessary*, never sufficient: the full
matcher still runs on every survivor, so pruning can only remove work,
never matches.  The losslessness argument (and the exact on/off parity
contract the differential fuzzer enforces) is spelled out in
docs/PREFILTER.md; the short form:

* every atom's witness element lies inside the root match segment, so a
  match ``[s, e]`` with duration at most ``window_hi`` lies entirely
  within the candidate region of each clause — hence inside a single
  merged range — and the boxed-space contract of the root operator
  (emit exactly the matches whose start *and* end fall in the box)
  recovers it from the narrowed evaluation;
* extraction refuses queries whose conditions are not *total* (could
  raise at evaluation time) and series whose referenced columns are
  missing or non-numeric, so a pruning decision can never suppress an
  error record the full scan would have produced.

The decision path is fail-open: a stale, corrupt or unusable summary
(fault point ``index.probe``) downgrades to the full scan rather than
guessing.
"""

from __future__ import annotations

import logging
import math
import os
from collections import Counter
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.index.summary import SeriesSummary, summary_for
from repro.lang import expr as E
from repro.lang.query import Query, VarDef
from repro.optimizer.cost_params import (DEFAULT_PREFILTER_BLOCK_SIZE,
                                         DEFAULT_PREFILTER_COVERAGE_GATE)
from repro.plan.logical import (LAnd, LConcat, LKleene, LNot, LOr, LVar,
                                LogicalNode)
from repro.plan.search_space import SearchSpace
from repro.testing import faults as _faults
from repro.timeseries.series import Series

_logger = logging.getLogger(__name__)


def default_enabled() -> bool:
    """Process-wide default for the prefilter toggle.

    ``TREX_PREFILTER=1`` (or ``on``/``true``/``yes``) enables the
    prefilter for engines that don't pin ``prefilter=`` explicitly.
    Unlike ``TREX_VECTOR`` the default is *off*: the prefilter changes
    which work runs (not just how leaves are evaluated), so enabling it
    is an explicit opt-in (docs/PREFILTER.md).
    """
    raw = os.environ.get("TREX_PREFILTER", "0").strip().lower()
    return raw in ("1", "on", "true", "yes")


# ---------------------------------------------------------------------------
# Necessary-condition formulas
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Atom:
    """"Some element of the match lies in ``[lo, hi]``" (open ends
    excluded).  ``lo``/``hi`` may be ±inf."""

    column: str
    lo: float
    hi: float
    lo_open: bool = False
    hi_open: bool = False

    def impossible(self) -> bool:
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and (  # trex: float-exact
            self.lo_open or self.hi_open or math.isnan(self.lo))


class _Formula:
    """Base marker for extracted formulas (internal to extraction)."""

    __slots__ = ()


class _True(_Formula):
    __slots__ = ()


class _Never(_Formula):
    __slots__ = ()


TRUE = _True()
NEVER = _Never()


@dataclass(frozen=True)
class _All(_Formula):
    parts: Tuple[_Formula, ...]


@dataclass(frozen=True)
class _Any(_Formula):
    parts: Tuple[_Formula, ...]


class _AtomF(_Formula):
    __slots__ = ("atom",)

    def __init__(self, atom: Atom):
        self.atom = atom


def _f_all(parts: Sequence[_Formula]) -> _Formula:
    kept = []
    for part in parts:
        if isinstance(part, _Never):
            return NEVER
        if not isinstance(part, _True):
            kept.append(part)
    if not kept:
        return TRUE
    if len(kept) == 1:
        return kept[0]
    return _All(tuple(kept))


def _f_any(parts: Sequence[_Formula]) -> _Formula:
    kept = []
    for part in parts:
        if isinstance(part, _True):
            return TRUE
        if not isinstance(part, _Never):
            kept.append(part)
    if not kept:
        return NEVER
    if len(kept) == 1:
        return kept[0]
    return _Any(tuple(kept))


#: A clause is a disjunction of atoms: at least one must have a witness
#: element inside the match.  The empty clause is unsatisfiable.
Clause = Tuple[Atom, ...]

#: Cap on the clause cross-product when lowering a disjunction to CNF;
#: beyond it the (weaker but sound) union-of-all-atoms clause is used.
MAX_CLAUSE_PRODUCT = 16


def _to_clauses(formula: _Formula) -> List[Clause]:
    """Lower a formula to CNF clauses.

    ``[]`` means "no constraint"; a list containing the empty clause
    means "unsatisfiable".
    """
    if isinstance(formula, _True):
        return []
    if isinstance(formula, _Never):
        return [()]
    if isinstance(formula, _AtomF):
        return [()] if formula.atom.impossible() else [(formula.atom,)]
    if isinstance(formula, _All):
        clauses: List[Clause] = []
        for part in formula.parts:
            clauses.extend(_to_clauses(part))
        return _dedupe_clauses(clauses)
    if isinstance(formula, _Any):
        lists = []
        for part in formula.parts:
            part_clauses = _to_clauses(part)
            if not part_clauses:
                return []  # one disjunct is unconstrained
            if any(not clause for clause in part_clauses):
                continue  # unsatisfiable disjunct drops out
            lists.append(part_clauses)
        if not lists:
            return [()]
        size = 1
        for entry in lists:
            size *= len(entry)
        if size <= MAX_CLAUSE_PRODUCT:
            distributed = [
                _merge_clause(pick) for pick in product(*lists)]
        else:
            # Sound fallback: if any satisfiable disjunct holds, one of
            # its clauses has a witness, and every such atom is below.
            distributed = [_merge_clause(
                [clause for entry in lists for clause in entry])]
        return _dedupe_clauses(distributed)
    raise TypeError(f"unknown formula node {formula!r}")


def _merge_clause(clauses: Sequence[Clause]) -> Clause:
    seen: Dict[Atom, None] = {}
    for clause in clauses:
        for atom in clause:
            seen.setdefault(atom)
    return tuple(seen)


def _dedupe_clauses(clauses: Sequence[Clause]) -> List[Clause]:
    seen: Dict[Clause, None] = {}
    for clause in clauses:
        seen.setdefault(tuple(sorted(
            clause, key=lambda a: (a.column, a.lo, a.hi,
                                   a.lo_open, a.hi_open))))
    return list(seen)


# ---------------------------------------------------------------------------
# Extraction from conditions
# ---------------------------------------------------------------------------

#: Aggregates whose evaluation is total over float arrays (never raise
#: for any segment); queries calling anything else are ineligible for
#: pruning decisions, because a skipped series must not suppress an
#: error record the full scan would have produced.
TOTAL_AGGREGATES = frozenset({
    "count", "min", "max", "sum", "avg", "stddev", "corr", "slope",
    "median", "max_drawdown", "linear_regression_r2",
    "linear_regression_r2_signed", "mann_kendall_test",
    "equal_up_down_ticks",
})

#: Aggregates whose value is guaranteed to be an *element* of the
#: segment whenever a comparison on it succeeds (NaN poisons both, so a
#: true comparison implies a real witness element).  ``sum``/``avg``/
#: ``stddev`` are deliberately absent: their values are synthetic.
_ELEMENT_AGGREGATES = frozenset({"min", "max"})

_COMPARISONS = frozenset({"<", "<=", ">", ">=", "=", "==", "!=", "<>"})
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
         "=": "=", "==": "==", "!=": "!=", "<>": "<>"}


def _total_expr(expr: Optional[E.Expr]) -> bool:
    """Can every evaluation of ``expr`` over a float-column series
    complete without raising?  (Columns are checked per series.)"""
    if expr is None:
        return True
    for node in E.walk(expr):
        if isinstance(node, E.Literal):
            if not isinstance(node.value, (bool, int, float)):
                return False
        elif isinstance(node, (E.ColumnRef, E.PointAccess, E.Interval,
                               E.Between)):
            continue
        elif isinstance(node, E.AggCall):
            if node.name not in TOTAL_AGGREGATES:
                return False
        elif isinstance(node, E.Unary):
            if node.op not in ("-", "not"):
                return False
        elif isinstance(node, E.Binary):
            if node.op not in _COMPARISONS and node.op not in ("+", "-", "*",
                                                               "/", "and",
                                                               "or"):
                return False
        else:
            return False  # Param, WindowCall, unknown nodes
    return True


def _literal_value(expr: E.Expr) -> Optional[float]:
    """The float value of a constant expression, or None."""
    if isinstance(expr, E.Literal) and isinstance(expr.value,
                                                  (bool, int, float)):
        return float(expr.value)
    if isinstance(expr, E.Unary) and expr.op == "-":
        inner = _literal_value(expr.operand)
        return None if inner is None else -inner
    return None


def _element_column(expr: E.Expr, var: VarDef) -> Optional[str]:
    """Column whose value ``expr`` yields *as an element of the match*.

    Covers bare column references (final semantics: the last element),
    ``first``/``last`` point accessors and single-column ``min``/``max``
    over the variable's own segment.  A successful comparison on any of
    these implies a real element of the segment in the compared
    interval (NaN fails every comparison).
    """
    if isinstance(expr, E.ColumnRef) and expr.variable in (None, var.name):
        return expr.column
    if isinstance(expr, E.PointAccess) and \
            expr.arg.variable in (None, var.name):
        return expr.arg.column
    if isinstance(expr, E.AggCall) and expr.name in _ELEMENT_AGGREGATES \
            and len(expr.columns) == 1 and not expr.extra \
            and expr.columns[0].variable in (None, var.name):
        return expr.columns[0].column
    return None


def _interval_atom(column: str, op: str, value: float) -> _Formula:
    if math.isnan(value):
        # Comparisons with NaN are always false — except !=, which is
        # always true and is skipped before reaching here.
        return NEVER
    inf = math.inf
    if op == "<":
        atom = Atom(column, -inf, value, hi_open=True)
    elif op == "<=":
        atom = Atom(column, -inf, value)
    elif op == ">":
        atom = Atom(column, value, inf, lo_open=True)
    elif op == ">=":
        atom = Atom(column, value, inf)
    elif op in ("=", "=="):
        atom = Atom(column, value, value)
    else:
        return TRUE  # != / <> carry no interval information
    return NEVER if atom.impossible() else _AtomF(atom)


def _comparison_formula(expr: E.Binary, var: VarDef) -> _Formula:
    column = _element_column(expr.left, var)
    value = _literal_value(expr.right)
    op = expr.op
    if column is None or value is None:
        column = _element_column(expr.right, var)
        value = _literal_value(expr.left)
        op = _FLIP[op]
    if column is None or value is None:
        return TRUE
    return _interval_atom(column, op, value)


def _condition_formula(expr: Optional[E.Expr], var: VarDef) -> _Formula:
    """Necessary-condition formula for one variable's DEFINE condition.

    Sound abstraction: whenever the condition holds over a segment, the
    formula holds with witnesses inside that segment.  Anything not
    understood maps to TRUE (no constraint).
    """
    if expr is None:
        return TRUE
    if E.referenced_variables(expr) - {var.name}:
        return TRUE  # cross-variable conjuncts carry no local constraint
    if isinstance(expr, E.Binary):
        if expr.op == "and":
            return _f_all([_condition_formula(expr.left, var),
                           _condition_formula(expr.right, var)])
        if expr.op == "or":
            return _f_any([_condition_formula(expr.left, var),
                           _condition_formula(expr.right, var)])
        if expr.op in _COMPARISONS:
            return _comparison_formula(expr, var)
        return TRUE
    if isinstance(expr, E.Between):
        column = _element_column(expr.operand, var)
        low = _literal_value(expr.low)
        high = _literal_value(expr.high)
        if column is None or low is None or high is None:
            return TRUE
        if math.isnan(low) or math.isnan(high) or low > high:
            return NEVER
        return _AtomF(Atom(column, low, high))
    if isinstance(expr, E.Literal):
        return TRUE if E.truthy(expr.value) else NEVER
    return TRUE


# ---------------------------------------------------------------------------
# count(...) → duration bounds
# ---------------------------------------------------------------------------

def _count_call(expr: E.Expr, var: VarDef) -> bool:
    return (isinstance(expr, E.AggCall) and expr.name == "count"
            and len(expr.columns) == 1 and not expr.extra
            and expr.columns[0].variable in (None, var.name))


def _count_bounds_from_op(op: str, c: float) \
        -> Tuple[int, Optional[int], bool]:
    """Duration bounds implied by ``count(x) OP c`` (count = duration+1).

    Returns ``(lo, hi, never)`` with ``hi=None`` for unbounded.
    """
    if math.isnan(c):
        return 0, None, True
    if op == ">=":          # len >= c  ⇔  len >= ceil(c)
        return max(0, math.ceil(c) - 1), None, False
    if op == ">":           # len > c   ⇔  len >= floor(c) + 1
        return max(0, math.floor(c)), None, False
    if op == "<=":          # len <= c  ⇔  len <= floor(c)
        hi = math.floor(c) - 1
        return (0, hi, hi < 0)
    if op == "<":           # len < c   ⇔  len <= ceil(c) - 1
        hi = math.ceil(c) - 2
        return (0, hi, hi < 0)
    if op in ("=", "=="):
        if c < 1 or c != math.floor(c):  # trex: float-exact
            return 0, None, True
        return int(c) - 1, int(c) - 1, False
    return 0, None, False   # != carries nothing usable


def _count_duration_bounds(var: VarDef) -> Tuple[int, Optional[int], bool]:
    """Fold every top-level ``count(...)`` conjunct into duration bounds."""
    lo, hi, never = 0, None, False
    for conjunct in E.split_conjuncts(var.condition):
        clo: Optional[int] = None
        if isinstance(conjunct, E.Binary) and conjunct.op in _COMPARISONS:
            op, value = conjunct.op, _literal_value(conjunct.right)
            if not _count_call(conjunct.left, var) or value is None:
                value = _literal_value(conjunct.left)
                if not _count_call(conjunct.right, var) or value is None:
                    continue
                op = _FLIP[op]
            clo, chi, cnever = _count_bounds_from_op(op, value)
        elif isinstance(conjunct, E.Between) and \
                _count_call(conjunct.operand, var):
            low = _literal_value(conjunct.low)
            high = _literal_value(conjunct.high)
            if low is None or high is None:
                continue
            clo, _, never_lo = _count_bounds_from_op(">=", low)
            _, chi, never_hi = _count_bounds_from_op("<=", high)
            cnever = never_lo or never_hi
        else:
            continue
        lo = max(lo, clo)
        if chi is not None:
            hi = chi if hi is None else min(hi, chi)
        never = never or cnever
    if hi is not None and lo > hi:
        never = True
    return lo, hi, never


# ---------------------------------------------------------------------------
# Logical-tree folding: formula + span bounds per node
# ---------------------------------------------------------------------------

@dataclass
class _NodeInfo:
    formula: _Formula
    lo: int                 # min index duration (end - start)
    hi: Optional[int]       # max index duration, None = unbounded


def _clip_window(info: _NodeInfo, node: LogicalNode) -> _NodeInfo:
    wlo, whi = node.window.point_duration_bounds()
    lo = max(info.lo, wlo)
    hi = info.hi
    if whi is not None:
        hi = whi if hi is None else min(hi, whi)
    formula = info.formula
    if hi is not None and lo > hi:
        formula = NEVER
    return _NodeInfo(formula, lo, hi)


def _fold(node: LogicalNode) -> _NodeInfo:
    if isinstance(node, LVar):
        if not node.var.is_segment:
            info = _NodeInfo(_condition_formula(node.var.condition,
                                                node.var), 0, 0)
        else:
            clo, chi, never = _count_duration_bounds(node.var)
            formula = NEVER if never else _condition_formula(
                node.var.condition, node.var)
            info = _NodeInfo(formula, clo, chi)
        return _clip_window(info, node)
    if isinstance(node, LConcat):
        parts = [_fold(part) for part in node.parts]
        gap_total = sum(node.gaps)
        lo = sum(part.lo for part in parts) + gap_total
        hi: Optional[int] = gap_total
        for part in parts:
            if part.hi is None:
                hi = None
                break
            hi += part.hi
        formula = _f_all([part.formula for part in parts])
        return _clip_window(_NodeInfo(formula, lo, hi), node)
    if isinstance(node, LAnd):
        parts = [_fold(part) for part in node.parts]
        lo = max(part.lo for part in parts)
        his = [part.hi for part in parts if part.hi is not None]
        hi = min(his) if his else None
        formula = _f_all([part.formula for part in parts])
        return _clip_window(_NodeInfo(formula, lo, hi), node)
    if isinstance(node, LOr):
        parts = [_fold(part) for part in node.parts]
        live = [part for part in parts
                if not isinstance(part.formula, _Never)]
        if not live:
            return _clip_window(_NodeInfo(NEVER, 0, 0), node)
        lo = min(part.lo for part in live)
        hi = None
        if all(part.hi is not None for part in live):
            hi = max(part.hi for part in live)  # type: ignore[type-var]
        formula = _f_any([part.formula for part in live])
        return _clip_window(_NodeInfo(formula, lo, hi), node)
    if isinstance(node, LKleene):
        child = _fold(node.child)
        reps_lo = max(node.min_reps, 1)
        lo = reps_lo * child.lo + (reps_lo - 1) * node.gap
        hi = None
        if node.max_reps is not None and child.hi is not None:
            hi = node.max_reps * child.hi + (node.max_reps - 1) * node.gap
        formula = child.formula if node.min_reps >= 1 else TRUE
        if isinstance(formula, _Never) and node.min_reps < 1:
            formula = TRUE
        return _clip_window(_NodeInfo(formula, lo, hi), node)
    if isinstance(node, LNot):
        # Negation asserts absence: nothing inside the child constrains
        # the match.  Only the node's own window bounds the span.
        return _clip_window(_NodeInfo(TRUE, 0, None), node)
    raise TypeError(f"unknown logical node {node!r}")


# ---------------------------------------------------------------------------
# The prefilter plan
# ---------------------------------------------------------------------------

@dataclass
class PrefilterPlan:
    """Extraction result: everything ``decide`` needs, picklable so the
    process backend ships it inside each :class:`SeriesTask`."""

    #: CNF over element-interval atoms; every clause needs a witness.
    clauses: Tuple[Clause, ...] = ()
    #: Bounds on a match's index duration (end - start).
    window_lo: int = 0
    window_hi: Optional[int] = None
    #: The query provably never matches (contradictory bounds/atoms).
    never: bool = False
    #: Extraction succeeded AND every condition is total: pruning
    #: decisions are allowed.  False = inert (never skips, never
    #: narrows, adds no per-series work).
    eligible: bool = False
    #: Every column any condition or window may touch; a series missing
    #: one (or typing it non-numerically) gets the full scan.
    required_columns: Tuple[str, ...] = ()
    block_size: int = DEFAULT_PREFILTER_BLOCK_SIZE
    coverage_gate: float = DEFAULT_PREFILTER_COVERAGE_GATE
    #: Human-readable reason when inert/ineligible (observability).
    note: str = ""

    @property
    def active(self) -> bool:
        """Can this plan ever make a decision?"""
        return self.eligible and (self.never or bool(self.clauses)
                                  or self.window_lo > 0)

    def describe(self) -> str:
        if not self.eligible:
            return f"inert ({self.note or 'ineligible'})"
        if self.never:
            return "never-matches"
        hi = "inf" if self.window_hi is None else str(self.window_hi)
        return (f"{len(self.clauses)} clause(s), "
                f"span=[{self.window_lo},{hi}]")


def extract_prefilter(query: Query, logical: LogicalNode) -> PrefilterPlan:
    """Extract the prefilter plan for a bound query (fail-open).

    Any extraction surprise yields an *inert* plan — the engine then
    behaves exactly as with the prefilter disabled for this query.
    """
    try:
        return _extract(query, logical)
    except Exception as exc:  # noqa: BLE001 — prefilter must fail open
        _logger.warning("prefilter extraction failed; running without "
                        "pruning: %s: %s", type(exc).__name__, exc)
        return PrefilterPlan(note=f"extraction failed: "
                                  f"{type(exc).__name__}")


def _extract(query: Query, logical: LogicalNode) -> PrefilterPlan:
    for var in query.variables.values():
        if not _total_expr(var.condition):
            return PrefilterPlan(
                note=f"condition of {var.name!r} is not total")
    columns = set()
    for var in query.variables.values():
        columns |= E.columns_used(var.condition)
        for spec in var.windows:
            if spec.kind == "time" and spec.column is not None:
                columns.add(spec.column)
    info = _fold(logical)
    clauses = _to_clauses(info.formula)
    never = isinstance(info.formula, _Never) or \
        any(not clause for clause in clauses)
    return PrefilterPlan(
        clauses=tuple(clause for clause in clauses if clause),
        window_lo=info.lo,
        window_hi=info.hi,
        never=never,
        eligible=True,
        required_columns=tuple(sorted(columns)))


# ---------------------------------------------------------------------------
# Per-series decision
# ---------------------------------------------------------------------------

def _ranges_from_blocks(mask: np.ndarray, block_size: int, n: int,
                        radius: int) -> List[Tuple[int, int]]:
    """Expand live blocks by ``radius`` points and merge into disjoint,
    sorted inclusive point ranges."""
    live = np.flatnonzero(mask)
    if not len(live):
        return []
    starts = np.maximum(live * block_size - radius, 0)
    ends = np.minimum(live * block_size + block_size - 1 + radius, n - 1)
    breaks = np.flatnonzero(starts[1:] > ends[:-1] + 1)
    first = np.concatenate(([0], breaks + 1))
    last = np.concatenate((breaks, [len(live) - 1]))
    return list(zip(starts[first].tolist(), ends[last].tolist()))


def _intersect_ranges(a: List[Tuple[int, int]],
                      b: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Intersection of two sorted disjoint inclusive range lists."""
    out: List[Tuple[int, int]] = []
    i = j = 0
    # trex: no-tick(bounded by block count; caller ticks per clause)
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo <= hi:
            out.append((lo, hi))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


def _summary_usable(summary: object, series: Series,
                    plan: PrefilterPlan) -> bool:
    """Cheap integrity probe before trusting a summary (fail-open)."""
    return (isinstance(summary, SeriesSummary)
            and summary.n == len(series)
            and summary.block_size == plan.block_size)


def decide(plan: PrefilterPlan, series: Series, ctx,
           counters: Counter) -> Tuple[str, List[Tuple[int, int]]]:
    """The per-series pruning decision: ``('skip'|'full'|'narrow', ranges)``.

    ``ctx`` is the series' :class:`~repro.exec.base.ExecContext` —
    probing ticks against the query deadline like any other hot loop.
    Every inconclusive path (unusable summary, unsupported column,
    unbounded window, coverage above the gate) lands on ``'full'``.
    """
    n = len(series)
    summary = summary_for(series, plan.block_size, counters)
    if _faults.ENABLED:
        summary = _faults.fire("index.probe", summary)
    if not _summary_usable(summary, series, plan):
        counters["index_invalid"] += 1
        return "full", []
    if plan.never:
        return "skip", []
    if n < plan.window_lo + 1:
        return "skip", []
    for column in plan.required_columns:
        col = summary.column(column)
        if col is None or not col.supported:
            counters["series_unsupported"] += 1
            return "full", []
    if not plan.clauses:
        return "full", []
    num_blocks = summary.num_blocks
    counters["blocks_total"] += num_blocks
    radius = plan.window_hi
    ranges: Optional[List[Tuple[int, int]]] = None
    combined: Optional[np.ndarray] = None
    for clause in plan.clauses:
        ctx.tick_batch(num_blocks)
        mask = np.zeros(num_blocks, dtype=bool)
        for atom in clause:
            col = summary.column(atom.column)
            if col is None:
                return "full", []  # unreachable; fail open regardless
            if not col.interval_possible(atom.lo, atom.hi, atom.lo_open,
                                         atom.hi_open):
                continue
            mask |= col.blocks_possible(atom.lo, atom.hi, atom.lo_open,
                                        atom.hi_open)
        if not mask.any():
            return "skip", []
        combined = mask if combined is None else (combined & mask)
        if radius is not None:
            clause_ranges = _ranges_from_blocks(mask, plan.block_size, n,
                                                radius)
            ranges = clause_ranges if ranges is None \
                else _intersect_ranges(ranges, clause_ranges)
            if not ranges:
                return "skip", []
    if combined is not None:
        counters["blocks_live"] += int(np.count_nonzero(combined))
    if radius is None or ranges is None:
        return "full", []
    ranges = [(lo, hi) for lo, hi in ranges if hi - lo >= plan.window_lo]
    if not ranges:
        return "skip", []
    covered = sum(hi - lo + 1 for lo, hi in ranges)
    if covered >= plan.coverage_gate * n:
        counters["coverage_declined"] += 1
        return "full", []
    return "narrow", ranges


#: Counter keys surfaced in ``QueryResult.prefilter`` and ``/stats``
#: (fixed order so reports have stable, comparable shapes).
COUNTER_KEYS = (
    "series_examined", "series_skipped", "series_narrowed", "series_full",
    "series_unsupported", "coverage_declined", "index_built",
    "index_cached", "index_stale", "index_invalid", "blocks_total",
    "blocks_live", "ranges_materialized", "candidate_points",
    "series_points",
)


def prefilter_report(plan: Optional[PrefilterPlan],
                     totals: Counter) -> Dict[str, object]:
    """The ``QueryResult.prefilter`` dict for one enabled-run's totals."""
    report: Dict[str, object] = {
        "enabled": True,
        "active": bool(plan is not None and plan.active),
        "plan": plan.describe() if plan is not None else "none",
    }
    for key in COUNTER_KEYS:
        report[key] = int(totals.get(key, 0))
    points = int(totals.get("series_points", 0))
    covered = int(totals.get("candidate_points", 0))
    report["coverage"] = (covered / points) if points else 0.0
    return report


# ---------------------------------------------------------------------------
# Shared evaluation wrapper (serial engine, replay, parallel workers)
# ---------------------------------------------------------------------------

def evaluate_with_prefilter(plan, prefilter_plan: Optional[PrefilterPlan],
                            ctx, series: Series, sink) -> Optional[Counter]:
    """Evaluate the physical ``plan`` over one series through the
    prefilter decision; returns the prefilter counters, or ``None``
    when the prefilter made no appearance (inert/off — the evaluation
    is then bit-for-bit the classic full scan).

    Candidate ranges are disjoint and every true match lies entirely
    inside one of them (docs/PREFILTER.md), so feeding each range's
    boxed space to the root operator and pouring everything into one
    sink reproduces the full scan's match set exactly — the sink
    deduplicates by bounds and its bounded-heap truncation is
    insertion-order independent.
    """
    n = len(series)
    if prefilter_plan is None or not prefilter_plan.active:
        sink.consume(plan.eval(ctx, SearchSpace.full(n), {}), ctx)
        return None
    counters: Counter = Counter()
    counters["series_examined"] += 1
    kind, ranges = decide(prefilter_plan, series, ctx, counters)
    counters["series_points"] += n
    if kind == "skip":
        counters["series_skipped"] += 1
        return counters
    if kind != "narrow" or not ranges:
        counters["series_full"] += 1
        counters["candidate_points"] += n
        sink.consume(plan.eval(ctx, SearchSpace.full(n), {}), ctx)
        return counters
    counters["series_narrowed"] += 1
    counters["ranges_materialized"] += len(ranges)
    counters["candidate_points"] += sum(hi - lo + 1 for lo, hi in ranges)
    if ctx.segment_budget is not None:
        # Materialized candidate ranges are retained segment state:
        # charge them like any other materialization (docs/PREFILTER.md
        # documents this as an intentional on/off accounting difference
        # under max_segments).
        ctx.charge(len(ranges))
    for lo, hi in ranges:
        sink.consume(plan.eval(ctx, SearchSpace(lo, hi, lo, hi), {}), ctx)
    return counters
