"""T-ReX: a pattern-search engine for historical time series.

Reproduction of "T-ReX: Optimizing Pattern Search on Time Series"
(SIGMOD 2023).  Public API highlights:

* :class:`repro.core.engine.TRexEngine` /
  :func:`repro.core.engine.find_matches`
  — run extended-MATCH_RECOGNIZE pattern queries over tables;
* :class:`repro.timeseries.Table` / :class:`repro.timeseries.Series`
  — in-memory time-series data model;
* :func:`repro.lang.compile_query` — parse + bind a query text;
* :mod:`repro.aggregates` — built-in and user-defined aggregates with
  computation sharing;
* :mod:`repro.baselines` — AFA, Nested-AFA, ZStream- and OpenCEP-style
  executors used in the paper's evaluation;
* :mod:`repro.datasets` — synthetic stand-ins for the paper's 5 datasets;
* :mod:`repro.queries` — the 11 query templates of Table 3.
"""

from repro.core.engine import TRexEngine, find_matches
from repro.core.result import QueryResult
from repro.lang.query import compile_query
from repro.timeseries.series import Series
from repro.timeseries.table import Table

__version__ = "0.1.0"

__all__ = ["TRexEngine", "find_matches", "QueryResult", "compile_query",
           "Series", "Table", "__version__"]
