"""Experiment harness: the building blocks behind every table and figure.

Each ``run_*`` function reproduces one experiment family and returns plain
data structures; ``benchmarks/`` wraps them in pytest-benchmark targets and
``tools/run_experiments.py`` sweeps them at larger scales and renders the
tables recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import make_executor
from repro.core.engine import TRexEngine
from repro.errors import QueryTimeout, TRexError
from repro.lang.query import Query
from repro.optimizer.rulebased import (BASELINE_STRATEGIES,
                                       BASELINE_STRATEGIES_WITH_NOT)
from repro.plan.logical import build_logical_plan
from repro.queries.templates import QueryTemplate
from repro.timeseries.series import Series
from repro.timeseries.table import Table


def timed(fn: Callable[[], object]) -> Tuple[float, object]:
    """(seconds, result) of one call."""
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


def series_for(template: QueryTemplate, table: Table) -> List[Series]:
    query = template.compile(template.param_sets()[0])
    return table.partition(query.partition_by, query.order_by)


def run_query_all_series(query: Query, series_list: Sequence[Series],
                         executor_label: str,
                         sharing: bool = True) -> Tuple[float, int]:
    """(total seconds, total matches) for one executor over all series."""
    executor = make_executor(executor_label, query, sharing=sharing)
    t0 = time.perf_counter()
    total = 0
    for series in series_list:
        total += len(executor.match_series(series))
    return time.perf_counter() - t0, total


# ---------------------------------------------------------------------------
# Table 4 — optimizer vs rule-based plan baselines
# ---------------------------------------------------------------------------

@dataclass
class OptimizerComparison:
    """Times per plan family for one query instance."""

    params: Dict[str, object]
    times: Dict[str, float]
    matches: Dict[str, int]

    def slowdowns(self) -> Dict[str, float]:
        finite = [t for t in self.times.values()
                  if t != float("inf")]
        fastest = max(min(finite), 1e-9) if finite else 1e-9
        return {label: t / fastest for label, t in self.times.items()}


def run_optimizer_comparison(template: QueryTemplate, table: Table,
                             param_sets: Optional[Sequence[dict]] = None,
                             include_not_variants: Optional[bool] = None,
                             timeout_seconds: Optional[float] = None) \
        -> List[OptimizerComparison]:
    """Run the optimizer and every rule baseline per parameter set.

    A strategy whose instance exceeds ``timeout_seconds`` is marked timed
    out (``math.inf``, mirroring the paper's 't.o.' cells) and skipped for
    the remaining instances.
    """
    import math

    if param_sets is None:
        param_sets = template.param_sets()
    if include_not_variants is None:
        include_not_variants = template.has_not
    strategies = BASELINE_STRATEGIES_WITH_NOT if include_not_variants \
        else BASELINE_STRATEGIES
    results: List[OptimizerComparison] = []
    timed_out: set = set()
    for params in param_sets:
        query = template.compile(params)
        series_list = table.partition(query.partition_by, query.order_by)
        times: Dict[str, float] = {}
        matches: Dict[str, int] = {}
        for strategy in strategies:
            if strategy.label in timed_out:
                times[strategy.label] = math.inf
                continue
            engine = TRexEngine(optimizer=strategy, sharing="on",
                                timeout_seconds=timeout_seconds)
            try:
                seconds, result = timed(
                    lambda e=engine: e.execute_query(query, series_list))
            except QueryTimeout:
                times[strategy.label] = math.inf
                timed_out.add(strategy.label)
                continue
            times[strategy.label] = seconds
            matches[strategy.label] = result.total_matches
            if timeout_seconds is not None and seconds > timeout_seconds:
                timed_out.add(strategy.label)
        engine = TRexEngine(optimizer="cost", sharing="auto")
        seconds, result = timed(
            lambda e=engine: e.execute_query(query, series_list))
        times["optimizer"] = seconds
        matches["optimizer"] = result.total_matches
        results.append(OptimizerComparison(dict(params), times, matches))
    return results


def median_slowdowns(comparisons: Sequence[OptimizerComparison]) \
        -> Dict[str, float]:
    """Table 4 cells: median slow-down over the fastest per instance."""
    labels = comparisons[0].times.keys()
    return {label: statistics.median(
        comparison.slowdowns()[label] for comparison in comparisons)
        for label in labels}


# ---------------------------------------------------------------------------
# Table 7 / Figures 11 & 23 — cost-model ranking quality
# ---------------------------------------------------------------------------

def run_ndcg(template: QueryTemplate, table: Table,
             param_sets: Optional[Sequence[dict]] = None,
             num_series: int = 5,
             timeout_seconds: Optional[float] = None) \
        -> Tuple[float, float, list]:
    """(NDCG score, median stats-collection seconds, per-plan points).

    The candidate plan list is the rule-based families of Section 6.2.3
    (the same physical plans Table 4 executes); each is costed by the
    optimizer's cost model via :class:`PlanCostEstimator` and then actually
    executed for its true time.
    """
    import numpy as np

    from repro.bench.ndcg import ndcg_from_times
    from repro.optimizer.plan_coster import PlanCostEstimator
    from repro.optimizer.rulebased import RuleBasedPlanner
    from repro.optimizer.stats import collect_stats

    if param_sets is None:
        param_sets = template.param_sets()
    strategies = BASELINE_STRATEGIES_WITH_NOT if template.has_not \
        else BASELINE_STRATEGIES
    costs: List[float] = []
    times: List[float] = []
    collection: List[float] = []
    points = []
    for params in param_sets:
        query = template.compile(params)
        series_list = table.partition(query.partition_by, query.order_by)
        logical = build_logical_plan(query)
        stats_seconds, stats = timed(
            lambda: collect_stats(query, series_list,
                                  num_series=num_series))
        collection.append(stats_seconds)
        rng = np.random.default_rng(7)
        sample = series_list[int(rng.integers(0, len(series_list)))]
        estimator = PlanCostEstimator(stats, sample)
        for strategy in strategies:
            try:
                plan = RuleBasedPlanner(strategy, sharing="on").plan(
                    query, logical)
                estimated = estimator.estimate(plan)
            except TRexError:
                continue
            engine = TRexEngine(optimizer=strategy, sharing="on",
                                timeout_seconds=timeout_seconds)
            try:
                seconds, _ = timed(
                    lambda e=engine: e.execute_query(query, series_list))
            except QueryTimeout:
                # Rank a timed-out plan at the budget boundary.
                seconds = timeout_seconds
            costs.append(estimated)
            times.append(seconds)
            points.append((strategy.label, estimated, seconds))
    score = ndcg_from_times(costs, times)
    median_collection = statistics.median(collection) if collection else 0.0
    return score, median_collection, points


# ---------------------------------------------------------------------------
# Figure 12 / 22a — executor comparison
# ---------------------------------------------------------------------------

def run_executor_comparison(template: QueryTemplate, table: Table,
                            labels: Sequence[str],
                            param_sets: Optional[Sequence[dict]] = None,
                            sharing: bool = True,
                            time_budget: Optional[float] = None) \
        -> Dict[str, List[Tuple[dict, float, int]]]:
    """Per executor: list of (params, seconds, matches).

    ``time_budget`` bounds each executor *per instance* (hard deadline);
    an executor that times out is dropped from the remaining instances,
    mirroring the paper's time-outs.
    """
    if param_sets is None:
        param_sets = template.param_sets()
    results: Dict[str, List[Tuple[dict, float, int]]] = {
        label: [] for label in labels}
    dropped: set = set()
    for params in param_sets:
        query = template.compile(params)
        series_list = table.partition(query.partition_by, query.order_by)
        for label in labels:
            if label in dropped:
                continue
            executor = make_executor(label, query, sharing=sharing,
                                     timeout_seconds=time_budget)
            t0 = time.perf_counter()
            total = 0
            try:
                for series in series_list:
                    total += len(executor.match_series(series))
            except QueryTimeout:
                dropped.add(label)
                continue
            seconds = time.perf_counter() - t0
            results[label].append((dict(params), seconds, total))
            if time_budget is not None and seconds > time_budget:
                dropped.add(label)
    return results


def median_speedups(results: Dict[str, List[Tuple[dict, float, int]]],
                    reference: str = "trex") -> Dict[str, float]:
    """Figure 22a: median speedup of the reference over each executor."""
    reference_times = {tuple(sorted(p.items())): t
                       for p, t, _ in results[reference]}
    speedups: Dict[str, float] = {}
    for label, rows in results.items():
        if label == reference:
            continue
        ratios = []
        for params, seconds, _ in rows:
            key = tuple(sorted(params.items()))
            if key in reference_times and reference_times[key] > 0:
                ratios.append(seconds / reference_times[key])
        if ratios:
            speedups[label] = statistics.median(ratios)
    return speedups


# ---------------------------------------------------------------------------
# Figure 22b — computation-sharing ablation
# ---------------------------------------------------------------------------

def run_sharing_ablation(template: QueryTemplate, table: Table,
                         labels: Sequence[str],
                         param_sets: Optional[Sequence[dict]] = None) \
        -> Dict[str, float]:
    """Median speedup of sharing-on over sharing-off per executor."""
    if param_sets is None:
        param_sets = template.param_sets()
    speedups: Dict[str, float] = {}
    for label in labels:
        ratios = []
        for params in param_sets:
            query = template.compile(params)
            series_list = table.partition(query.partition_by,
                                          query.order_by)
            on_seconds, on_matches = run_query_all_series(
                query, series_list, label, sharing=True)
            off_seconds, off_matches = run_query_all_series(
                query, series_list, label, sharing=False)
            assert on_matches == off_matches, (
                f"{label}: sharing changed results "
                f"({on_matches} vs {off_matches})")
            ratios.append(off_seconds / max(on_seconds, 1e-9))
        speedups[label] = statistics.median(ratios)
    return speedups


# ---------------------------------------------------------------------------
# Machine-readable metrics artifacts (BENCH_*.json)
# ---------------------------------------------------------------------------

def _json_safe(value):
    """Deep-copy ``value`` with non-finite floats replaced by ``None``.

    Timeout cells are ``math.inf`` internally; JSON has no representation
    for them, so artifacts store ``null``.
    """
    import math

    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


def write_bench_artifact(out_dir: str, name: str, payload: dict) -> str:
    """Write one ``BENCH_<name>.json`` metrics artifact; returns its path.

    The payload is sanitized for JSON (``inf``/``nan`` become ``null``)
    and written with sorted keys so artifacts diff cleanly across runs.
    """
    import json
    import os

    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(_json_safe(payload), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_bench_smoke(out_dir: str, template_name: str = "v_shape",
                    num_series: int = 3, length: int = 60,
                    instances: int = 1,
                    timeout_seconds: Optional[float] = 30.0) -> str:
    """Downscaled benchmark smoke run; returns the artifact path.

    Runs the Table-4 optimizer comparison on a tiny instance of one
    template plus one EXPLAIN ANALYZE pass, and writes everything as a
    ``BENCH_smoke_<template>.json`` artifact — the CI smoke job uploads
    this so per-operator metrics are inspectable per commit.
    """
    from repro.datasets import load
    from repro.queries import get_template

    template = get_template(template_name)
    table = load(template.dataset, num_series=num_series, length=length)
    param_sets = template.param_sets()[:instances]
    comparisons = run_optimizer_comparison(
        template, table, param_sets=param_sets,
        timeout_seconds=timeout_seconds)

    query = template.compile(param_sets[0])
    series_list = table.partition(query.partition_by, query.order_by)
    engine = TRexEngine(optimizer="cost", sharing="auto", analyze=True)
    analyzed = engine.execute_query(query, series_list)

    payload = {
        "benchmark": "smoke",
        "template": template.name,
        "dataset": template.dataset,
        "num_series": num_series,
        "length": length,
        "comparisons": [
            {
                "params": comparison.params,
                "times": comparison.times,
                "matches": comparison.matches,
                "slowdowns": comparison.slowdowns(),
            }
            for comparison in comparisons
        ],
        "analyze": analyzed.metrics_dict(),
        "plan_analyze": analyzed.plan_analyze,
    }
    return write_bench_artifact(out_dir, f"smoke_{template.name}", payload)


def run_bench_parallel(out_dir: str, template_name: str = "v_shape",
                       num_series: int = 8, length: int = 200,
                       workers: int = 4, executor: str = "process",
                       repeats: int = 3) -> str:
    """Serial-vs-parallel speedup benchmark; returns the artifact path.

    Runs one template instance over ``num_series`` partitions with the
    serial engine and with the requested parallel backend, asserts the
    results are identical, and records per-run wall times plus the
    speedup in ``BENCH_parallel_<template>.json``.  The recorded
    ``cpu_count`` qualifies the speedup: a single-core runner cannot
    show one regardless of backend (docs/PARALLELISM.md).

    ``template_name="many_series"`` swaps in the seeded selective-
    workload generator shared with :func:`run_bench_prefilter`
    (``repro.bench.dataset``), so parallel speedups can also be
    measured on a realistic fleet of mostly-calm series.
    """
    import os

    if template_name == "many_series":
        from repro.bench.dataset import many_series_table, selective_query
        table = many_series_table(num_series=num_series, length=length)
        query = selective_query()
        bench_name, dataset_name = "many_series", "many_series"
    else:
        from repro.datasets import load
        from repro.queries import get_template

        template = get_template(template_name)
        table = load(template.dataset, num_series=num_series, length=length)
        query = template.compile(template.param_sets()[0])
        bench_name, dataset_name = template.name, template.dataset
    series_list = table.partition(query.partition_by, query.order_by)

    def run(engine: TRexEngine) -> Tuple[List[float], object]:
        walls = []
        result = None
        for _ in range(repeats):
            result = engine.execute_query(query, series_list)
            walls.append(result.execution_wall_seconds)
        return walls, result

    serial_walls, serial_result = run(TRexEngine(executor="serial"))
    parallel_walls, parallel_result = run(
        TRexEngine(executor=executor, workers=workers))
    assert serial_result.matches_by_key() == \
        parallel_result.matches_by_key(), \
        f"{executor} executor changed the match set"

    serial_best = min(serial_walls)
    parallel_best = min(parallel_walls)
    payload = {
        "benchmark": "parallel",
        "template": bench_name,
        "dataset": dataset_name,
        "num_series": num_series,
        "length": length,
        "executor": executor,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "total_matches": serial_result.total_matches,
        "serial_wall_seconds": serial_walls,
        "parallel_wall_seconds": parallel_walls,
        "parallel_worker_seconds_sum": parallel_result.execution_seconds,
        "speedup": serial_best / max(parallel_best, 1e-9),
    }
    return write_bench_artifact(out_dir, f"parallel_{bench_name}",
                                payload)


def run_bench_prefilter(out_dir: str, num_series: int = 160,
                        length: int = 512, seed: int = 7,
                        anomaly_fraction: float = 0.05,
                        repeats: int = 3) -> str:
    """Prefilter on-vs-off speedup benchmark; returns the artifact path.

    Runs the selective spike query (``repro.bench.dataset``) over a
    seeded fleet of ``num_series`` mostly-calm series with the symbolic
    prefilter disabled and enabled, asserts both runs produce the
    identical match set (the no-false-dismissal contract,
    docs/PREFILTER.md), and records best-of-``repeats`` wall times, the
    speedup, and the enabled run's pruning counters in
    ``BENCH_prefilter.json``.  CI gates the speedup (≥5x) via ``repro
    bench --prefilter --min-speedup 5``.
    """
    from repro.bench.dataset import many_series_table, selective_query

    table = many_series_table(num_series=num_series, length=length,
                              seed=seed,
                              anomaly_fraction=anomaly_fraction)
    query = selective_query()
    series_list = table.partition(query.partition_by, query.order_by)

    def run(prefilter: bool) -> Tuple[List[float], object]:
        engine = TRexEngine(optimizer="cost", sharing="auto",
                            executor="serial", prefilter=prefilter)
        walls = []
        result = None
        for _ in range(repeats):
            result = engine.execute_query(query, series_list)
            walls.append(result.execution_wall_seconds)
        return walls, result

    off_walls, off_result = run(False)
    on_walls, on_result = run(True)
    assert off_result.matches_by_key() == on_result.matches_by_key(), \
        "prefilter changed the match set (false dismissal or phantom)"

    report = dict(on_result.prefilter or {})
    payload = {
        "benchmark": "prefilter",
        "dataset": "many_series",
        "num_series": num_series,
        "length": length,
        "seed": seed,
        "anomaly_fraction": anomaly_fraction,
        "repeats": repeats,
        "total_matches": on_result.total_matches,
        "off_wall_seconds": off_walls,
        "on_wall_seconds": on_walls,
        "speedup": min(off_walls) / max(min(on_walls), 1e-9),
        "prefilter": report,
    }
    return write_bench_artifact(out_dir, "prefilter", payload)


def run_bench_vector(out_dir: str, length: int = 20000,
                     window_hi: int = 60, repeats: int = 3) -> str:
    """Scalar-vs-vector leaf kernel benchmark; returns the artifact path.

    Three legs, each run with the vector kernels forced off and on:

    * ``fig08_direct`` — a SegGenFilter leaf whose condition batches on
      the direct path (``max``/``min`` folds);
    * ``fig08_indexed`` — a SegGenIndexing leaf whose ``avg`` condition
      batches through prefix-sum index lookups;
    * ``fig09_concat`` — an engine-level two-leaf concat (probe-heavy,
      small per-probe search spaces), recorded so probe workloads are
      shown not to regress — no speedup is expected here.

    Every leg asserts the two paths produce identical matches and stats
    before timing anything; the artifact records per-run wall times and
    the best-of-``repeats`` speedup per leg.  CI gates on the fig08
    legs (docs/VECTORIZATION.md).
    """
    import numpy as np

    from repro.exec.base import ExecContext
    from repro.exec.seggen import SegGenFilter, SegGenIndexing
    from repro.lang.parser import parse_condition
    from repro.lang.query import VarDef
    from repro.lang.windows import WindowSpec
    from repro.plan.search_space import SearchSpace

    t = np.arange(length, dtype=np.float64)
    values = np.sin(t * 0.05) * 2.0 + np.cos(t * 0.011)
    series = Series({"tstamp": t, "val": values},
                    order_column="tstamp", key=("bench",))

    def leaf(cls, cond_text):
        condition = parse_condition(cond_text)
        var = VarDef("DN", True, (WindowSpec.point(2, window_hi),),
                     condition, frozenset())
        return cls(var, var.window_conjunction)

    def run_leaf(op, vectorize):
        ctx = ExecContext(series, vectorize=vectorize)
        segments = [(s.start, s.end)
                    for s in op.eval(ctx, SearchSpace.full(length), {})]
        return segments, ctx.stats

    def timed_leg(scalar_fn, vector_fn):
        s_out, s_stats = scalar_fn()
        v_out, v_stats = vector_fn()
        assert s_out == v_out, "vector path changed the result"
        assert s_stats == v_stats, "vector path changed the stats"
        scalar_walls = [timed(scalar_fn)[0] for _ in range(repeats)]
        vector_walls = [timed(vector_fn)[0] for _ in range(repeats)]
        return {
            "outputs": len(s_out),
            "scalar_wall_seconds": scalar_walls,
            "vector_wall_seconds": vector_walls,
            "speedup": min(scalar_walls) / max(min(vector_walls), 1e-9),
        }

    legs: Dict[str, dict] = {}
    direct_op = leaf(SegGenFilter, "max(DN.val) - min(DN.val) >= 1.0")
    legs["fig08_direct"] = timed_leg(
        lambda: run_leaf(direct_op, False),
        lambda: run_leaf(direct_op, True))

    indexed_op = leaf(SegGenIndexing, "avg(DN.val) > 0.25")
    legs["fig08_indexed"] = timed_leg(
        lambda: run_leaf(indexed_op, False),
        lambda: run_leaf(indexed_op, True))

    concat_table = Table({"tstamp": t, "val": values})
    concat_text = ("ORDER BY tstamp\nPATTERN (A B)\n"
                   "DEFINE SEGMENT A AS avg(A.val) > 0.25 "
                   "AND window(2, 20),\n"
                   "  SEGMENT B AS min(B.val) < 0.0 AND window(1, 10)")

    def run_concat(vectorize):
        result = TRexEngine(optimizer="cost", sharing="auto",
                            max_matches=20000,
                            vectorize=vectorize).execute(
                                concat_table, concat_text)
        return (tuple(result.per_series[0].matches),
                result.per_series[0].stats)

    legs["fig09_concat"] = timed_leg(lambda: run_concat(False),
                                     lambda: run_concat(True))

    payload = {
        "benchmark": "vector",
        "length": length,
        "window_hi": window_hi,
        "repeats": repeats,
        "legs": legs,
    }
    return write_bench_artifact(out_dir, "vector_kernels", payload)


# ---------------------------------------------------------------------------
# Formatting helpers
# ---------------------------------------------------------------------------

def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) \
        -> str:
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    def fmt(row):
        return "  ".join(str(cell).ljust(widths[i])
                         for i, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
