"""Seeded multi-series benchmark dataset (docs/PREFILTER.md).

The prefilter's value shows on workloads with *many* series of which
only a few contain the searched pattern: the symbolic index skips the
calm majority without touching their points.  The paper's synthetic
datasets (``repro.datasets``) model per-dataset shape realism; this
module instead models *selectivity* — a large fleet of calm series with
a seeded anomalous minority — and is shared by ``repro bench
--prefilter`` and ``repro bench --parallel --template many_series`` so
both speedups are measured on realistic series counts.

Everything is deterministic per ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.lang.query import Query, compile_query
from repro.timeseries.table import Table

#: Calm series stay strictly below this level; anomalous series carry a
#: plateau above it.  The selective query's threshold sits in between,
#: so whole-series skips are decidable from the global max alone.
SPIKE_LEVEL = 100.0

#: The selective query: a short run of consecutive points all above the
#: spike threshold.  ``min(SPIKE.val)`` gives the prefilter a provable
#: per-element lower bound, and the window cap bounds the match span.
SELECTIVE_QUERY_TEXT = """
PARTITION BY series
ORDER BY tstamp
PATTERN (SPIKE & W)
DEFINE
  SEGMENT SPIKE AS min(SPIKE.val) >= :spike_level,
  SEGMENT W AS window(3, 12)
"""


def selective_query(spike_level: float = SPIKE_LEVEL * 0.95) -> Query:
    """Compile the selective spike query (threshold below SPIKE_LEVEL so
    every injected plateau is findable)."""
    return compile_query(SELECTIVE_QUERY_TEXT,
                         {"spike_level": spike_level})


def many_series_table(num_series: int = 64, length: int = 512,
                      seed: int = 7,
                      anomaly_fraction: float = 0.05) -> Table:
    """A fleet of calm AR(1) series with a seeded anomalous minority.

    Calm series meander inside roughly ``[10, 90]`` (clipped below
    ``SPIKE_LEVEL``); ``round(num_series * anomaly_fraction)`` series
    (at least one) additionally carry one plateau of 4–8 consecutive
    points above ``SPIKE_LEVEL``, which :func:`selective_query` matches.
    Columns: ``tstamp`` (0..length-1), ``series`` (partition key),
    ``val``.
    """
    if num_series < 1 or length < 16:
        raise ValueError("many_series_table needs num_series >= 1 and "
                         "length >= 16")
    rng = np.random.default_rng(seed)
    num_anomalous = max(1, int(round(num_series * anomaly_fraction)))
    anomalous = set(
        rng.choice(num_series, size=min(num_anomalous, num_series),
                   replace=False).tolist())

    tstamps = np.empty(num_series * length, dtype=np.float64)
    keys = np.empty(num_series * length, dtype=object)
    vals = np.empty(num_series * length, dtype=np.float64)
    base_t = np.arange(length, dtype=np.float64)

    for index in range(num_series):
        level = float(rng.uniform(20.0, 60.0))
        sigma = float(rng.uniform(0.5, 2.0))
        noise = np.zeros(length)
        shocks = rng.normal(0.0, sigma, size=length)
        for t in range(1, length):
            noise[t] = 0.8 * noise[t - 1] + shocks[t]
        values = np.clip(level + noise, 5.0, SPIKE_LEVEL - 10.0)
        if index in anomalous:
            width = int(rng.integers(4, 9))
            anchor = int(rng.integers(4, length - width - 4))
            plateau = SPIKE_LEVEL + rng.uniform(2.0, 25.0, size=width)
            values[anchor:anchor + width] = plateau
        lo = index * length
        tstamps[lo:lo + length] = base_t
        keys[lo:lo + length] = f"M{index:04d}"
        vals[lo:lo + length] = values

    return Table({"tstamp": tstamps, "series": keys, "val": vals},
                 time_unit="DAY")
