"""NDCG scoring of plan rankings (Section 6.2.3, Table 7).

The optimizer ranks candidate plans by estimated cost; the ground truth
ranks them by measured execution time.  NDCG@all with graded relevance
derived from execution times measures agreement between the two orders —
1.0 means the cost model orders plans exactly like reality.
"""

from __future__ import annotations

import math
from typing import Sequence


def _relevance(times: Sequence[float]) -> list:
    """Graded relevance: fastest plan gets the highest grade.

    Uses inverse time normalized to [0, 1], which rewards getting the fast
    plans near the top much more than ordering the slow tail.
    """
    safe = [max(t, 1e-9) for t in times]
    inv = [1.0 / t for t in safe]
    top = max(inv)
    return [value / top for value in inv]


def dcg(relevances: Sequence[float]) -> float:
    """Discounted cumulative gain of a relevance list in rank order."""
    return sum(rel / math.log2(rank + 2)
               for rank, rel in enumerate(relevances))


def ndcg_from_times(estimated_costs: Sequence[float],
                    execution_times: Sequence[float]) -> float:
    """NDCG of the cost-ordered plan list against the time-ordered ideal.

    ``estimated_costs[i]`` and ``execution_times[i]`` describe the same
    plan.  Returns a score in [0, 1].
    """
    if len(estimated_costs) != len(execution_times):
        raise ValueError("cost and time lists must have equal length")
    if not estimated_costs:
        return 1.0
    relevance = _relevance(execution_times)
    by_cost = [relevance[i] for i in
               sorted(range(len(relevance)),
                      key=lambda i: estimated_costs[i])]
    ideal = sorted(relevance, reverse=True)
    ideal_dcg = dcg(ideal)
    if ideal_dcg <= 0:
        return 1.0
    return dcg(by_cost) / ideal_dcg
