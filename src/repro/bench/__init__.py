"""Experiment harness for regenerating every table and figure."""

from repro.bench.ndcg import dcg, ndcg_from_times
from repro.bench.runner import (OptimizerComparison, format_table,
                                median_slowdowns, median_speedups,
                                run_executor_comparison, run_ndcg,
                                run_optimizer_comparison,
                                run_sharing_ablation, series_for, timed)

__all__ = ["dcg", "ndcg_from_times", "OptimizerComparison", "format_table",
           "median_slowdowns", "median_speedups", "run_executor_comparison",
           "run_ndcg", "run_optimizer_comparison", "run_sharing_ablation",
           "series_for", "timed"]
