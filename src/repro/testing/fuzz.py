"""Grammar-level differential fuzzer with case minimization.

Four pieces, used by ``repro fuzz`` and the tier-1 corpus-replay test:

* :class:`QueryGen` — seeded random queries over the full surface grammar
  (segment/point variables, ``&``/``~``/``|``/Kleene, window conjunctions
  including zero-width windows, cross-variable references including cyclic
  sibling references, every registered aggregate) under a node budget;
* :class:`SeriesGen` — seeded short series biased toward the shapes that
  break matchers: ties, plateaus, NaNs, spikes and n in {0, 1, 2};
* the oracle matrix (:func:`oracle_check`) — each (query, series) pair runs
  through the brute-force matcher and every execution backend, diffing the
  match sets — plus metamorphic relations (:func:`metamorphic_check`) as a
  second oracle class that needs no reference implementation;
* a delta-debugging minimizer (:func:`minimize_case`) that shrinks a
  failing (query, series) pair to a minimal reproducer, serializable to
  ``tests/corpus/`` JSON via :func:`case_to_json` / :func:`replay_case`.

Queries are rendered to *text* and recompiled for every check, so the
lexer/parser/binder/rewriter sit inside the fuzzed surface, not outside it.
See docs/FUZZING.md for the triage workflow.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import make_executor
from repro.core.bruteforce import BruteForceMatcher
from repro.core.engine import TRexEngine
from repro.errors import ExecutionError, TRexError
from repro.lang.query import Query, compile_query
from repro.timeseries.series import Series

MatchSet = Tuple[Tuple[int, int], ...]

# ---------------------------------------------------------------------------
# Query specs: a tiny mutable mirror of the pattern algebra that renders to
# surface syntax.  The minimizer edits specs, never raw text.
# ---------------------------------------------------------------------------


@dataclass
class SVar:
    """One variable occurrence: a pattern leaf plus its DEFINE clause."""

    name: str
    is_segment: bool
    cond: str

    def clone(self) -> "SVar":
        return SVar(self.name, self.is_segment, self.cond)


@dataclass
class SNode:
    """Composite pattern node: concat/and/or/not/kleene plus quantifier."""

    kind: str
    parts: List[object] = field(default_factory=list)
    quant: str = ""

    def clone(self) -> "SNode":
        return SNode(self.kind, [p.clone() for p in self.parts], self.quant)


def spec_vars(spec: object) -> List[SVar]:
    """Every variable leaf, in pattern order (duplicates preserved)."""
    if isinstance(spec, SVar):
        return [spec]
    found: List[SVar] = []
    for part in spec.parts:
        found.extend(spec_vars(part))
    return found


def spec_size(spec: object) -> int:
    """Node count of the spec tree (minimization metric)."""
    if isinstance(spec, SVar):
        return 1
    return 1 + sum(spec_size(p) for p in spec.parts)


def render_pattern(spec: object) -> str:
    if isinstance(spec, SVar):
        return spec.name
    if spec.kind == "concat":
        return "(" + " ".join(render_pattern(p) for p in spec.parts) + ")"
    if spec.kind == "and":
        return "(" + " & ".join(render_pattern(p) for p in spec.parts) + ")"
    if spec.kind == "or":
        return "(" + " | ".join(render_pattern(p) for p in spec.parts) + ")"
    if spec.kind == "not":
        return "~" + render_pattern(spec.parts[0])
    if spec.kind == "kleene":
        return "(" + render_pattern(spec.parts[0]) + ")" + spec.quant
    raise ValueError(f"unknown spec kind {spec.kind!r}")


def render_query(spec: object) -> str:
    """Full query text for a spec tree."""
    seen: Dict[str, SVar] = {}
    for var in spec_vars(spec):
        seen.setdefault(var.name, var)
    defines = ",\n  ".join(
        ("SEGMENT " if v.is_segment else "") + f"{v.name} AS {v.cond}"
        for v in seen.values())
    return (f"ORDER BY tstamp\nPATTERN {render_pattern(spec)}\n"
            f"DEFINE {defines}")


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

_AGG_1COL = ("sum", "avg", "count", "min", "max", "stddev", "median",
             "max_drawdown", "mann_kendall_test", "equal_up_down_ticks")
_AGG_2COL = ("corr", "linear_regression_r2", "linear_regression_r2_signed",
             "slope")
_CMP_OPS = ("<", "<=", ">", ">=", "!=")
#: Aggregates whose direct and indexed evaluations are bitwise-identical
#: (integer counts, element selection).  Only these may be compared with
#: exact equality: derived float statistics (sum, avg, stddev, ...) are
#: computed by different formulas on the direct and index paths and may
#: legitimately differ in the last ulp, so ``= / !=`` against a threshold
#: they hit exactly is a knife-edge, not a bug (docs/FUZZING.md).
_EXACT_AGGS = frozenset({"count", "min", "max"})
_ORDER_OPS = ("<", "<=", ">", ">=")


class QueryGen:
    """Seeded random query generator over the surface grammar."""

    def __init__(self, rng: random.Random, max_nodes: int = 6):
        self.rng = rng
        self.max_nodes = max_nodes
        self._counter = 0

    # -- variables -----------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _threshold(self) -> str:
        # Series values live on the quarter-integer lattice, so exactly
        # representable statistics (stddev of two points, medians, small
        # sums) land on the 1/8 grid.  Thresholds sit on the 1/128 grid
        # *off* that lattice: a statistic can then only collide with a
        # threshold through a ~2^-45 rounding accident, which keeps every
        # comparison away from cross-path ulp knife-edges (docs/FUZZING.md).
        rng = self.rng
        base = rng.choice((-4, -2, -1, 0, 1, 2, 3, 5, 8))
        if rng.random() < 0.5:
            return str(base)
        return repr(base + rng.choice((0.2578125, 0.4921875, 0.7421875)))

    def _agg_op(self, agg: str) -> str:
        """Comparison op for an aggregate; equality only for exact ones."""
        if agg in _EXACT_AGGS:
            return self.rng.choice(_CMP_OPS)
        return self.rng.choice(_ORDER_OPS)

    def _window_cond(self, allow_zero: bool = True) -> str:
        rng = self.rng
        lo = rng.choice((0, 0, 1, 2, 3) if allow_zero else (1, 2, 3))
        hi_pool: Tuple[object, ...] = (lo, lo + 1, lo + 3, lo + 6, "null")
        hi = rng.choice(hi_pool)
        return f"window({lo}, {hi})"

    def _point_cond(self, name: str) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.15:
            return "true"
        if roll < 0.75:
            return f"{name}.val {rng.choice(_CMP_OPS)} {self._threshold()}"
        if roll < 0.85:
            return (f"{name}.val * 2 - 1 "
                    f"{rng.choice(_CMP_OPS)} {self._threshold()}")
        if roll < 0.95:
            return (f"{name}.val BETWEEN {self._threshold()} "
                    f"AND {self._threshold()}")
        return "zscore_outlier(val, 2) > 0.5"

    def _segment_cond(self, name: str) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.1:
            return "true"
        if roll < 0.2:
            return self._window_cond()
        if roll < 0.7:
            agg = rng.choice(_AGG_1COL)
            return f"{agg}({name}.val) {self._agg_op(agg)} " \
                   f"{self._threshold()}"
        if roll < 0.8:
            agg = rng.choice(_AGG_2COL)
            return f"{agg}({name}.tstamp, {name}.val) " \
                   f"{self._agg_op(agg)} " \
                   f"{rng.choice(('-0.4921875', '0.2578125', '0.7578125'))}"
        if roll < 0.9:
            return (f"last({name}.val) {rng.choice(_CMP_OPS)} "
                    f"first({name}.val)")
        agg_a = rng.choice(_AGG_1COL)
        cond_a = f"{agg_a}({name}.val) " \
                 f"{self._agg_op(agg_a)} {self._threshold()}"
        if rng.random() < 0.5:
            return f"{cond_a} AND {self._window_cond()}"
        return f"NOT ({cond_a})"

    def _leaf(self) -> SVar:
        if self.rng.random() < 0.55:
            name = self._fresh("S")
            return SVar(name, True, self._segment_cond(name))
        name = self._fresh("P")
        return SVar(name, False, self._point_cond(name))

    # -- pattern tree --------------------------------------------------------

    def _pattern(self, budget: int, depth: int) -> object:
        rng = self.rng
        if budget <= 1 or depth >= 3 or rng.random() < 0.35:
            return self._leaf()
        kind = rng.choice(("concat", "concat", "and", "or", "not", "kleene"))
        if kind == "concat":
            arity = 2 if budget < 4 or rng.random() < 0.7 else 3
            split = max(1, (budget - 1) // arity)
            parts = [self._pattern(split, depth + 1) for _ in range(arity)]
            return SNode("concat", parts)
        if kind == "and":
            left = self._pattern((budget - 1) // 2, depth + 1)
            if rng.random() < 0.5:
                name = self._fresh("W")
                right: object = SVar(name, True, self._window_cond())
            else:
                right = self._pattern((budget - 1) // 2, depth + 1)
            return SNode("and", [left, right])
        if kind == "or":
            return SNode("or", [self._pattern((budget - 1) // 2, depth + 1),
                                self._pattern((budget - 1) // 2, depth + 1)])
        if kind == "not":
            # Mirror the paper's idiom: a negated branch alongside a
            # positive conjunct keeps the complement bounded and cheap.
            positive = self._pattern((budget - 1) // 2, depth + 1)
            negated = SNode("not", [self._pattern(max(1, (budget - 1) // 2),
                                                  depth + 1)])
            if rng.random() < 0.3:
                return SNode("not", [positive])
            return SNode("and", [positive, negated])
        child = self._pattern(budget - 1, depth + 1)
        has_segment = any(v.is_segment for v in spec_vars(child))
        if has_segment:
            quant = rng.choice(("+", "{2}", "{1,2}", "{1,3}", "{2,3}"))
        else:
            quant = rng.choice(("+", "*", "?", "{0,2}", "{1,3}", "{2}"))
        return SNode("kleene", [child], quant)

    def _add_cross_refs(self, spec: object) -> None:
        """Wire cross-variable references between co-present variables.

        Only variables joined purely by concat/and are guaranteed bound in
        every match, so references never reach into ``|``, ``~`` or Kleene
        branches.  Mutual references between point siblings produce the
        cyclic cases the brute-force matcher resolves by deferral.
        """
        def certain(node: object) -> List[SVar]:
            if isinstance(node, SVar):
                return [node]
            if node.kind in ("concat", "and"):
                found: List[SVar] = []
                for part in node.parts:
                    found.extend(certain(part))
                return found
            return []

        rng = self.rng
        vars_ = certain(spec)
        if len(vars_) < 2:
            return
        a, b = rng.sample(vars_, 2)
        op = rng.choice(_CMP_OPS)
        if not a.is_segment and not b.is_segment:
            a.cond = f"{a.name}.val {op} {b.name}.val"
            if rng.random() < 0.5:  # make it cyclic
                b.cond = f"{b.name}.val {rng.choice(_CMP_OPS)} {a.name}.val"
        elif a.is_segment and not b.is_segment:
            # Exact aggregate only: a raw series value is a knife-edge
            # threshold, and derived statistics (avg, sum, ...) may
            # differ in the last ulp between the direct and indexed
            # paths (see _EXACT_AGGS above) — e.g. a prefix-sum avg of
            # a single point need not equal that point bit-for-bit.
            a.cond = f"min({a.name}.val) {op} {b.name}.val"
        elif not a.is_segment and b.is_segment:
            a.cond = f"{a.name}.val {op} first({b.name}.val)"
        else:
            a.cond = f"last({a.name}.val) {op} first({b.name}.val)"

    def generate(self) -> object:
        self._counter = 0
        budget = self.rng.randint(1, self.max_nodes)
        spec = self._pattern(budget, 0)
        if self.rng.random() < 0.4:
            name = self._fresh("W")
            spec = SNode("and",
                         [spec, SVar(name, True,
                                     self._window_cond(allow_zero=False))])
        if self.rng.random() < 0.35:
            self._add_cross_refs(spec)
        return spec


class SeriesGen:
    """Seeded random short series biased toward matcher-breaking shapes.

    ``nan_bias``/``tiny_bias`` harden the scalar/vector boundary fuzzing:
    NaN poisoning exercises the kernels' comparison and truthiness masks,
    and n in {0, 1, 2} exercises batch enumeration around empty and
    single-candidate spaces.
    """

    def __init__(self, rng: random.Random, max_len: int = 10,
                 nan_bias: float = 0.0, tiny_bias: float = 0.0):
        self.rng = rng
        self.max_len = max_len
        self.nan_bias = nan_bias
        self.tiny_bias = tiny_bias

    def _values(self, n: int) -> List[float]:
        rng = self.rng
        shape = rng.choice(("walk", "walk", "ties", "plateau", "nan",
                            "spiky"))
        if shape == "plateau":
            level = float(rng.choice((-1, 0, 2, 0.1)))
            vals = [level] * n
            for _ in range(rng.randint(0, max(0, n // 3))):
                vals[rng.randrange(n)] = level + rng.choice((-2, 1, 3))
            return vals
        pool: Sequence[float]
        if shape == "ties":
            pool = (0.0, 1.0, 1.0, 2.0)
        elif shape == "spiky":
            pool = (-100.0, -1.0, 0.0, 0.5, 2.0, 100.0)
        else:
            pool = (-3.0, -1.0, 0.0, 1.0, 2.0, 4.0, 5.5)
        vals = [float(rng.choice(pool)) for _ in range(n)]
        if shape == "nan" or (shape == "walk" and rng.random() < 0.15):
            for _ in range(rng.randint(1, max(1, n // 4))):
                vals[rng.randrange(n)] = math.nan
        if self.nan_bias:
            for i in range(n):
                if rng.random() < self.nan_bias:
                    vals[i] = math.nan
        return vals

    def generate(self) -> Tuple[List[float], List[float]]:
        """One (timestamps, values) pair; n in {0, 1, 2} with bias."""
        rng = self.rng
        roll = rng.random()
        if self.tiny_bias and rng.random() < self.tiny_bias:
            n = rng.randint(0, 2)
        elif roll < 0.06:
            n = 0
        elif roll < 0.14:
            n = 1
        elif roll < 0.22:
            n = 2
        else:
            n = rng.randint(3, self.max_len)
        if n == 0:
            return [], []
        values = self._values(n)
        if rng.random() < 0.25:
            gaps = [float(rng.choice((1, 1, 2, 3))) for _ in range(n)]
            tstamps = [float(t) for t in np.cumsum(gaps) - gaps[0]]
        else:
            tstamps = [float(i) for i in range(n)]
        if n >= 2 and rng.random() < 0.1:
            at = rng.randrange(1, n)  # tied order values are legal
            tstamps[at] = tstamps[at - 1]
            tstamps[at:] = [tstamps[at - 1] + (t - tstamps[at])
                            for t in tstamps[at:]]
        return tstamps, values


def build_series(tstamps: Sequence[float], values: Sequence[float],
                 time_unit: str = "DAY") -> Series:
    return Series({"tstamp": np.asarray(tstamps, dtype=np.float64),
                   "val": np.asarray(values, dtype=np.float64)},
                  order_column="tstamp", key=("fuzz",),
                  time_unit=time_unit)


# ---------------------------------------------------------------------------
# Oracle matrix
# ---------------------------------------------------------------------------

_PATTERN_ORDER_GAP = "unavailable in pattern order"


def _engine_backend(**kwargs: object) -> Callable[[Query, Series], MatchSet]:
    def run(query: Query, series: Series) -> MatchSet:
        result = TRexEngine(**kwargs).execute_query(query, [series])
        return tuple(sorted(result.per_series[0].matches))
    return run


def _baseline_backend(label: str,
                      sharing: bool) -> Callable[[Query, Series], MatchSet]:
    def run(query: Query, series: Series) -> MatchSet:
        executor = make_executor(label, query, sharing=sharing)
        return tuple(sorted(executor.match_series(series)))
    return run


#: The full backend matrix: tree executor x planners x sharing x executor
#: backends, plus every baseline.  Values are factories so constructing the
#: dict stays cheap.
BACKENDS: Dict[str, Callable[[Query, Series], MatchSet]] = {
    "trex:cost:auto": _engine_backend(optimizer="cost", sharing="auto",
                                      executor="serial"),
    "trex:cost:on": _engine_backend(optimizer="cost", sharing="on",
                                    executor="serial"),
    "trex:cost:off": _engine_backend(optimizer="cost", sharing="off",
                                     executor="serial"),
    "trex:pr_left": _engine_backend(optimizer="pr_left", sharing="auto",
                                    executor="serial"),
    "trex:pr_right": _engine_backend(optimizer="pr_right", sharing="auto",
                                     executor="serial"),
    "trex:sm_left": _engine_backend(optimizer="sm_left", sharing="auto",
                                    executor="serial"),
    "trex:sm_right": _engine_backend(optimizer="sm_right", sharing="auto",
                                     executor="serial"),
    "trex:thread": _engine_backend(optimizer="cost", sharing="auto",
                                   executor="thread", workers=2),
    "trex:novec": _engine_backend(optimizer="cost", sharing="auto",
                                  executor="serial", vectorize=False),
    "trex:vec": _engine_backend(optimizer="cost", sharing="auto",
                                executor="serial", vectorize=True),
    "trex:noprefilter": _engine_backend(optimizer="cost", sharing="auto",
                                        executor="serial", prefilter=False),
    "trex:prefilter": _engine_backend(optimizer="cost", sharing="auto",
                                      executor="serial", prefilter=True),
    "trex-batch": _baseline_backend("trex-batch", True),
    "afa": _baseline_backend("afa", True),
    "afa:off": _baseline_backend("afa", False),
    "nested-afa": _baseline_backend("nested-afa", True),
    "zstream": _baseline_backend("zstream", True),
    "opencep": _baseline_backend("opencep", True),
}

#: Backends checked on every case; the rest rotate in by case index.
CORE_BACKENDS = ("trex:cost:auto", "trex:cost:on", "trex:cost:off",
                 "trex:pr_left", "trex:thread", "trex:novec", "trex:vec",
                 "trex:noprefilter", "trex:prefilter",
                 "trex-batch", "afa", "zstream")
ROTATING_BACKENDS = ("trex:pr_right", "trex:sm_left", "trex:sm_right",
                     "afa:off", "nested-afa", "opencep")


@dataclass
class Discrepancy:
    """One surviving disagreement between a backend and the oracle."""

    kind: str            # "oracle" or "metamorphic:<relation>"
    backend: str         # backend label, or relation detail
    query: str
    tstamps: List[float]
    values: List[float]
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "backend": self.backend,
                "query": self.query,
                "series": {"tstamp": encode_values(self.tstamps),
                           "val": encode_values(self.values)},
                "detail": self.detail}


def oracle_check(query: Query, query_text: str, tstamps: Sequence[float],
                 values: Sequence[float],
                 backends: Sequence[str] = CORE_BACKENDS) \
        -> List[Discrepancy]:
    """Diff every backend's match set against the brute-force matcher.

    AFA-family executors that reject a query because a reference is not
    available in pattern order are skipped: evaluating conditions eagerly
    in syntactic order is the documented capability gap of the modeled
    NFA systems (docs/FUZZING.md), not a bug.
    """
    series = build_series(tstamps, values)
    try:
        expected = tuple(sorted(BruteForceMatcher(query)
                                .match_series(series)))
    except Exception as exc:  # any crash is a finding, never a campaign end
        return [Discrepancy("oracle", "brute", query_text, list(tstamps),
                            list(values),
                            f"brute-force raised {type(exc).__name__}: "
                            f"{exc}")]
    found: List[Discrepancy] = []
    for label in backends:
        runner = BACKENDS[label]
        try:
            got = runner(query, series)
        except ExecutionError as exc:
            if label.startswith(("afa", "nested-afa")) \
                    and _PATTERN_ORDER_GAP in str(exc):
                continue
            found.append(Discrepancy(
                "oracle", label, query_text, list(tstamps), list(values),
                f"raised {type(exc).__name__}: {exc}"))
            continue
        except Exception as exc:  # crashes are findings too (e.g. the
            # pre-fix mann_kendall int(NaN) ValueError)
            found.append(Discrepancy(
                "oracle", label, query_text, list(tstamps), list(values),
                f"raised {type(exc).__name__}: {exc}"))
            continue
        if got != expected:
            missing = sorted(set(expected) - set(got))
            extra = sorted(set(got) - set(expected))
            found.append(Discrepancy(
                "oracle", label, query_text, list(tstamps), list(values),
                f"missing={missing} extra={extra} (brute={list(expected)})"))
    return found


# ---------------------------------------------------------------------------
# Scalar/vector deep-equality oracle
# ---------------------------------------------------------------------------

def _metrics_snapshot(metrics: object) -> Optional[List[Dict[str, object]]]:
    """Per-operator metrics with time and op-id fields stripped.

    Each engine construction compiles its own plan, so raw ``op_id``
    values differ between the scalar and vector runs; ``to_list`` orders
    by op_id and plan construction is deterministic, so position ``i``
    is the same operator in both trees.
    """
    if metrics is None:
        return None
    out: List[Dict[str, object]] = []
    for rec in metrics.to_list():  # type: ignore[attr-defined]
        rec = dict(rec)
        rec.pop("op_id", None)
        rec.pop("time_seconds", None)
        rec.pop("self_seconds", None)
        out.append(rec)
    return out


def _result_snapshot(result: object) -> Dict[str, object]:
    entries = []
    for entry in result.per_series:  # type: ignore[attr-defined]
        err = None
        if entry.error is not None:
            err = (entry.error.error, entry.error.message,
                   entry.error.kind, entry.error.partial)
        entries.append({
            "matches": tuple(entry.matches),
            "stats": tuple(sorted(entry.stats.items())),
            "metrics": _metrics_snapshot(entry.metrics),
            "error": err,
        })
    return {"series": entries,
            "plan": result.plan_explain,  # type: ignore[attr-defined]
            "interrupted": result.interrupted,  # type: ignore[attr-defined]
            "degradation": result.degradation}  # type: ignore[attr-defined]


def _first_diff(scalar: object, vector: object, path: str = "") -> str:
    """Human-readable pointer at the first differing component."""
    if type(scalar) is not type(vector):
        return f"{path or 'result'}: {scalar!r} != {vector!r}"
    if isinstance(scalar, dict):
        for key in scalar:
            if scalar[key] != vector.get(key):  # type: ignore[union-attr]
                return _first_diff(scalar[key],
                                   vector.get(key),  # type: ignore[union-attr]
                                   f"{path}.{key}" if path else str(key))
        return f"{path or 'result'}: differing keys"
    if isinstance(scalar, (list, tuple)):
        for i, (a, b) in enumerate(zip(scalar, vector)):
            if a != b:
                return _first_diff(a, b, f"{path}[{i}]")
        return (f"{path or 'result'}: length {len(scalar)} != "
                f"{len(vector)}")  # type: ignore[arg-type]
    return f"{path or 'result'}: {scalar!r} != {vector!r}"


def vector_check(query: Query, query_text: str, tstamps: Sequence[float],
                 values: Sequence[float]) -> List[Discrepancy]:
    """Deep-diff scalar vs. vector execution of the same query.

    Stronger than the match-set oracle: the whole observable result —
    matches, per-series stats counters, EXPLAIN ANALYZE per-operator
    metrics (sans wall times), structured error records and degradation
    state — must be identical under both sharing policies, because the
    vector kernels promise byte-identical ``QueryResult`` contents, not
    just equal match sets.
    """
    series = build_series(tstamps, values)
    found: List[Discrepancy] = []
    for sharing in ("on", "off"):
        snaps: Dict[bool, object] = {}
        for vectorize in (False, True):
            try:
                result = TRexEngine(
                    optimizer="cost", sharing=sharing, executor="serial",
                    analyze=True, on_error="partial",
                    vectorize=vectorize).execute_query(query, [series])
                snaps[vectorize] = _result_snapshot(result)
            except Exception as exc:  # crashes are findings too
                snaps[vectorize] = ("raised", type(exc).__name__, str(exc))
        if snaps[False] != snaps[True]:
            found.append(Discrepancy(
                "vector", f"sharing={sharing}", query_text,
                list(tstamps), list(values),
                _first_diff(snaps[False], snaps[True])))
    return found


# ---------------------------------------------------------------------------
# Prefilter no-false-dismissal oracle
# ---------------------------------------------------------------------------

def _parity_slice(snap: Dict[str, object]) -> Dict[str, object]:
    """The always-identical part of a result snapshot.

    Matches, structured error records, the plan text and degradation
    state must agree between prefilter-on and prefilter-off runs no
    matter what was pruned; stats and per-operator metrics measure the
    *work performed*, which pruning exists to reduce, so those are only
    compared when the prefilter made no decision (docs/PREFILTER.md).
    """
    return {
        "series": [{"matches": e["matches"], "error": e["error"]}
                   for e in snap["series"]],  # type: ignore[union-attr]
        "plan": snap["plan"],
        "interrupted": snap["interrupted"],
        "degradation": snap["degradation"],
    }


def prefilter_check(query: Query, query_text: str, tstamps: Sequence[float],
                    values: Sequence[float]) -> List[Discrepancy]:
    """Differential no-false-dismissal oracle: prefilter on vs. off.

    Three nested guarantees, strongest applicable wins:

    * the symbolic index must be *sound* for the series — every block's
      envelope brackets the exact block min/max
      (:meth:`repro.index.summary.SeriesSummary.validate`);
    * matches, error records, plan text and degradation state must be
      byte-identical between the two runs, always;
    * when the prefilter made no pruning decision (nothing skipped or
      narrowed) the *entire* snapshot — stats counters and per-operator
      metrics included — must be byte-identical, because an inert
      prefilter promises a bit-for-bit classic run.
    """
    series = build_series(tstamps, values)
    found: List[Discrepancy] = []
    try:
        from repro.index.summary import build_summary
        build_summary(series).validate(series)
    except Exception as exc:  # soundness violations are the headline bug
        found.append(Discrepancy(
            "prefilter", "envelope", query_text, list(tstamps),
            list(values),
            f"index envelope unsound: {type(exc).__name__}: {exc}"))
    snaps: Dict[bool, object] = {}
    pruned = False
    for enabled in (False, True):
        try:
            result = TRexEngine(
                optimizer="cost", sharing="auto", executor="serial",
                analyze=True, on_error="partial",
                prefilter=enabled).execute_query(query, [series])
            snaps[enabled] = _result_snapshot(result)
            if enabled and result.prefilter is not None:
                pruned = bool(result.prefilter["series_skipped"]
                              or result.prefilter["series_narrowed"])
        except Exception as exc:  # crashes are findings too
            snaps[enabled] = ("raised", type(exc).__name__, str(exc))
    off, on = snaps[False], snaps[True]
    if isinstance(off, dict) and isinstance(on, dict) and pruned:
        off, on = _parity_slice(off), _parity_slice(on)
    if off != on:
        found.append(Discrepancy(
            "prefilter", f"pruned={pruned}", query_text,
            list(tstamps), list(values), _first_diff(off, on)))
    return found


# ---------------------------------------------------------------------------
# Metamorphic relations
# ---------------------------------------------------------------------------

def _run_text(query_text: str, series: Series) -> MatchSet:
    query = compile_query(query_text)
    result = TRexEngine(optimizer="cost", sharing="on") \
        .execute_query(query, [series])
    return tuple(sorted(result.per_series[0].matches))


def metamorphic_check(spec: object, tstamps: Sequence[float],
                      values: Sequence[float]) -> List[Discrepancy]:
    """Run every applicable metamorphic relation on the spec.

    Relations (docs/FUZZING.md):

    * ``window-tighten`` — tightening an outer window conjunct can only
      shrink the match set;
    * ``or-commute`` — ``P | Q`` and ``Q | P`` match identically;
    * ``double-not`` — ``~~P`` is a superset of ``P`` (equality can be
      broken by window embedding, the superset direction cannot);
    * ``prefix-extend`` — appending points to the series preserves the
      matches that end strictly before the appended suffix (skipped for
      queries whose aggregates read series context, e.g. zscore_outlier).
    """
    found: List[Discrepancy] = []
    series = build_series(tstamps, values)
    base_text = render_query(spec)
    try:
        base = _run_text(base_text, series)
    except TRexError:
        return found  # oracle_check owns crash reporting

    def record(relation: str, variant_text: str, detail: str) -> None:
        found.append(Discrepancy(f"metamorphic:{relation}", relation,
                                 base_text, list(tstamps), list(values),
                                 f"{detail}; variant:\n{variant_text}"))

    # window-tighten: outer `P & W(lo, hi)` conjunct, if present.
    tight = _tightened(spec)
    if tight is not None:
        variant_text = render_query(tight)
        try:
            got = _run_text(variant_text, series)
            if not set(got) <= set(base):
                record("window-tighten", variant_text,
                       f"tightened window gained matches "
                       f"{sorted(set(got) - set(base))}")
        except TRexError as exc:
            record("window-tighten", variant_text,
                   f"variant raised {type(exc).__name__}: {exc}")

    # or-commute: root-level alternation.
    if isinstance(spec, SNode) and spec.kind == "or":
        swapped = spec.clone()
        swapped.parts.reverse()
        variant_text = render_query(swapped)
        try:
            got = _run_text(variant_text, series)
            if got != base:
                record("or-commute", variant_text,
                       f"swap changed matches: {list(got)} vs {list(base)}")
        except TRexError as exc:
            record("or-commute", variant_text,
                   f"variant raised {type(exc).__name__}: {exc}")

    # double-not: ~~P >= P.
    doubled = SNode("not", [SNode("not", [spec.clone()])])
    variant_text = render_query(doubled)
    try:
        got = _run_text(variant_text, series)
        if not set(base) <= set(got):
            record("double-not", variant_text,
                   f"~~P lost matches {sorted(set(base) - set(got))}")
    except TRexError:
        pass  # ~~P may exceed planner support for some shapes; not a bug

    # prefix-extend: append two calm points; interior matches must agree.
    if values and "zscore_outlier" not in base_text:
        last_t = tstamps[-1]
        ext_t = list(tstamps) + [last_t + 1.0, last_t + 2.0]
        ext_v = list(values) + [0.0, 1.0]
        variant = build_series(ext_t, ext_v)
        n = len(values)
        try:
            got = _run_text(base_text, variant)
            interior = tuple(m for m in got if m[1] < n)
            if interior != base:
                record("prefix-extend", base_text,
                       f"extension changed interior matches: "
                       f"{list(interior)} vs {list(base)}")
        except TRexError as exc:
            record("prefix-extend", base_text,
                   f"extended series raised {type(exc).__name__}: {exc}")
    return found


def _tightened(spec: object) -> Optional[object]:
    """Clone with the first outer window conjunct tightened, if any."""
    if not (isinstance(spec, SNode) and spec.kind == "and"):
        return None
    clone = spec.clone()
    for part in clone.parts:
        if isinstance(part, SVar) and part.cond.startswith("window("):
            inside = part.cond[len("window("):-1]
            lo_text, hi_text = [s.strip() for s in inside.split(",")]
            lo = int(float(lo_text))
            if hi_text == "null":
                part.cond = f"window({lo + 1}, {lo + 3})"
            else:
                hi = int(float(hi_text))
                if lo + 1 > hi:
                    return None
                part.cond = f"window({lo + 1}, {hi})"
            return clone
    return None


# ---------------------------------------------------------------------------
# Delta-debugging minimizer
# ---------------------------------------------------------------------------

def _compiles(spec: object) -> Optional[str]:
    """Query text when the spec compiles, else None."""
    try:
        text = render_query(spec)
        compile_query(text)
        return text
    except (TRexError, ValueError, IndexError):
        return None


def _spec_candidates(spec: object) -> Iterator[object]:
    """Structurally smaller variants, deterministic order.

    Tries, at every composite node: replacing the node by each child,
    dropping one part from wide composites, stripping quantifiers; and at
    every leaf: relaxing the condition to ``true``.
    """
    def rebuild(path: Tuple[int, ...], replacement: object) -> object:
        def walk(node: object, depth: int) -> object:
            if depth == len(path):
                return replacement
            assert isinstance(node, SNode)
            parts = [walk(p, depth + 1) if i == path[depth] else p.clone()
                     for i, p in enumerate(node.parts)]
            return SNode(node.kind, parts, node.quant)
        return walk(spec, 0)

    def visit(node: object, path: Tuple[int, ...]) -> Iterator[object]:
        if isinstance(node, SVar):
            if node.cond != "true":
                relaxed = node.clone()
                relaxed.cond = "true"
                yield rebuild(path, relaxed)
            return
        for i, part in enumerate(node.parts):
            yield rebuild(path, part.clone())
            if len(node.parts) > 2:
                shrunk = node.clone()
                del shrunk.parts[i]
                yield rebuild(path, shrunk)
        if node.kind == "kleene" and node.quant not in ("{1}",):
            collapsed = node.clone()
            collapsed.quant = "{1}"
            yield rebuild(path, collapsed)
        for i, part in enumerate(node.parts):
            yield from visit(part, path + (i,))

    yield from visit(spec, ())


def _series_candidates(tstamps: List[float], values: List[float]) \
        -> Iterator[Tuple[List[float], List[float]]]:
    """Shorter/simpler series variants, deterministic order."""
    n = len(values)
    chunk = n // 2
    while chunk >= 1:
        for at in range(0, n, chunk):
            keep = [i for i in range(n) if not (at <= i < at + chunk)]
            yield [tstamps[i] for i in keep], [values[i] for i in keep]
        chunk //= 2
    for i in range(n):
        if values[i] != 0.0:
            simpler = list(values)
            simpler[i] = 0.0
            yield list(tstamps), simpler
    canon = [float(i) for i in range(n)]
    if tstamps != canon:
        yield canon, list(values)


def minimize_case(spec: object, tstamps: Sequence[float],
                  values: Sequence[float],
                  still_fails: Callable[[object, List[float], List[float]],
                                        bool],
                  max_steps: int = 400) \
        -> Tuple[object, List[float], List[float]]:
    """Greedy delta debugging over the spec tree and the series.

    ``still_fails(spec, tstamps, values)`` re-runs the original check;
    candidates that stop failing (or stop compiling) are discarded.  The
    pass order is fixed, so minimization is deterministic for a given
    failing case.  Returns the smallest reproducer reached within
    ``max_steps`` predicate evaluations.
    """
    best = (spec.clone(), list(tstamps), list(values))
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for candidate in _spec_candidates(best[0]):
            if steps >= max_steps:
                break
            if _compiles(candidate) is None:
                continue
            steps += 1
            if still_fails(candidate, best[1], best[2]):
                best = (candidate, best[1], best[2])
                progress = True
                break
        for cand_t, cand_v in _series_candidates(best[1], best[2]):
            if steps >= max_steps:
                break
            steps += 1
            if still_fails(best[0], cand_t, cand_v):
                best = (best[0], cand_t, cand_v)
                progress = True
                break
    return best


# ---------------------------------------------------------------------------
# Corpus serialization
# ---------------------------------------------------------------------------

def encode_values(values: Sequence[float]) -> List[object]:
    """JSON-safe value list: non-finite floats become strings."""
    out: List[object] = []
    for v in values:
        f = float(v)
        if math.isnan(f):
            out.append("nan")
        elif math.isinf(f):
            out.append("inf" if f > 0 else "-inf")
        else:
            out.append(f)
    return out


def decode_values(values: Sequence[object]) -> List[float]:
    return [float(v) for v in values]


def case_to_json(query_text: str, tstamps: Sequence[float],
                 values: Sequence[float], kind: str, detail: str,
                 seed: Optional[int] = None) -> Dict[str, object]:
    return {
        "query": query_text,
        "series": {"tstamp": encode_values(tstamps),
                   "val": encode_values(values)},
        "time_unit": "DAY",
        "kind": kind,
        "detail": detail,
        "seed": seed,
    }


def case_name(case: Dict[str, object]) -> str:
    blob = json.dumps({"query": case["query"], "series": case["series"]},
                      sort_keys=True)
    digest = hashlib.sha1(blob.encode()).hexdigest()[:10]
    kind = str(case["kind"]).split(":")[0]
    return f"{kind}_{digest}.json"


def replay_case(case: Dict[str, object],
                backends: Sequence[str] = CORE_BACKENDS) \
        -> List[Discrepancy]:
    """Re-run a corpus case through the oracle matrix."""
    query_text = str(case["query"])
    series = case["series"]  # type: ignore[assignment]
    tstamps = decode_values(series["tstamp"])  # type: ignore[index]
    values = decode_values(series["val"])  # type: ignore[index]
    query = compile_query(query_text)
    found = oracle_check(query, query_text, tstamps, values,
                         backends=backends)
    if str(case.get("kind", "")).startswith("vector"):
        # Vector divergences can hide in stats/metrics while match sets
        # agree; replay those cases through the deep-equality oracle.
        found.extend(vector_check(query, query_text, tstamps, values))
    if str(case.get("kind", "")).startswith("prefilter"):
        found.extend(prefilter_check(query, query_text, tstamps, values))
    return found


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------

@dataclass
class FuzzReport:
    """Aggregate result of one fuzzing campaign."""

    seed: int
    queries_generated: int = 0
    queries_rejected: int = 0
    cases_checked: int = 0
    oracle_checks: int = 0
    metamorphic_checks: int = 0
    vector_checks: int = 0
    prefilter_checks: int = 0
    discrepancies: List[Discrepancy] = field(default_factory=list)
    minimized: List[Dict[str, object]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "queries_generated": self.queries_generated,
            "queries_rejected": self.queries_rejected,
            "cases_checked": self.cases_checked,
            "oracle_checks": self.oracle_checks,
            "metamorphic_checks": self.metamorphic_checks,
            "vector_checks": self.vector_checks,
            "prefilter_checks": self.prefilter_checks,
            "discrepancies": [d.to_dict() for d in self.discrepancies],
            "minimized": self.minimized,
        }


def _minimize_discrepancy(spec: object, disc: Discrepancy,
                          report: FuzzReport) -> Dict[str, object]:
    kind = disc.kind

    def still_fails(cand: object, tstamps: List[float],
                    values: List[float]) -> bool:
        text = _compiles(cand)
        if text is None:
            return False
        try:
            if kind == "oracle":
                return bool(oracle_check(compile_query(text), text,
                                         tstamps, values))
            if kind == "vector":
                return bool(vector_check(compile_query(text), text,
                                         tstamps, values))
            if kind == "prefilter":
                return bool(prefilter_check(compile_query(text), text,
                                            tstamps, values))
            failures = metamorphic_check(cand, tstamps, values)
            return any(f.kind == kind for f in failures)
        except TRexError:
            return False

    small_spec, small_t, small_v = minimize_case(
        spec, disc.tstamps, disc.values, still_fails)
    case = case_to_json(render_query(small_spec), small_t, small_v,
                        disc.kind, disc.detail, seed=report.seed)
    return case


def run_fuzz(queries: int = 100, seed: int = 0, series_per_query: int = 3,
             max_nodes: int = 6, minimize: bool = True,
             on_case: Optional[Callable[[int], None]] = None) -> FuzzReport:
    """Run one fuzzing campaign; see ``repro fuzz --help``."""
    rng = random.Random(seed)
    qgen = QueryGen(rng, max_nodes=max_nodes)
    sgen = SeriesGen(rng)
    # Boundary-biased generator for the scalar/vector oracle: heavier
    # NaN poisoning and more n in {0, 1, 2} degenerate series.
    vgen = SeriesGen(rng, nan_bias=0.3, tiny_bias=0.35)
    # Long-series generator for the prefilter oracle: series spanning
    # several symbolic-index blocks so skip *and* narrow decisions both
    # fire (short fuzz series fit one block and only exercise skip).
    pgen = SeriesGen(rng, max_len=220)
    report = FuzzReport(seed=seed)
    produced = 0
    attempts = 0
    while produced < queries and attempts < queries * 10:
        attempts += 1
        report.queries_generated += 1
        spec = qgen.generate()
        text = _compiles(spec)
        if text is None:
            report.queries_rejected += 1
            continue
        query = compile_query(text)
        produced += 1
        if on_case is not None:
            on_case(produced)
        backends = list(CORE_BACKENDS)
        backends.append(ROTATING_BACKENDS[produced % len(ROTATING_BACKENDS)])
        def settle(failures: List[Discrepancy]) -> None:
            for disc in failures:
                report.discrepancies.append(disc)
                if minimize:
                    report.minimized.append(
                        _minimize_discrepancy(spec, disc, report))

        for _ in range(series_per_query):
            tstamps, values = sgen.generate()
            report.cases_checked += 1
            report.oracle_checks += len(backends)
            failures = oracle_check(query, text, tstamps, values,
                                    backends=backends)
            report.metamorphic_checks += 1
            failures.extend(metamorphic_check(spec, tstamps, values))
            report.vector_checks += 1
            failures.extend(vector_check(query, text, tstamps, values))
            report.prefilter_checks += 1
            failures.extend(prefilter_check(query, text, tstamps, values))
            settle(failures)
        # One extra boundary-biased series per query, deep-checked only.
        tstamps, values = vgen.generate()
        report.cases_checked += 1
        report.vector_checks += 1
        settle(vector_check(query, text, tstamps, values))
        # And one multi-block series through the prefilter differential
        # oracle, where narrow decisions become reachable.
        tstamps, values = pgen.generate()
        report.cases_checked += 1
        report.prefilter_checks += 1
        settle(prefilter_check(query, text, tstamps, values))
    return report
