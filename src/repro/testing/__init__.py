"""Testing utilities shipped with the library (fault injection)."""

from repro.testing.faults import (FaultSpec, InjectedFault, arm, disarm,
                                  disarm_all, inject, install_from_env)

__all__ = [
    "FaultSpec",
    "InjectedFault",
    "arm",
    "disarm",
    "disarm_all",
    "inject",
    "install_from_env",
]
