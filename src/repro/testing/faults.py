"""Deterministic fault injection for chaos testing (docs/ROBUSTNESS.md).

The engine, planner and executor expose *named fault points* — places
where a fault can be injected deterministically on the Nth hit:

=========================  ====================================================
point                      fires
=========================  ====================================================
``planner.dp``             entering the cost-based DP optimizer
``exec.<OpName>.eval``     entering a physical operator's ``eval`` (one
                           point per operator class, e.g.
                           ``exec.SortMergeAnd.eval``)
``aggregate.lookup``       after every shared-index aggregate lookup (the
                           looked-up value can be *corrupted*)
``data.series``            when the engine picks up the next series
``index.probe``            after the prefilter fetches a series' symbolic
                           summary (the summary can be *corrupted* to
                           model a stale or damaged index)
``service.admission``      inside the query service's admission check
``service.worker``         at the start of each service execution attempt
=========================  ====================================================

Faults are armed either programmatically::

    with faults.inject("planner.dp"):
        engine.execute_query(query, table)      # planner raises

or via the ``TREX_FAULTS`` environment variable (read once at import),
a comma/semicolon-separated list of ``point[:action][@hit][*times]``
entries (``*times`` caps how many hits fire, for transient faults)::

    TREX_FAULTS="planner.dp:raise" python -m repro query ...
    TREX_FAULTS="data.series:timeout@2,exec.ProbeNot.eval:delay(0.01)"
    TREX_FAULTS="service.worker:worker*1" python -m repro loadgen ...

Actions: ``raise`` (default, :class:`InjectedFault`), ``timeout``
(:class:`~repro.errors.QueryTimeout`), ``data``
(:class:`~repro.errors.DataError`), ``plan``
(:class:`~repro.errors.PlanError`), ``crash`` (a bare ``RuntimeError``,
modelling an operator bug outside the library's hierarchy), ``worker``
(:class:`~repro.errors.WorkerCrashed`, a transient pool death the
service retries), ``delay(seconds)``, and — context-manager only —
``corrupt`` with a callable mapping the observed value to a corrupted
one.

Overhead guarantee: every hook site is guarded by the module-level
:data:`ENABLED` flag, so a disarmed process pays one boolean check per
site and allocates nothing.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import (DataError, ExecutionError, PlanError, QueryTimeout,
                          TRexError, WorkerCrashed)

#: Fast-path guard consulted by every hook site; kept in sync with the
#: registry by :func:`arm`/:func:`disarm`.  Do not set directly.
ENABLED = False

#: Catalog of the stable fault points (for docs and sweep tooling; the
#: per-operator ``exec.*`` family is open-ended).
FAULT_POINTS = (
    "planner.dp",
    "exec.<OpName>.eval",
    "aggregate.lookup",
    "data.series",
    "index.probe",
    "service.admission",
    "service.worker",
)


class InjectedFault(ExecutionError):
    """Raised by an armed ``raise`` fault point."""


_ACTIONS: Dict[str, type] = {
    "raise": InjectedFault,
    "timeout": QueryTimeout,
    "data": DataError,
    "plan": PlanError,
    "crash": RuntimeError,
    # A transient parallel-pool death: the service's retry/backoff layer
    # treats WorkerCrashed as retryable (docs/SERVICE.md), so chaos runs
    # arm this with a firing cap (``*times``) to model crash-then-recover.
    "worker": WorkerCrashed,
}


@dataclass
class FaultSpec:
    """One armed fault: where, what, and on which hit it fires."""

    point: str
    action: str = "raise"        # raise|timeout|data|plan|crash|delay|corrupt
    on_hit: int = 1              # first hit (1-based) that fires
    times: Optional[int] = None  # max firings; None = every hit from on_hit
    delay_seconds: float = 0.0
    corrupt: Optional[Callable[[Any], Any]] = None
    hits: int = field(default=0, init=False)
    fired: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS and self.action not in ("delay",
                                                               "corrupt"):
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.on_hit < 1:
            raise ValueError("on_hit is 1-based and must be >= 1")

    def trip(self, value: Any) -> Any:
        """Record a hit; fire if due. Returns the (possibly corrupted)
        value, or raises for the raising actions."""
        self.hits += 1
        if self.hits < self.on_hit:
            return value
        if self.times is not None and self.fired >= self.times:
            return value
        self.fired += 1
        if self.action == "delay":
            time.sleep(self.delay_seconds)
            return value
        if self.action == "corrupt":
            if self.corrupt is None:
                return float("nan")
            return self.corrupt(value)
        raise _ACTIONS[self.action](
            f"injected fault at {self.point!r} (hit {self.hits})")


_ACTIVE: Dict[str, FaultSpec] = {}


def _refresh() -> None:
    global ENABLED
    ENABLED = bool(_ACTIVE)


def arm(spec: FaultSpec) -> FaultSpec:
    """Arm a fault; replaces any fault already armed at the same point."""
    _ACTIVE[spec.point] = spec
    _refresh()
    return spec


def disarm(point: str) -> None:
    _ACTIVE.pop(point, None)
    _refresh()


def disarm_all() -> None:
    _ACTIVE.clear()
    _refresh()


def active() -> List[FaultSpec]:
    """The currently armed faults (stable order for reporting)."""
    return [spec for _, spec in sorted(_ACTIVE.items())]


def fire(point: str, value: Any = None) -> Any:
    """Trip ``point`` if a fault is armed there.

    Call sites guard with ``if faults.ENABLED`` so this function only
    runs while some fault is armed.  Returns ``value`` unchanged unless
    a ``corrupt`` fault is due.
    """
    spec = _ACTIVE.get(point)
    if spec is None:
        return value
    return spec.trip(value)


@contextmanager
def inject(point: str, action: str = "raise", on_hit: int = 1,
           times: Optional[int] = None, delay_seconds: float = 0.0,
           corrupt: Optional[Callable[[Any], Any]] = None) \
        -> Iterator[FaultSpec]:
    """Arm one fault for the duration of the ``with`` block."""
    spec = arm(FaultSpec(point, action=action, on_hit=on_hit, times=times,
                         delay_seconds=delay_seconds, corrupt=corrupt))
    try:
        yield spec
    finally:
        disarm(point)


def parse_spec(entry: str) -> FaultSpec:
    """Parse one ``point[:action][@hit][*times]`` entry.

    ``TREX_FAULTS`` syntax: ``@hit`` is the first (1-based) hit that
    fires; ``*times`` caps how many hits fire after that — so
    ``service.worker:worker*1`` injects one transient crash and then
    behaves cleanly, modelling a fault a retry can recover from.
    """
    entry = entry.strip()
    if not entry:
        raise ValueError("empty fault entry")
    times: Optional[int] = None
    if "*" in entry:
        entry, _, times_text = entry.rpartition("*")
        try:
            times = int(times_text)
        except ValueError:
            raise ValueError(f"bad *times in fault entry {entry!r}: "
                             f"{times_text!r}") from None
    on_hit = 1
    if "@" in entry:
        entry, _, hit_text = entry.rpartition("@")
        try:
            on_hit = int(hit_text)
        except ValueError:
            raise ValueError(f"bad @hit in fault entry {entry!r}: "
                             f"{hit_text!r}") from None
    point, _, action = entry.partition(":")
    action = action or "raise"
    delay = 0.0
    if action.startswith("delay"):
        rest = action[len("delay"):]
        if rest:
            if not (rest.startswith("(") and rest.endswith(")")):
                raise ValueError(f"bad delay syntax {action!r}; "
                                 f"expected delay(seconds)")
            delay = float(rest[1:-1])
        action = "delay"
    return FaultSpec(point.strip(), action=action, on_hit=on_hit,
                     times=times, delay_seconds=delay)


def install_from_env(value: Optional[str] = None) -> List[FaultSpec]:
    """Arm every fault listed in ``TREX_FAULTS`` (or ``value``).

    Called once at import so subprocesses (CLI, CI chaos sweeps) pick up
    the variable without any code change.  Returns the armed specs.
    """
    if value is None:
        value = os.environ.get("TREX_FAULTS", "")
    specs = []
    for entry in value.replace(";", ",").split(","):
        if entry.strip():
            specs.append(arm(parse_spec(entry)))
    return specs


# TRexError is re-exported so chaos tests can assert on the library
# hierarchy without importing repro.errors separately.
__all__ = [
    "ENABLED", "FAULT_POINTS", "FaultSpec", "InjectedFault", "TRexError",
    "active", "arm", "disarm", "disarm_all", "fire", "inject",
    "install_from_env", "parse_spec",
]

install_from_env()
