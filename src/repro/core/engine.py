"""The T-ReX engine: parse → rewrite → plan → execute (Section 3).

:class:`TRexEngine` is the library's main entry point::

    engine = TRexEngine()
    result = engine.execute(table, query_text, params={...})

Planner selection:

* ``optimizer='cost'`` (default) — the cost-based dynamic-programming
  optimizer of Section 5;
* ``optimizer='batch'`` — cost-based but with probe operators disabled
  (the "T-ReX Batch" baseline of Section 6.3);
* a :class:`RuleStrategy` or its label (``'pr_left'``, ``'sm_right_pnot'``,
  ...) — the rule-based baselines of Section 6.2.

Computation sharing (``sharing=``): ``'auto'`` lets the optimizer choose
per leaf, ``'on'`` always prefers indexed leaves, ``'off'`` disables
indexes entirely.
"""

from __future__ import annotations

import heapq
import logging
import time
from typing import Dict, List, Optional, Tuple, Union

from repro.core.result import QueryResult, SeriesMatches
from repro.errors import PlanError, QueryLintError
from repro.exec.base import ExecContext, PhysicalOperator
from repro.exec.metrics import RunMetrics, instrument_plan
from repro.lang.query import Query, compile_query
from repro.plan.logical import LogicalNode, build_logical_plan
from repro.plan.search_space import SearchSpace
from repro.timeseries.series import Series
from repro.timeseries.table import Table

PlannerSpec = Union[str, "RuleStrategy"]

_logger = logging.getLogger(__name__)


def _resolve_rule_strategy(label: str):
    from repro.optimizer.rulebased import (BASELINE_STRATEGIES_WITH_NOT,
                                           RuleStrategy)
    for strategy in BASELINE_STRATEGIES_WITH_NOT:
        if strategy.label == label:
            return strategy
    raise PlanError(f"unknown planner {label!r}; expected 'cost', 'batch' or "
                    f"one of "
                    f"{[s.label for s in BASELINE_STRATEGIES_WITH_NOT]}")


class TRexEngine:
    """Pattern-search engine over historical time series."""

    def __init__(self, optimizer: PlannerSpec = "cost",
                 sharing: str = "auto",
                 timeout_seconds: Optional[float] = None,
                 max_matches: Optional[int] = None,
                 lint: bool = False,
                 analyze: bool = False):
        if sharing not in ("auto", "on", "off"):
            raise PlanError(f"sharing must be 'auto', 'on' or 'off', "
                            f"got {sharing!r}")
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise PlanError("timeout_seconds must be positive")
        if max_matches is not None and max_matches <= 0:
            raise PlanError("max_matches must be positive")
        self.optimizer = optimizer
        self.sharing = sharing
        #: Wall-clock budget for one execute_query() call; exceeding it
        #: raises :class:`repro.errors.QueryTimeout`.
        self.timeout_seconds = timeout_seconds
        #: Stop after this many matches across all series; the kept
        #: subset is the positionally-smallest matches, so it is
        #: deterministic across planners.
        self.max_matches = max_matches
        #: Run the static analyzer before planning: reject queries with
        #: lint errors (:class:`repro.errors.QueryLintError`), log
        #: warnings.
        self.lint = lint
        #: EXPLAIN ANALYZE mode: collect per-operator runtime metrics on
        #: the result (``QueryResult.op_metrics`` / ``plan_analyze``).
        self.analyze = analyze

    def _lint_query(self, query: Query) -> None:
        from repro.analysis import analyze
        diags = analyze(query)
        errors = [d for d in diags if d.is_error]
        if errors:
            summary = "; ".join(d.format() for d in errors)
            raise QueryLintError(
                f"query rejected by static analysis: {summary}",
                diagnostics=diags)
        for diag in diags:
            _logger.warning("query lint: %s", diag.format())

    # -- planning -------------------------------------------------------------

    def build_plan(self, query: Query, logical: LogicalNode,
                   series_list: List[Series]) -> PhysicalOperator:
        """Build the physical plan used for every series of the query.

        Rule-based strategies are data-independent; the cost-based planner
        samples statistics from ``series_list`` (Appendix D.3).
        """
        from repro.optimizer.rulebased import RuleBasedPlanner, RuleStrategy

        sharing = self.sharing
        optimizer = self.optimizer
        if isinstance(optimizer, RuleStrategy) or (
                isinstance(optimizer, str)
                and optimizer not in ("cost", "batch")):
            strategy = optimizer if isinstance(optimizer, RuleStrategy) \
                else _resolve_rule_strategy(optimizer)
            leaf_sharing = "off" if sharing == "off" else "on"
            return RuleBasedPlanner(strategy, sharing=leaf_sharing).plan(
                query, logical)
        from repro.optimizer.planner import CostBasedPlanner
        planner = CostBasedPlanner(
            allow_probes=(optimizer != "batch"), sharing=sharing)
        return planner.plan(query, logical, series_list)

    def plan_for_series(self, query: Query, logical: LogicalNode,
                        series: Series) -> PhysicalOperator:
        """Build a plan from a single series (convenience for tests)."""
        return self.build_plan(query, logical, [series])

    # -- execution -----------------------------------------------------------

    def execute(self, table: Table, query_text: str,
                params: Optional[Dict[str, object]] = None) -> QueryResult:
        """Parse, plan and execute a query over a table."""
        query = compile_query(query_text, params)
        return self.execute_query(query, table)

    def execute_query(self, query: Query,
                      table: Union[Table, List[Series]]) -> QueryResult:
        """Plan and execute a bound query."""
        if self.lint:
            self._lint_query(query)
        if isinstance(table, Table):
            series_list = table.partition(query.partition_by, query.order_by)
        else:
            series_list = list(table)
        logical = build_logical_plan(query)

        result = QueryResult()
        non_empty = [series for series in series_list if len(series)]
        if not non_empty:
            result.per_series = [SeriesMatches(series.key, [])
                                 for series in series_list]
            return result
        t0 = time.perf_counter()
        plan = self.build_plan(query, logical, non_empty)
        t1 = time.perf_counter()
        result.planning_seconds = t1 - t0
        result.plan_explain = plan.explain()
        deadline = None
        if self.timeout_seconds is not None:
            deadline = t1 + self.timeout_seconds
        # Analyze mode evaluates an instrumented shallow copy; the
        # original plan is untouched, so disabled mode pays nothing.
        exec_plan = instrument_plan(plan) if self.analyze else plan
        total_metrics = RunMetrics() if self.analyze else None
        exec_seconds = 0.0
        remaining = self.max_matches
        for series in series_list:
            if len(series) == 0 or (remaining is not None and remaining <= 0):
                result.per_series.append(SeriesMatches(series.key, []))
                continue
            t2 = time.perf_counter()
            matches, ctx = self._run_plan(exec_plan, series, query,
                                          deadline=deadline,
                                          limit=remaining,
                                          collect_metrics=self.analyze)
            seconds = time.perf_counter() - t2
            exec_seconds += seconds
            if ctx.metrics is not None:
                ctx.metrics.finalize(plan)
            if remaining is not None:
                remaining -= len(matches)
            result.per_series.append(SeriesMatches(
                series.key, matches, stats=ctx.stats, seconds=seconds,
                metrics=ctx.metrics))
            if total_metrics is not None and ctx.metrics is not None:
                total_metrics.merge(ctx.metrics)
        result.execution_seconds = exec_seconds
        if total_metrics is not None:
            total_metrics.finalize(plan)
            result.op_metrics = total_metrics
            result.plan_analyze = total_metrics.annotate(plan)
            result.analyze_tree = total_metrics.tree_dict(plan)
        return result

    def explain_match(self, query: Query, series: Series, start: int,
                      end: int):
        """All variable-binding environments proving ``[start, end]``
        matches (a MEASURES-style introspection aid).

        Uses the exhaustive reference matcher, so intended for inspecting
        individual matches, not bulk extraction.
        """
        from repro.core.bruteforce import BruteForceMatcher
        return BruteForceMatcher(query).bindings_for_segment(series, start,
                                                             end)

    def _run_plan(self, plan: PhysicalOperator, series: Series,
                  query: Query, deadline: Optional[float] = None,
                  limit: Optional[int] = None,
                  collect_metrics: bool = False) \
            -> Tuple[List[Tuple[int, int]], ExecContext]:
        ctx = ExecContext(series, query.registry, deadline=deadline,
                          metrics=RunMetrics() if collect_metrics else None)
        sp = SearchSpace.full(len(series))
        seen = set()
        matches: List[Tuple[int, int]] = []
        if limit is None:
            for segment in plan.eval(ctx, sp, {}):
                bounds = segment.bounds
                if bounds not in seen:
                    seen.add(bounds)
                    matches.append(bounds)
            matches.sort()
            return matches, ctx
        # Truncation keeps the `limit` positionally-smallest matches so
        # the subset is deterministic: plan emission order differs across
        # optimizers, so keeping the first N emitted would silently return
        # different subsets for the same query.
        heap: List[Tuple[int, int]] = []  # max-heap via negated bounds
        for segment in plan.eval(ctx, sp, {}):
            bounds = segment.bounds
            if bounds in seen:
                continue
            seen.add(bounds)
            item = (-bounds[0], -bounds[1])
            if len(heap) < limit:
                heapq.heappush(heap, item)
            elif item > heap[0]:
                heapq.heapreplace(heap, item)
        matches = sorted((-s, -e) for s, e in heap)
        return matches, ctx


def find_matches(table: Table, query_text: str,
                 params: Optional[Dict[str, object]] = None,
                 optimizer: PlannerSpec = "cost",
                 sharing: str = "auto") -> QueryResult:
    """One-call convenience API: run a pattern query over a table."""
    engine = TRexEngine(optimizer=optimizer, sharing=sharing)
    return engine.execute(table, query_text, params)
