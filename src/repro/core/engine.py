"""The T-ReX engine: parse → rewrite → plan → execute (Section 3).

:class:`TRexEngine` is the library's main entry point::

    engine = TRexEngine()
    result = engine.execute(table, query_text, params={...})

Planner selection:

* ``optimizer='cost'`` (default) — the cost-based dynamic-programming
  optimizer of Section 5;
* ``optimizer='batch'`` — cost-based but with probe operators disabled
  (the "T-ReX Batch" baseline of Section 6.3);
* a :class:`RuleStrategy` or its label (``'pr_left'``, ``'sm_right_pnot'``,
  ...) — the rule-based baselines of Section 6.2.

Computation sharing (``sharing=``): ``'auto'`` lets the optimizer choose
per leaf, ``'on'`` always prefers indexed leaves, ``'off'`` disables
indexes entirely.
"""

from __future__ import annotations

import logging
import os
import time
from collections import Counter
from typing import Dict, List, Optional, Tuple, Union

from repro.core.plancache import PlanCache
from repro.core.result import QueryResult, SeriesError, SeriesMatches
from repro.core.sink import MatchSink, truncate_matches
from repro.errors import (PlanError, QueryLintError, QueryTimeout, TRexError,
                          error_kind)
from repro.exec.base import ExecContext, PhysicalOperator
from repro.exec.metrics import RunMetrics, instrument_plan
from repro.lang.query import Query, compile_query
from repro.plan.logical import LogicalNode, build_logical_plan
from repro.plan.prefilter import (PrefilterPlan, evaluate_with_prefilter,
                                  extract_prefilter, prefilter_report)
from repro.plan.prefilter import default_enabled as _prefilter_default
from repro.plan.search_space import SearchSpace
from repro.testing import faults as _faults
from repro.timeseries.series import Series
from repro.timeseries.table import Table

PlannerSpec = Union[str, "RuleStrategy"]

_logger = logging.getLogger(__name__)


def _resolve_rule_strategy(label: str):
    from repro.optimizer.rulebased import (BASELINE_STRATEGIES_WITH_NOT,
                                           RuleStrategy)
    for strategy in BASELINE_STRATEGIES_WITH_NOT:
        if strategy.label == label:
            return strategy
    raise PlanError(f"unknown planner {label!r}; expected 'cost', 'batch' or "
                    f"one of "
                    f"{[s.label for s in BASELINE_STRATEGIES_WITH_NOT]}")


#: Backwards-compatible alias — the sink moved to :mod:`repro.core.sink`
#: so the parallel workers share the exact truncation semantics.
_MatchSink = MatchSink


class TRexEngine:
    """Pattern-search engine over historical time series."""

    def __init__(self, optimizer: PlannerSpec = "cost",
                 sharing: str = "auto",
                 timeout_seconds: Optional[float] = None,
                 max_matches: Optional[int] = None,
                 lint: bool = False,
                 analyze: bool = False,
                 on_error: str = "raise",
                 max_segments: Optional[int] = None,
                 planning_timeout_seconds: Optional[float] = None,
                 executor: Optional[str] = None,
                 workers: Optional[int] = None,
                 plan_cache: Union[bool, PlanCache, None] = None,
                 vectorize: Optional[bool] = None,
                 prefilter: Optional[bool] = None):
        if sharing not in ("auto", "on", "off"):
            raise PlanError(f"sharing must be 'auto', 'on' or 'off', "
                            f"got {sharing!r}")
        if on_error not in ("raise", "skip", "partial"):
            raise PlanError(f"on_error must be 'raise', 'skip' or "
                            f"'partial', got {on_error!r}")
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise PlanError("timeout_seconds must be positive")
        if max_matches is not None and max_matches <= 0:
            raise PlanError("max_matches must be positive")
        if max_segments is not None and max_segments <= 0:
            raise PlanError("max_segments must be positive")
        if planning_timeout_seconds is not None \
                and planning_timeout_seconds <= 0:
            raise PlanError("planning_timeout_seconds must be positive")
        if executor is None:
            executor = os.environ.get("TREX_EXECUTOR") or "serial"
        if executor not in ("serial", "thread", "process"):
            raise PlanError(f"executor must be 'serial', 'thread' or "
                            f"'process', got {executor!r}")
        if workers is not None and workers < 1:
            raise PlanError("workers must be >= 1")
        if vectorize is not None and not isinstance(vectorize, bool):
            raise PlanError(f"vectorize must be True, False or None, "
                            f"got {vectorize!r}")
        if prefilter is not None and not isinstance(prefilter, bool):
            raise PlanError(f"prefilter must be True, False or None, "
                            f"got {prefilter!r}")
        self.optimizer = optimizer
        self.sharing = sharing
        #: Wall-clock budget for one execute_query() call, planning
        #: included.  Exceeding it raises
        #: :class:`repro.errors.QueryTimeout` under ``on_error='raise'``
        #: or degrades gracefully otherwise (docs/ROBUSTNESS.md).
        self.timeout_seconds = timeout_seconds
        #: Stop after this many matches across all series; the kept
        #: subset is the positionally-smallest matches, so it is
        #: deterministic across planners.
        self.max_matches = max_matches
        #: Run the static analyzer before planning: reject queries with
        #: lint errors (:class:`repro.errors.QueryLintError`), log
        #: warnings.
        self.lint = lint
        #: EXPLAIN ANALYZE mode: collect per-operator runtime metrics on
        #: the result (``QueryResult.op_metrics`` / ``plan_analyze``).
        self.analyze = analyze
        #: Error policy: ``'raise'`` propagates the first failure
        #: (byte-identical to the pre-policy engine); ``'skip'`` records
        #: a :class:`SeriesError` and drops the failing series' matches;
        #: ``'partial'`` additionally keeps the matches found before the
        #: failure.  See the policy matrix in docs/ROBUSTNESS.md.
        self.on_error = on_error
        #: Query-global budget on materialized/retained segments (a
        #: memory proxy), enforced via :meth:`ExecContext.charge` in the
        #: materializing operators and the result sink.
        self.max_segments = max_segments
        #: Separate budget for cost-based planning only; exhausting it
        #: triggers the rule-based (``pr_left``) planner fallback
        #: instead of failing the query.
        self.planning_timeout_seconds = planning_timeout_seconds
        #: Per-series execution backend: ``'serial'`` (byte-identical to
        #: the historical engine), ``'thread'`` or ``'process'``.  When
        #: the constructor argument is None the ``TREX_EXECUTOR``
        #: environment variable decides (docs/PARALLELISM.md).
        self.executor = executor
        #: Worker-pool size for the parallel backends; None defers to
        #: ``TREX_WORKERS`` or a CPU-count heuristic at dispatch time.
        self.workers = workers
        #: Keyed compile/plan cache (:mod:`repro.core.plancache`):
        #: ``True`` builds an engine-private cache, or pass a shared
        #: :class:`PlanCache`.
        if plan_cache is True:
            plan_cache = PlanCache()
        elif plan_cache is False:
            plan_cache = None
        self.plan_cache: Optional[PlanCache] = plan_cache
        #: Vectorized leaf kernels (:mod:`repro.exec.vector`): ``True``
        #: forces the numpy batch path for supported leaf conditions,
        #: ``False`` forces the scalar loops, ``None`` defers to the
        #: ``TREX_VECTOR`` environment variable at context construction
        #: (docs/VECTORIZATION.md).  Results are byte-identical either
        #: way; the toggle exists for benchmarking and differential
        #: testing.
        self.vectorize = vectorize
        #: Symbolic-index prefilter (:mod:`repro.plan.prefilter`):
        #: ``True`` probes per-series summaries to skip series or narrow
        #: the root search space before the full matcher runs, ``False``
        #: forces the classic full scan, ``None`` defers to the
        #: ``TREX_PREFILTER`` environment variable per query
        #: (docs/PREFILTER.md).  Pruning is lossless: matches and error
        #: records are byte-identical either way.
        self.prefilter = prefilter
        #: Reason string for the most recent build_plan() fallback, or
        #: None when the requested planner was used.
        self.last_planner_fallback: Optional[str] = None

    def _lint_query(self, query: Query) -> None:
        from repro.analysis import analyze
        diags = analyze(query)
        errors = [d for d in diags if d.is_error]
        if errors:
            summary = "; ".join(d.format() for d in errors)
            raise QueryLintError(
                f"query rejected by static analysis: {summary}",
                diagnostics=diags)
        for diag in diags:
            _logger.warning("query lint: %s", diag.format())

    # -- planning -------------------------------------------------------------

    #: Rule strategy used when the cost-based planner fails (a safe,
    #: data-independent left-deep probe plan).
    FALLBACK_STRATEGY = "pr_left"

    def build_plan(self, query: Query, logical: LogicalNode,
                   series_list: List[Series],
                   deadline: Optional[float] = None,
                   planning_deadline: Optional[float] = None) \
            -> PhysicalOperator:
        """Build the physical plan used for every series of the query.

        Rule-based strategies are data-independent; the cost-based planner
        samples statistics from ``series_list`` (Appendix D.3) under the
        given time budgets.  If the cost-based planner raises anything
        but a :class:`QueryTimeout` (a planner bug, an injected fault, a
        blown planning budget), the engine falls back to the
        :attr:`FALLBACK_STRATEGY` rule plan and records the reason in
        :attr:`last_planner_fallback`.
        """
        from repro.optimizer.rulebased import RuleBasedPlanner, RuleStrategy

        self.last_planner_fallback = None
        sharing = self.sharing
        optimizer = self.optimizer
        leaf_sharing = "off" if sharing == "off" else "on"
        if isinstance(optimizer, RuleStrategy) or (
                isinstance(optimizer, str)
                and optimizer not in ("cost", "batch")):
            strategy = optimizer if isinstance(optimizer, RuleStrategy) \
                else _resolve_rule_strategy(optimizer)
            return RuleBasedPlanner(strategy, sharing=leaf_sharing).plan(
                query, logical)
        from repro.optimizer.planner import CostBasedPlanner
        planner = CostBasedPlanner(
            allow_probes=(optimizer != "batch"), sharing=sharing)
        try:
            return planner.plan(query, logical, series_list,
                                deadline=deadline,
                                planning_deadline=planning_deadline)
        except QueryTimeout:
            # The whole query is out of time; a fallback plan could not
            # execute anyway.  Handled by the engine's error policy.
            raise
        except Exception as exc:
            reason = (f"cost-based planner failed "
                      f"({type(exc).__name__}: {exc}); "
                      f"fell back to rule strategy "
                      f"{self.FALLBACK_STRATEGY!r}")
            _logger.warning("planner fallback: %s", reason)
            strategy = _resolve_rule_strategy(self.FALLBACK_STRATEGY)
            try:
                plan = RuleBasedPlanner(strategy, sharing=leaf_sharing).plan(
                    query, logical)
            except Exception:
                # Both planners reject the query: surface the original
                # cost-planner error, which names the root cause.
                raise exc
            self.last_planner_fallback = reason
            return plan

    def plan_for_series(self, query: Query, logical: LogicalNode,
                        series: Series) -> PhysicalOperator:
        """Build a plan from a single series (convenience for tests)."""
        return self.build_plan(query, logical, [series])

    # -- execution -----------------------------------------------------------

    def execute(self, table: Table, query_text: str,
                params: Optional[Dict[str, object]] = None) -> QueryResult:
        """Parse, plan and execute a query over a table."""
        if self.plan_cache is not None:
            query = self.plan_cache.compile(query_text, params)
        else:
            query = compile_query(query_text, params)
        return self.execute_query(query, table)

    def _plan_with_cache(self, query: Query, logical: LogicalNode,
                         non_empty: List[Series],
                         deadline: Optional[float],
                         planning_deadline: Optional[float],
                         prefilter: bool) \
            -> Tuple[PhysicalOperator, Optional[str],
                     Optional[PrefilterPlan]]:
        """build_plan() through the plan cache; returns (plan, status,
        prefilter plan).

        ``status`` is ``'hit'``/``'miss'`` when a cache is configured,
        None otherwise.  Cached entries carry the planner-fallback
        reason recorded at build time, so a cached fallback plan is
        still reported as one on every reuse — and, for prefilter-on
        engines, the extracted :class:`PrefilterPlan` (extraction is
        deterministic per bound query, so caching it is free and keeps
        repeat queries from re-walking the condition ASTs).
        """
        cache = self.plan_cache
        if cache is None:
            plan = self.build_plan(query, logical, non_empty,
                                   deadline=deadline,
                                   planning_deadline=planning_deadline)
            pfplan = extract_prefilter(query, logical) if prefilter else None
            return plan, None, pfplan
        key = cache.plan_key(query, self.optimizer, self.sharing, non_empty,
                             prefilter=prefilter)
        entry = cache.get_plan(key)
        if entry is not None:
            plan, fallback, pfplan = entry
            self.last_planner_fallback = fallback
            return plan, "hit", pfplan
        plan = self.build_plan(query, logical, non_empty,
                               deadline=deadline,
                               planning_deadline=planning_deadline)
        pfplan = extract_prefilter(query, logical) if prefilter else None
        cache.put_plan(key, (plan, self.last_planner_fallback, pfplan))
        return plan, "miss", pfplan

    def execute_query(self, query: Query,
                      table: Union[Table, List[Series]]) -> QueryResult:
        """Plan and execute a bound query."""
        if self.lint:
            self._lint_query(query)
        if isinstance(table, Table):
            series_list = table.partition(query.partition_by, query.order_by)
        else:
            series_list = list(table)
        logical = build_logical_plan(query)

        result = QueryResult()
        non_empty = [series for series in series_list if len(series)]
        if not non_empty:
            result.per_series = [SeriesMatches(series.key, [])
                                 for series in series_list]
            return result
        # The deadline starts *before* planning so pathological planning
        # (and the DP/sampling inside it) cannot blow the query budget.
        t0 = time.perf_counter()
        deadline = None
        if self.timeout_seconds is not None:
            deadline = t0 + self.timeout_seconds
        planning_deadline = None
        if self.planning_timeout_seconds is not None:
            planning_deadline = t0 + self.planning_timeout_seconds
        prefilter_on = self.prefilter if self.prefilter is not None \
            else _prefilter_default()
        try:
            plan, cache_status, pfplan = self._plan_with_cache(
                query, logical, non_empty, deadline, planning_deadline,
                prefilter_on)
        except QueryTimeout as exc:
            if self.on_error == "raise":
                raise
            result.planning_seconds = time.perf_counter() - t0
            result.interrupted = True
            result.degradation = f"timeout: {exc}"
            result.per_series = [SeriesMatches(series.key, [])
                                 for series in series_list]
            return result
        t1 = time.perf_counter()
        result.planning_seconds = t1 - t0
        result.plan_explain = plan.explain()
        result.planner_fallback = self.last_planner_fallback
        if self.plan_cache is not None:
            counters: Dict[str, object] = dict(self.plan_cache.counters())
            counters["plan"] = cache_status
            result.plan_cache = counters
        # Analyze mode evaluates an instrumented shallow copy; the
        # original plan is untouched, so disabled mode pays nothing.
        exec_plan = instrument_plan(plan) if self.analyze else plan
        pf_totals: Counter = Counter()
        try:
            if self.executor == "serial":
                total_metrics = self._execute_serial(
                    result, plan, exec_plan, query, series_list, deadline,
                    pfplan, pf_totals)
            else:
                total_metrics = self._execute_parallel(
                    result, plan, exec_plan, query, series_list, deadline,
                    pfplan, pf_totals)
        except KeyboardInterrupt:
            # SIGINT mid-query: under 'raise' the interrupt propagates
            # untouched; under 'skip'/'partial' the engine settles — the
            # series completed so far keep their matches (the 'partial'
            # guarantee: a sorted, duplicate-free subset of a full run)
            # and the result is marked interrupted (docs/ROBUSTNESS.md).
            if self.on_error == "raise":
                raise
            total_metrics = None
            done = len(result.per_series)
            for series in series_list[done:]:
                result.per_series.append(SeriesMatches(series.key, []))
            result.interrupted = True
            result.degradation = "interrupted: KeyboardInterrupt (SIGINT)"
        result.execution_wall_seconds = time.perf_counter() - t1
        if prefilter_on:
            result.prefilter = prefilter_report(pfplan, pf_totals)
        if total_metrics is not None:
            total_metrics.finalize(plan)
            result.op_metrics = total_metrics
            result.plan_analyze = total_metrics.annotate(plan)
            result.analyze_tree = total_metrics.tree_dict(plan)
            if result.prefilter is not None:
                pf = result.prefilter
                result.plan_analyze = (
                    f":: prefilter: {pf['plan']} "
                    f"(skipped={pf['series_skipped']} "
                    f"narrowed={pf['series_narrowed']} "
                    f"full={pf['series_full']} "
                    f"of {pf['series_examined']}; "
                    f"coverage={pf['coverage']:.2f})\n"
                    + result.plan_analyze)
            if result.plan_cache is not None:
                result.plan_analyze = (
                    f":: plan cache: {result.plan_cache['plan']} "
                    f"(plan_hits={result.plan_cache['plan_hits']} "
                    f"plan_misses={result.plan_cache['plan_misses']})\n"
                    + result.plan_analyze)
            if result.planner_fallback:
                result.plan_analyze = (
                    f"!! planner fallback: {result.planner_fallback}\n"
                    + result.plan_analyze)
        return result

    def _execute_serial(self, result: QueryResult, plan: PhysicalOperator,
                        exec_plan: PhysicalOperator, query: Query,
                        series_list: List[Series],
                        deadline: Optional[float],
                        pfplan: Optional[PrefilterPlan],
                        pf_totals: Counter) -> Optional[RunMetrics]:
        """The historical strictly-ordered per-series loop (unchanged)."""
        total_metrics = RunMetrics() if self.analyze else None
        exec_seconds = 0.0
        remaining = self.max_matches
        seg_remaining = self.max_segments
        stopped = False
        for series in series_list:
            if stopped or len(series) == 0 \
                    or (remaining is not None and remaining <= 0):
                result.per_series.append(SeriesMatches(series.key, []))
                continue
            t2 = time.perf_counter()
            matches, ctx, error, pf_counters = self._execute_series(
                exec_plan, series, query, deadline=deadline,
                limit=remaining, segment_budget=seg_remaining,
                prefilter=pfplan)
            if pf_counters:
                pf_totals.update(pf_counters)
            seconds = time.perf_counter() - t2
            exec_seconds += seconds
            if ctx is not None and ctx.metrics is not None:
                ctx.metrics.finalize(plan)
            entry = SeriesMatches(
                series.key, matches,
                stats=ctx.stats if ctx is not None else Counter(),
                seconds=seconds,
                metrics=ctx.metrics if ctx is not None else None)
            if error is not None:
                kind = error_kind(error)
                keep_partial = self.on_error == "partial"
                if not keep_partial:
                    entry.matches = []
                entry.error = SeriesError(
                    series.key, type(error).__name__,
                    " ".join(str(error).split()), kind,
                    partial=keep_partial and bool(entry.matches))
                if kind in ("timeout", "budget"):
                    # A blown budget is global: stop, return what we have.
                    result.interrupted = True
                    result.degradation = f"{kind}: {entry.error.message}"
                    stopped = True
            if remaining is not None:
                remaining -= len(entry.matches)
            if seg_remaining is not None and ctx is not None:
                seg_remaining = max(0, seg_remaining - ctx.segments_charged)
                if seg_remaining == 0 and not stopped \
                        and self.on_error != "raise":
                    result.interrupted = True
                    result.degradation = (
                        f"budget: max_segments={self.max_segments} "
                        f"consumed")
                    stopped = True
            result.per_series.append(entry)
            if total_metrics is not None and ctx is not None \
                    and ctx.metrics is not None:
                total_metrics.merge(ctx.metrics)
        result.execution_seconds = exec_seconds
        return total_metrics

    def _execute_parallel(self, result: QueryResult, plan: PhysicalOperator,
                          exec_plan: PhysicalOperator, query: Query,
                          series_list: List[Series],
                          deadline: Optional[float],
                          pfplan: Optional[PrefilterPlan],
                          pf_totals: Counter) -> Optional[RunMetrics]:
        """Fan the per-series loop over a worker pool, then settle.

        Workers run every non-empty series concurrently with the *full*
        budgets; the merge below walks series in their deterministic
        order, maintains the exact serial budget remainders, and accepts
        each worker outcome only when a serial run would have produced
        the same one.  The single series where a budget boundary falls
        is replayed serially with the exact remaining budget, so the
        merged ``QueryResult`` is identical to the serial engine's
        (docs/PARALLELISM.md).
        """
        from repro.core import parallel as par

        ledger = None
        if self.max_segments is not None and self.executor == "thread":
            # Cross-worker early-abort for globally blown budgets; the
            # process backend settles purely at merge time.
            ledger = par.SegmentLedger(self.max_segments)
        tasks = [
            par.SeriesTask(index=index, series=series,
                           limit=self.max_matches,
                           segment_budget=self.max_segments,
                           deadline=deadline, analyze=self.analyze,
                           vectorize=self.vectorize, prefilter=pfplan)
            for index, series in enumerate(series_list) if len(series)
        ]
        outcomes = par.dispatch(
            self.executor, self.workers, plan, exec_plan, query, tasks,
            ledger=ledger, log_unexpected=self.on_error != "raise")

        total_metrics = RunMetrics() if self.analyze else None
        exec_seconds = 0.0
        remaining = self.max_matches
        seg_remaining = self.max_segments
        stopped = False
        for index, series in enumerate(series_list):
            if stopped or len(series) == 0 \
                    or (remaining is not None and remaining <= 0):
                result.per_series.append(SeriesMatches(series.key, []))
                continue
            outcome = outcomes[index]
            if seg_remaining is not None and self._needs_replay(
                    outcome, seg_remaining):
                outcome = self._replay_series(
                    exec_plan, plan, series, query, deadline,
                    limit=remaining, segment_budget=seg_remaining,
                    index=index, prefilter=pfplan)
            if outcome.prefilter:
                pf_totals.update(outcome.prefilter)
            if outcome.error is not None and self.on_error == "raise":
                # First failure in series order propagates, as in the
                # serial loop (later workers' results are discarded).
                raise outcome.error
            exec_seconds += outcome.seconds
            # Global max_matches settles deterministically here: each
            # worker kept its positionally-smallest max_matches bounds
            # (sorted), so the serial engine's per-series remainder is
            # a plain prefix of the worker's kept list.
            entry = SeriesMatches(
                series.key,
                truncate_matches(outcome.matches, remaining),
                stats=outcome.stats,
                seconds=outcome.seconds,
                metrics=outcome.metrics)
            if outcome.error is not None:
                kind = error_kind(outcome.error)
                keep_partial = self.on_error == "partial"
                if not keep_partial:
                    entry.matches = []
                entry.error = SeriesError(
                    series.key, type(outcome.error).__name__,
                    " ".join(str(outcome.error).split()), kind,
                    partial=keep_partial and bool(entry.matches))
                if kind in ("timeout", "budget"):
                    result.interrupted = True
                    result.degradation = f"{kind}: {entry.error.message}"
                    stopped = True
            if remaining is not None:
                remaining -= len(entry.matches)
            if seg_remaining is not None:
                seg_remaining = max(
                    0, seg_remaining - outcome.segments_charged)
                if seg_remaining == 0 and not stopped \
                        and self.on_error != "raise":
                    result.interrupted = True
                    result.degradation = (
                        f"budget: max_segments={self.max_segments} "
                        f"consumed")
                    stopped = True
            result.per_series.append(entry)
            if total_metrics is not None and outcome.metrics is not None:
                total_metrics.merge(outcome.metrics)
        result.execution_seconds = exec_seconds
        return total_metrics

    def _needs_replay(self, outcome, seg_remaining: int) -> bool:
        """Does the serial budget remainder invalidate this outcome?

        A worker ran with the *full* ``max_segments`` budget (or was cut
        short by the shared ledger).  Its outcome stands only if a
        serial run arriving at this series with ``seg_remaining`` left
        would have behaved identically: it charged no more than the
        remainder, and any budget failure happened against exactly the
        budget the serial run would have used.
        """
        if outcome.segments_charged > seg_remaining:
            return True
        if outcome.error is None or error_kind(outcome.error) != "budget":
            return False
        # Budget failure against the full budget is only authoritative
        # when the serial remainder *is* the full budget and the raise
        # came from the series' own accounting, not the shared ledger.
        return outcome.ledger_exhausted or seg_remaining != self.max_segments

    def _replay_series(self, exec_plan: PhysicalOperator,
                       plan: PhysicalOperator, series: Series, query: Query,
                       deadline: Optional[float], limit: Optional[int],
                       segment_budget: Optional[int], index: int,
                       prefilter: Optional[PrefilterPlan] = None):
        """Re-run one series serially with the exact remaining budgets.

        Budget exhaustion is deterministic (it depends only on the
        series, the plan and the numeric remainder), so this replay
        reproduces the serial engine's boundary behavior bit-for-bit —
        including the partial harvest and the precise raise point.
        Exceptions propagate per the engine's ``on_error`` policy, as
        they would in the serial loop.
        """
        from repro.core import parallel as par

        t2 = time.perf_counter()
        matches, ctx, error, pf_counters = self._execute_series(
            exec_plan, series, query, deadline=deadline,
            limit=limit, segment_budget=segment_budget,
            prefilter=prefilter)
        seconds = time.perf_counter() - t2
        if ctx is not None and ctx.metrics is not None:
            ctx.metrics.finalize(plan)
        return par.SeriesOutcome(
            index=index, matches=matches,
            stats=ctx.stats if ctx is not None else Counter(),
            seconds=seconds,
            metrics=ctx.metrics if ctx is not None else None,
            segments_charged=ctx.segments_charged if ctx is not None else 0,
            error=error, prefilter=pf_counters)

    def explain_match(self, query: Query, series: Series, start: int,
                      end: int):
        """All variable-binding environments proving ``[start, end]``
        matches (a MEASURES-style introspection aid).

        Uses the exhaustive reference matcher, so intended for inspecting
        individual matches, not bulk extraction.
        """
        from repro.core.bruteforce import BruteForceMatcher
        return BruteForceMatcher(query).bindings_for_segment(series, start,
                                                             end)

    def _run_plan(self, plan: PhysicalOperator, series: Series,
                  query: Query, deadline: Optional[float] = None,
                  limit: Optional[int] = None,
                  collect_metrics: bool = False,
                  segment_budget: Optional[int] = None) \
            -> Tuple[List[Tuple[int, int]], ExecContext]:
        """Evaluate ``plan`` over one series; exceptions propagate."""
        ctx = ExecContext(series, query.registry, deadline=deadline,
                          metrics=RunMetrics() if collect_metrics else None,
                          segment_budget=segment_budget,
                          vectorize=self.vectorize)
        sink = _MatchSink(limit)
        sink.consume(plan.eval(ctx, SearchSpace.full(len(series)), {}), ctx)
        return sink.finish(), ctx

    def _execute_series(self, plan: PhysicalOperator, series: Series,
                        query: Query, deadline: Optional[float],
                        limit: Optional[int],
                        segment_budget: Optional[int],
                        prefilter: Optional[PrefilterPlan] = None) \
            -> Tuple[List[Tuple[int, int]], Optional[ExecContext],
                     Optional[BaseException], Optional[Counter]]:
        """Run the plan over one series under the engine's error policy.

        Under ``'raise'`` exceptions propagate untouched; otherwise the
        failure is captured and the sink's partial harvest (sorted,
        duplicate-free — a subset of the clean run's matches) is
        returned alongside it.  The final element is the prefilter's
        decision counters, ``None`` when the prefilter was off/inert.
        """
        guarded = self.on_error != "raise"
        ctx: Optional[ExecContext] = None
        error: Optional[BaseException] = None
        pf_counters: Optional[Counter] = None
        sink = _MatchSink(limit)
        try:
            if _faults.ENABLED:
                _faults.fire("data.series")
            ctx = ExecContext(series, query.registry, deadline=deadline,
                              metrics=RunMetrics() if self.analyze else None,
                              segment_budget=segment_budget,
                              vectorize=self.vectorize)
            pf_counters = evaluate_with_prefilter(plan, prefilter, ctx,
                                                  series, sink)
        except Exception as exc:  # noqa: BLE001 — policy-gated isolation
            if not guarded:
                raise
            error = exc
            if not isinstance(exc, TRexError):
                _logger.exception("series %s failed with a non-library "
                                  "error (isolated by on_error=%r)",
                                  series.key, self.on_error)
        return sink.finish(), ctx, error, pf_counters


def find_matches(table: Table, query_text: str,
                 params: Optional[Dict[str, object]] = None,
                 optimizer: PlannerSpec = "cost",
                 sharing: str = "auto") -> QueryResult:
    """One-call convenience API: run a pattern query over a table."""
    engine = TRexEngine(optimizer=optimizer, sharing=sharing)
    return engine.execute(table, query_text, params)
