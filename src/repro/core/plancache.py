"""Keyed compile/plan cache for repeated (templated) queries.

Planning a T-ReX query is not free: the cost-based optimizer samples
statistics and runs a dynamic program over the pattern (Section 5).
Query *templates* make the same shape arrive over and over with
different parameter bindings, and dashboards re-issue identical queries
against slowly-changing data — so :class:`PlanCache` memoizes both
stages:

* ``compile`` — ``(query_text, params, registry)`` → bound
  :class:`~repro.lang.query.Query`;
* ``plan`` — ``(bound query fingerprint, planner, sharing, prefilter
  toggle, data-stats fingerprint)`` → ``(physical plan,
  planner_fallback reason, extracted prefilter plan)``.

Keying rules (the guard rails):

* The *bound* query fingerprint includes every substituted parameter
  literal, so two bindings of one template can never share a plan — the
  same cross-binding trap as the probe-cache ``refs_key`` bug.
* The data-stats fingerprint digests each series' key, length and
  per-column content summary, so the cost-based planner re-plans when
  the data it would sample has changed.
* The planner label and sharing mode are part of the key: a ``'cost'``
  plan is never served to a ``'batch'`` or rule-based engine.

Hit/miss counters are surfaced per query in
``QueryResult.metrics_dict()["plan_cache"]`` and in the EXPLAIN ANALYZE
banner (docs/OBSERVABILITY.md).  The cache is thread-safe and bounded
(LRU eviction).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

from repro.aggregates.registry import DEFAULT_REGISTRY, AggregateRegistry
from repro.exec.base import PhysicalOperator
from repro.lang.query import Query, compile_query
from repro.timeseries.series import Series

#: A cached plan entry: the physical plan, the planner-fallback reason
#: recorded when it was built (re-reported on every hit so a cached
#: fallback plan stays visible as one), and the extracted prefilter
#: plan (:class:`repro.plan.prefilter.PrefilterPlan`, or ``None`` for
#: entries built with the prefilter disabled).
PlanEntry = Tuple[PhysicalOperator, Optional[str], Optional[object]]


def params_fingerprint(params: Optional[dict]) -> tuple:
    """Order-independent, hashable digest of a parameter binding."""
    if not params:
        return ()
    return tuple(sorted((name, repr(value)) for name, value in
                        params.items()))


def series_fingerprint(series: Series) -> tuple:
    """Cheap content digest of one series for the plan-cache key.

    Captures the partition key, length and, per column, the endpoints
    plus a sum (numeric) or the endpoint reprs (object columns).  Any
    change the cost model's sampled statistics could observe shifts at
    least one of these with overwhelming probability; false sharing
    would require crafting two different series with identical digests.
    """
    parts: list = [series.key, len(series), series.time_unit]
    for name in series.column_names:
        arr = series.column(name)
        if len(arr) == 0:
            parts.append((name, 0))
        elif arr.dtype.kind == "f":
            parts.append((name, float(arr[0]), float(arr[-1]),
                          float(arr.sum())))
        else:
            parts.append((name, repr(arr[0]), repr(arr[-1])))
    return tuple(parts)


def stats_fingerprint(series_list: Sequence[Series]) -> tuple:
    """Digest of everything the planner's stats sampling can see."""
    return tuple(series_fingerprint(series) for series in series_list)


class PlanCache:
    """Bounded, thread-safe compile + plan cache.

    Share one instance across engines to pool their cache::

        cache = PlanCache()
        engine_a = TRexEngine(plan_cache=cache)
        engine_b = TRexEngine(executor="thread", plan_cache=cache)

    or pass ``plan_cache=True`` for an engine-private cache.
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._compiled: OrderedDict = OrderedDict()
        self._plans: OrderedDict = OrderedDict()
        self.compile_hits = 0
        self.compile_misses = 0
        self.plan_hits = 0
        self.plan_misses = 0

    # -- compile stage ------------------------------------------------------

    def compile(self, text: str, params: Optional[dict] = None,
                registry: AggregateRegistry = DEFAULT_REGISTRY) -> Query:
        """Memoized :func:`~repro.lang.query.compile_query`."""
        key = (text, params_fingerprint(params), id(registry))
        with self._lock:
            query = self._compiled.get(key)
            if query is not None:
                self.compile_hits += 1
                self._compiled.move_to_end(key)
                return query
            self.compile_misses += 1
        query = compile_query(text, params, registry)
        with self._lock:
            self._compiled[key] = query
            self._compiled.move_to_end(key)
            while len(self._compiled) > self.max_entries:
                self._compiled.popitem(last=False)
        return query

    # -- plan stage ---------------------------------------------------------

    @staticmethod
    def plan_key(query: Query, optimizer, sharing: str,
                 series_list: Sequence[Series],
                 prefilter: bool = False) -> tuple:
        """Cache key for one (bound query, planner, data) combination.

        ``prefilter`` is part of the key because entries built with the
        prefilter enabled additionally carry the extracted
        :class:`~repro.plan.prefilter.PrefilterPlan`; the *physical
        plan* inside the entry is identical either way (planning never
        depends on the toggle — docs/PREFILTER.md).
        """
        label = getattr(optimizer, "label", None) or str(optimizer)
        return (query.describe(), id(query.registry), label, sharing,
                bool(prefilter), stats_fingerprint(series_list))

    def get_plan(self, key: tuple) -> Optional[PlanEntry]:
        with self._lock:
            entry = self._plans.get(key)
            if entry is not None:
                self.plan_hits += 1
                self._plans.move_to_end(key)
            else:
                self.plan_misses += 1
            return entry

    def put_plan(self, key: tuple, entry: PlanEntry) -> None:
        with self._lock:
            self._plans[key] = entry
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_entries:
                self._plans.popitem(last=False)

    # -- reporting ----------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {
            "compile_hits": self.compile_hits,
            "compile_misses": self.compile_misses,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
        }

    def clear(self) -> None:
        with self._lock:
            self._compiled.clear()
            self._plans.clear()
