"""Query results: matches per series plus run diagnostics.

Run statistics are attributed per series (:attr:`SeriesMatches.stats`);
:attr:`QueryResult.stats` folds them into the flat aggregate
:class:`~collections.Counter` older callers expect.  When the engine runs
with ``analyze=True`` the result additionally carries per-operator runtime
metrics (:attr:`QueryResult.op_metrics`), the annotated plan tree
(:attr:`QueryResult.plan_analyze`) and a JSON form
(:meth:`QueryResult.metrics_dict`) — see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exec.metrics import RunMetrics


@dataclass
class SeriesError:
    """A structured record of one series' failure (error-policy modes).

    ``kind`` is the coarse classification of
    :func:`repro.errors.error_kind` — ``'timeout'`` and ``'budget'`` are
    degradations that interrupt the whole query, everything else is an
    isolated per-series fault.  ``partial`` marks that the matches kept
    alongside this error are an incomplete (but sorted, duplicate-free)
    subset of what a clean run would have produced.
    """

    key: tuple
    error: str      # exception class name, e.g. 'QueryTimeout'
    message: str
    kind: str       # see repro.errors.error_kind
    partial: bool = False

    def to_dict(self) -> dict:
        return {
            "key": list(self.key),
            "error": self.error,
            "message": self.message,
            "kind": self.kind,
            "partial": self.partial,
        }

    def format(self) -> str:
        suffix = " (partial matches kept)" if self.partial else ""
        label = "/".join(str(part) for part in self.key) or "-"
        return f"series {label}: {self.error}: {self.message}{suffix}"


@dataclass
class SeriesMatches:
    """All matches found in one series, with per-series diagnostics."""

    key: tuple
    matches: List[Tuple[int, int]]
    #: Run-statistics counters for this series alone.
    stats: Counter = field(default_factory=Counter)
    #: Wall time spent executing the plan over this series.
    seconds: float = 0.0
    #: Per-operator metrics for this series (analyze mode only).
    metrics: Optional[RunMetrics] = None
    #: Structured failure record when this series did not complete
    #: cleanly under an ``on_error='skip'|'partial'`` policy.
    error: Optional[SeriesError] = None

    def __len__(self) -> int:
        return len(self.matches)


@dataclass
class QueryResult:
    """The outcome of executing one query over a table."""

    per_series: List[SeriesMatches] = field(default_factory=list)
    plan_explain: str = ""
    planning_seconds: float = 0.0
    #: Sum of per-series execution times (worker wall-times).  Under a
    #: concurrent executor this exceeds the elapsed wall time — compare
    #: with :attr:`execution_wall_seconds` (docs/PARALLELISM.md).
    execution_seconds: float = 0.0
    #: Elapsed wall time of the execution phase (dispatch to merge).
    #: Equals :attr:`execution_seconds` up to accounting noise when the
    #: engine runs serially; smaller under parallel executors.
    execution_wall_seconds: float = 0.0
    #: Plan/compile-cache counters for this engine's cache, plus this
    #: query's own ``"plan"`` hit/miss status (``plan_cache=`` engines
    #: only).
    plan_cache: Optional[Dict[str, object]] = None
    #: Aggregate per-operator metrics across series (analyze mode only).
    op_metrics: Optional[RunMetrics] = None
    #: Plan tree annotated with runtime metrics (analyze mode only).
    plan_analyze: str = ""
    #: JSON-ready plan tree with per-node metrics (analyze mode only).
    analyze_tree: Optional[dict] = None
    #: The query stopped early (timeout or resource budget) and the
    #: matches are the graceful-degradation subset; ``degradation``
    #: carries the human-readable reason.
    interrupted: bool = False
    degradation: Optional[str] = None
    #: Set when the cost-based planner failed and the engine fell back
    #: to a rule-based strategy (docs/ROBUSTNESS.md).
    planner_fallback: Optional[str] = None
    #: Prefilter/pruning report (docs/PREFILTER.md): the extracted-plan
    #: summary plus series/block/range counters.  ``None`` whenever the
    #: engine ran with the prefilter disabled, so disabled-mode results
    #: are byte-identical to the pre-prefilter engine's.
    prefilter: Optional[Dict[str, object]] = None

    @property
    def errors(self) -> List[SeriesError]:
        """Structured per-series failures (``on_error='skip'|'partial'``)."""
        return [entry.error for entry in self.per_series
                if entry.error is not None]

    @property
    def stats(self) -> Counter:
        """Aggregate run statistics folded across all series.

        Kept for backward compatibility with the original flat counter;
        per-series attribution lives on :attr:`SeriesMatches.stats`.
        """
        merged: Counter = Counter()
        for entry in self.per_series:
            merged.update(entry.stats)
        return merged

    @property
    def total_matches(self) -> int:
        return sum(len(entry) for entry in self.per_series)

    @property
    def total_seconds(self) -> float:
        return self.planning_seconds + self.execution_seconds

    def matches_by_key(self) -> Dict[tuple, List[Tuple[int, int]]]:
        return {entry.key: list(entry.matches) for entry in self.per_series}

    def all_matches(self) -> List[Tuple[tuple, int, int]]:
        """Flattened ``(series_key, start, end)`` triples."""
        out = []
        for entry in self.per_series:
            for start, end in entry.matches:
                out.append((entry.key, start, end))
        return out

    def metrics_dict(self) -> dict:
        """Machine-readable run metrics (the EXPLAIN ANALYZE JSON form).

        Always includes the per-series breakdown; the ``plan`` and
        ``operators`` sections are present only when the engine ran with
        ``analyze=True``.
        """
        data: dict = {
            "total_matches": self.total_matches,
            "planning_seconds": self.planning_seconds,
            "execution_seconds": self.execution_seconds,
            "execution_wall_seconds": self.execution_wall_seconds,
            "interrupted": self.interrupted,
            "stats": dict(self.stats),
            "per_series": [
                {
                    "key": list(entry.key),
                    "matches": len(entry),
                    "seconds": entry.seconds,
                    "stats": dict(entry.stats),
                    **({"error": entry.error.to_dict()}
                       if entry.error is not None else {}),
                }
                for entry in self.per_series
            ],
        }
        if self.degradation is not None:
            data["degradation"] = self.degradation
        if self.plan_cache is not None:
            data["plan_cache"] = dict(self.plan_cache)
        if self.planner_fallback is not None:
            data["planner_fallback"] = self.planner_fallback
        if self.prefilter is not None:
            data["prefilter"] = dict(self.prefilter)
        errors = self.errors
        if errors:
            data["errors"] = [error.to_dict() for error in errors]
        if self.analyze_tree is not None:
            data["plan"] = self.analyze_tree
        if self.op_metrics is not None:
            data["operators"] = self.op_metrics.to_list()
        return data

    def summary(self) -> str:
        text = (f"{self.total_matches} matches over "
                f"{len(self.per_series)} series in "
                f"{self.total_seconds:.3f}s "
                f"(planning {self.planning_seconds:.3f}s)")
        errors = self.errors
        if errors:
            text += f" [{len(errors)} series error(s)]"
        if self.interrupted:
            text += f" [interrupted: {self.degradation}]"
        return text
