"""Query results: matches per series plus run diagnostics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class SeriesMatches:
    """All matches found in one series."""

    key: tuple
    matches: List[Tuple[int, int]]

    def __len__(self) -> int:
        return len(self.matches)


@dataclass
class QueryResult:
    """The outcome of executing one query over a table."""

    per_series: List[SeriesMatches] = field(default_factory=list)
    plan_explain: str = ""
    planning_seconds: float = 0.0
    execution_seconds: float = 0.0
    stats: Counter = field(default_factory=Counter)

    @property
    def total_matches(self) -> int:
        return sum(len(entry) for entry in self.per_series)

    @property
    def total_seconds(self) -> float:
        return self.planning_seconds + self.execution_seconds

    def matches_by_key(self) -> Dict[tuple, List[Tuple[int, int]]]:
        return {entry.key: list(entry.matches) for entry in self.per_series}

    def all_matches(self) -> List[Tuple[tuple, int, int]]:
        """Flattened ``(series_key, start, end)`` triples."""
        out = []
        for entry in self.per_series:
            for start, end in entry.matches:
                out.append((entry.key, start, end))
        return out

    def summary(self) -> str:
        return (f"{self.total_matches} matches over "
                f"{len(self.per_series)} series in "
                f"{self.total_seconds:.3f}s "
                f"(planning {self.planning_seconds:.3f}s)")
