"""Query results: matches per series plus run diagnostics.

Run statistics are attributed per series (:attr:`SeriesMatches.stats`);
:attr:`QueryResult.stats` folds them into the flat aggregate
:class:`~collections.Counter` older callers expect.  When the engine runs
with ``analyze=True`` the result additionally carries per-operator runtime
metrics (:attr:`QueryResult.op_metrics`), the annotated plan tree
(:attr:`QueryResult.plan_analyze`) and a JSON form
(:meth:`QueryResult.metrics_dict`) — see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exec.metrics import RunMetrics


@dataclass
class SeriesMatches:
    """All matches found in one series, with per-series diagnostics."""

    key: tuple
    matches: List[Tuple[int, int]]
    #: Run-statistics counters for this series alone.
    stats: Counter = field(default_factory=Counter)
    #: Wall time spent executing the plan over this series.
    seconds: float = 0.0
    #: Per-operator metrics for this series (analyze mode only).
    metrics: Optional[RunMetrics] = None

    def __len__(self) -> int:
        return len(self.matches)


@dataclass
class QueryResult:
    """The outcome of executing one query over a table."""

    per_series: List[SeriesMatches] = field(default_factory=list)
    plan_explain: str = ""
    planning_seconds: float = 0.0
    execution_seconds: float = 0.0
    #: Aggregate per-operator metrics across series (analyze mode only).
    op_metrics: Optional[RunMetrics] = None
    #: Plan tree annotated with runtime metrics (analyze mode only).
    plan_analyze: str = ""
    #: JSON-ready plan tree with per-node metrics (analyze mode only).
    analyze_tree: Optional[dict] = None

    @property
    def stats(self) -> Counter:
        """Aggregate run statistics folded across all series.

        Kept for backward compatibility with the original flat counter;
        per-series attribution lives on :attr:`SeriesMatches.stats`.
        """
        merged: Counter = Counter()
        for entry in self.per_series:
            merged.update(entry.stats)
        return merged

    @property
    def total_matches(self) -> int:
        return sum(len(entry) for entry in self.per_series)

    @property
    def total_seconds(self) -> float:
        return self.planning_seconds + self.execution_seconds

    def matches_by_key(self) -> Dict[tuple, List[Tuple[int, int]]]:
        return {entry.key: list(entry.matches) for entry in self.per_series}

    def all_matches(self) -> List[Tuple[tuple, int, int]]:
        """Flattened ``(series_key, start, end)`` triples."""
        out = []
        for entry in self.per_series:
            for start, end in entry.matches:
                out.append((entry.key, start, end))
        return out

    def metrics_dict(self) -> dict:
        """Machine-readable run metrics (the EXPLAIN ANALYZE JSON form).

        Always includes the per-series breakdown; the ``plan`` and
        ``operators`` sections are present only when the engine ran with
        ``analyze=True``.
        """
        data: dict = {
            "total_matches": self.total_matches,
            "planning_seconds": self.planning_seconds,
            "execution_seconds": self.execution_seconds,
            "stats": dict(self.stats),
            "per_series": [
                {
                    "key": list(entry.key),
                    "matches": len(entry),
                    "seconds": entry.seconds,
                    "stats": dict(entry.stats),
                }
                for entry in self.per_series
            ],
        }
        if self.analyze_tree is not None:
            data["plan"] = self.analyze_tree
        if self.op_metrics is not None:
            data["operators"] = self.op_metrics.to_list()
        return data

    def summary(self) -> str:
        return (f"{self.total_matches} matches over "
                f"{len(self.per_series)} series in "
                f"{self.total_seconds:.3f}s "
                f"(planning {self.planning_seconds:.3f}s)")
