"""Match collection: incremental, deduplicating, deterministically bounded.

Shared by the serial engine loop and the parallel per-series workers
(:mod:`repro.core.parallel`), so both paths keep byte-identical
truncation semantics.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Tuple

from repro.exec.base import ExecContext


class MatchSink:
    """Incremental, deduplicating collector of match bounds.

    Partial state lives on the instance, so when a fault or budget stops
    the stream mid-way, :meth:`finish` still yields a sorted,
    duplicate-free subset of what the uninterrupted run would produce —
    the invariant the ``'partial'`` error policy guarantees.

    With a ``limit`` the kept subset is the positionally-smallest
    matches (bounded max-heap): plan emission order differs across
    optimizers, so keeping the first N emitted would silently return
    different subsets for the same query.
    """

    def __init__(self, limit: Optional[int]):
        self.limit = limit
        self._seen: set = set()
        self._matches: List[Tuple[int, int]] = []
        self._heap: List[Tuple[int, int]] = []  # max-heap via negated bounds

    def consume(self, segments: Iterable, ctx: ExecContext) -> None:
        limit = self.limit
        charge = ctx.segment_budget is not None
        if limit is None:
            for segment in segments:
                bounds = segment.bounds
                if bounds not in self._seen:
                    if charge:
                        ctx.charge()
                    self._seen.add(bounds)
                    self._matches.append(bounds)
            return
        for segment in segments:
            bounds = segment.bounds
            if bounds in self._seen:
                continue
            if charge:
                ctx.charge()
            self._seen.add(bounds)
            item = (-bounds[0], -bounds[1])
            if len(self._heap) < limit:
                heapq.heappush(self._heap, item)
            elif item > self._heap[0]:
                heapq.heapreplace(self._heap, item)

    def finish(self) -> List[Tuple[int, int]]:
        if self.limit is None:
            return sorted(self._matches)
        return sorted((-s, -e) for s, e in self._heap)


def truncate_matches(matches: List[Tuple[int, int]],
                     limit: Optional[int]) -> List[Tuple[int, int]]:
    """The positionally-smallest ``limit`` matches of a sorted list.

    A :class:`MatchSink` with limit ``K`` keeps exactly
    ``sorted(unique)[:K]``, so re-truncating a kept list to a smaller
    limit is a plain prefix — the property the parallel merge step uses
    to settle a global ``max_matches`` budget deterministically.
    """
    if limit is None:
        return matches
    return matches[:max(0, limit)]
