"""Brute-force reference matcher — executable ground-truth semantics.

This module defines what a T-ReX pattern *means* by exhaustive enumeration:
a segment ``[i, j]`` matches the query iff some decomposition of it over the
logical plan satisfies every variable's window and condition.  All
executors (the T-ReX tree executor, batch mode, AFA, the naive trees) are
differentially tested against this matcher.

It is deliberately simple and unoptimized; use only on small inputs.

Cross-variable references are handled by deferring a condition whose
referenced segments are not yet bound during enumeration and checking it
once the enclosing node's environment is complete (this also covers cyclic
references between sibling sub-patterns).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError, PlanError
from repro.lang import expr as E
from repro.lang.query import Query
from repro.plan.logical import (LAnd, LConcat, LKleene, LNot, LOr, LVar,
                                LogicalNode, build_logical_plan)
from repro.timeseries.series import Series

Env = Dict[str, Tuple[int, int]]
#: A deferred condition: (variable name, its segment, condition expr).
Deferred = Tuple[str, Tuple[int, int], object]
Binding = Tuple[Env, Tuple[Deferred, ...]]


def _check_condition(series: Series, name: str, segment: Tuple[int, int],
                     condition, refs: Env, registry) -> bool:
    ctx = E.EvalContext(series, segment[0], segment[1], variable=name,
                        refs=refs, registry=registry)
    return E.evaluate_condition(condition, ctx)


class BruteForceMatcher:
    """Exhaustive matcher over one logical plan."""

    def __init__(self, query: Query, plan: Optional[LogicalNode] = None):
        self.query = query
        self.plan = plan if plan is not None else build_logical_plan(query)
        self.registry = query.registry

    # -- public API ---------------------------------------------------------

    def match_series(self, series: Series) -> Set[Tuple[int, int]]:
        """All matched ``(start, end)`` segments of one series."""
        n = len(series)
        results: Set[Tuple[int, int]] = set()
        for start in range(n):
            for end in range(start, n):
                if self.matches_segment(series, start, end):
                    results.add((start, end))
        return results

    def matches_segment(self, series: Series, start: int, end: int) -> bool:
        """Whether segment ``[start, end]`` matches the whole pattern."""
        for env, deferred in self._match(self.plan, series, start, end, {}):
            if self._resolve_deferred(series, deferred, env):
                return True
        return False

    def bindings_for_segment(self, series: Series, start: int,
                             end: int) -> List[Env]:
        """All satisfying variable-binding environments for one segment."""
        out: List[Env] = []
        seen = set()
        for env, deferred in self._match(self.plan, series, start, end, {}):
            if not self._resolve_deferred(series, deferred, env):
                continue
            key = tuple(sorted(env.items()))
            if key not in seen:
                seen.add(key)
                out.append(dict(env))
        return out

    # -- enumeration ---------------------------------------------------------

    def _resolve_deferred(self, series: Series,
                          deferred: Sequence[Deferred], env: Env) -> bool:
        for name, segment, condition in deferred:
            needed = E.external_references(condition, name)
            missing = needed - set(env)
            if missing:
                raise ExecutionError(
                    f"condition of {name!r} references {sorted(missing)} "
                    f"which are never bound")
            if not _check_condition(series, name, segment, condition, env,
                                    self.registry):
                return False
        return True

    def _match(self, node: LogicalNode, series: Series, start: int, end: int,
               refs: Env) -> Iterator[Binding]:
        if start < 0 or end >= len(series) or start > end:
            return
        if not node.window.accepts(series, start, end):
            return
        if isinstance(node, LVar):
            yield from self._match_var(node, series, start, end, refs)
        elif isinstance(node, LAnd):
            yield from self._match_parts_same_segment(
                node.parts, series, start, end, refs, conjunctive=True)
        elif isinstance(node, LOr):
            for part in node.parts:
                yield from self._match(part, series, start, end, refs)
        elif isinstance(node, LConcat):
            yield from self._match_concat(list(node.parts), list(node.gaps),
                                          series, start, end, refs)
        elif isinstance(node, LKleene):
            yield from self._match_kleene(node, series, start, end, refs)
        elif isinstance(node, LNot):
            yield from self._match_not(node, series, start, end, refs)
        else:
            raise PlanError(f"unknown logical node {node!r}")

    def _match_var(self, node: LVar, series: Series, start: int, end: int,
                   refs: Env) -> Iterator[Binding]:
        var = node.var
        if not var.is_segment and start != end:
            return
        segment = (start, end)
        if var.condition is None:
            yield ({var.name: segment}, ())
            return
        needed = set(var.external_refs)
        if needed <= set(refs):
            if _check_condition(series, var.name, segment, var.condition,
                                refs, self.registry):
                yield ({var.name: segment}, ())
            return
        # Defer: some referenced variable is bound elsewhere in the tree.
        yield ({var.name: segment}, ((var.name, segment, var.condition),))

    def _match_parts_same_segment(self, parts, series, start, end, refs,
                                  conjunctive: bool) -> Iterator[Binding]:
        """All parts must match the same segment (And)."""
        ordered = _dependency_order(parts, set(refs))

        def recurse(index: int, env: Env,
                    deferred: Tuple[Deferred, ...]) -> Iterator[Binding]:
            if index == len(ordered):
                yield env, deferred
                return
            part = ordered[index]
            merged = dict(refs)
            merged.update(env)
            for part_env, part_deferred in self._match(part, series, start,
                                                       end, merged):
                new_env = dict(env)
                new_env.update(part_env)
                yield from recurse(index + 1, new_env,
                                   deferred + part_deferred)

        yield from recurse(0, {}, ())

    def _match_concat(self, parts, gaps, series, start, end,
                      refs) -> Iterator[Binding]:
        """Enumerate boundary placements, then match parts in dependency
        order within the fixed spans."""
        for spans in _enumerate_spans(parts, gaps, start, end):
            order = _dependency_order_indexed(parts, set(refs))

            def recurse(k: int, env: Env,
                        deferred: Tuple[Deferred, ...]) -> Iterator[Binding]:
                if k == len(order):
                    yield env, deferred
                    return
                idx = order[k]
                span_start, span_end = spans[idx]
                merged = dict(refs)
                merged.update(env)
                for part_env, part_deferred in self._match(
                        parts[idx], series, span_start, span_end, merged):
                    new_env = dict(env)
                    new_env.update(part_env)
                    yield from recurse(k + 1, new_env,
                                       deferred + part_deferred)

            yield from recurse(0, {}, ())

    def _match_kleene(self, node: LKleene, series: Series, start: int,
                      end: int, refs: Env) -> Iterator[Binding]:
        if node.min_reps < 1:
            raise PlanError(
                "Kleene with a zero minimum over segments is not directly "
                "executable; rewrite the query (wild segment variable) "
                "— see DESIGN.md")
        max_reps = node.max_reps

        def recurse(rep_start: int, reps_done: int, env: Env,
                    deferred: Tuple[Deferred, ...]) -> Iterator[Binding]:
            remaining = end - rep_start
            if remaining < 0:
                return
            # Try finishing with one repetition covering the rest.
            if reps_done + 1 >= node.min_reps and (
                    max_reps is None or reps_done + 1 <= max_reps):
                merged = dict(refs)
                merged.update(env)
                for part_env, part_deferred in self._match(
                        node.child, series, rep_start, end, merged):
                    new_env = dict(env)
                    new_env.update(part_env)
                    yield new_env, deferred + part_deferred
            # Or place an intermediate repetition and continue.
            if max_reps is not None and reps_done + 1 >= max_reps:
                return
            for rep_end in range(rep_start, end):
                if node.gap == 0 and rep_end == rep_start:
                    # Zero-progress repetition under shared boundary: skip
                    # to guarantee termination (DESIGN.md §3).
                    continue
                next_start = rep_end + node.gap
                if next_start > end:
                    break
                merged = dict(refs)
                merged.update(env)
                for part_env, part_deferred in self._match(
                        node.child, series, rep_start, rep_end, merged):
                    new_env = dict(env)
                    new_env.update(part_env)
                    yield from recurse(next_start, reps_done + 1, new_env,
                                       deferred + part_deferred)

        yield from recurse(start, 0, {}, ())

    def _match_not(self, node: LNot, series: Series, start: int, end: int,
                   refs: Env) -> Iterator[Binding]:
        for env, deferred in self._match(node.child, series, start, end,
                                         refs):
            merged = dict(refs)
            merged.update(env)
            if self._resolve_deferred(series, deferred, merged):
                return  # the child matches; the negation does not
        yield ({}, ())


def _enumerate_spans(parts, gaps, start: int,
                     end: int) -> Iterator[List[Tuple[int, int]]]:
    """All placements of parts over ``[start, end]`` honouring join gaps."""

    def recurse(index: int, span_start: int,
                acc: List[Tuple[int, int]]) -> Iterator[List[Tuple[int, int]]]:
        if index == len(parts) - 1:
            if span_start <= end:
                yield acc + [(span_start, end)]
            return
        for span_end in range(span_start, end + 1):
            next_start = span_end + gaps[index]
            if next_start > end:
                break
            # Shared boundary with zero progress is fine for padding parts;
            # the enumeration still terminates because index advances.
            yield from recurse(index + 1, next_start,
                               acc + [(span_start, span_end)])

    yield from recurse(0, start, [])


def _dependency_order(parts, available: Set[str]) -> List[LogicalNode]:
    """Order parts so refs are bound before use when possible."""
    remaining = list(parts)
    ordered: List[LogicalNode] = []
    bound = set(available)
    while remaining:
        progressed = False
        for part in list(remaining):
            if set(part.requires) <= bound:
                ordered.append(part)
                remaining.remove(part)
                bound |= set(part.provides)
                progressed = True
        if not progressed:
            # Cyclic references: fall back to the given order; deferred
            # checks will resolve them once the full environment is known.
            ordered.extend(remaining)
            break
    return ordered


def _dependency_order_indexed(parts, available: Set[str]) -> List[int]:
    order = _dependency_order(parts, available)
    index_of = {id(part): i for i, part in enumerate(parts)}
    return [index_of[id(part)] for part in order]
