"""Parallel per-series execution backends (docs/PARALLELISM.md).

T-ReX queries fan out over independent series partitions: the engine
plans once, then evaluates the same physical plan over every series.
This module supplies the worker side of that fan-out for
``TRexEngine(executor='thread'|'process')``:

* :func:`run_series` — the guarded single-series evaluation every
  backend (and the serial engine, via the engine's own wrapper) shares;
* :func:`dispatch` — submit one task per non-empty series to a cached
  worker pool and collect :class:`SeriesOutcome` records in series
  order;
* :class:`SegmentLedger` — a thread-safe, cross-worker ``max_segments``
  ledger so a globally blown budget interrupts in-flight series early
  (the deterministic settlement happens later, in the engine's merge
  step, which replays the boundary series with the exact remaining
  budget);
* process-backend plumbing: payload pickling (with an automatic
  fall-back to the thread backend when a plan or registry is not
  picklable), deadline re-basing across processes (``perf_counter``
  epochs differ), and re-arming ``TREX_FAULTS`` inside workers.

Workers never raise: every failure is captured on the outcome and
settled by the engine's merge step so the ``on_error`` policy applies at
the same, deterministic point a serial run would apply it.
"""

from __future__ import annotations

import atexit
import logging
import os
import pickle
import threading
import time
from collections import Counter
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.sink import MatchSink
from repro.errors import ResourceBudgetExceeded, TRexError, WorkerCrashed
from repro.exec.base import ExecContext, PhysicalOperator
from repro.exec.metrics import RunMetrics, instrument_plan
from repro.lang.query import Query
from repro.plan.prefilter import PrefilterPlan, evaluate_with_prefilter
from repro.testing import faults as _faults
from repro.timeseries.series import Series

_logger = logging.getLogger(__name__)

#: Executor backends accepted by ``TRexEngine(executor=...)``.
BACKENDS = ("serial", "thread", "process")


def default_workers() -> int:
    """Worker count when neither ``workers=`` nor ``TREX_WORKERS`` is set."""
    return min(8, os.cpu_count() or 1)


def resolve_workers(workers: Optional[int]) -> int:
    if workers is not None:
        return workers
    env = os.environ.get("TREX_WORKERS")
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(f"TREX_WORKERS must be an integer, got {env!r}")
        if value < 1:
            raise ValueError(f"TREX_WORKERS must be >= 1, got {value}")
        return value
    return default_workers()


class LedgerExhausted(ResourceBudgetExceeded):
    """The cross-worker segment ledger ran dry.

    Distinct from a plain :class:`ResourceBudgetExceeded` so the
    engine's merge step can tell "this series alone blew its budget"
    from "the *global* ledger was exhausted by concurrent workers" —
    the latter must always be re-settled deterministically.
    """


class SegmentLedger:
    """Thread-safe global ``max_segments`` ledger shared by workers.

    Workers charge optimistically and concurrently, so the ledger's
    raise point is *not* deterministic — it exists to interrupt
    in-flight series as soon as the whole query has provably exceeded
    its budget.  Determinism is restored by the engine's merge step,
    which walks series in order, maintains the exact serial remainder,
    and replays the boundary series with it (docs/PARALLELISM.md).
    """

    def __init__(self, cap: int):
        self.cap = cap
        self._total = 0
        self._lock = threading.Lock()

    @property
    def total(self) -> int:
        return self._total

    def charge(self, n: int = 1) -> None:
        with self._lock:
            self._total += n
            exhausted = self._total > self.cap
        if exhausted:
            raise LedgerExhausted(
                f"global max_segments={self.cap} budget exhausted across "
                f"concurrent workers ({self._total} segments charged)")


@dataclass
class SeriesOutcome:
    """Everything one worker run produced for one series."""

    index: int
    matches: List[Tuple[int, int]] = field(default_factory=list)
    stats: Counter = field(default_factory=Counter)
    seconds: float = 0.0
    metrics: Optional[RunMetrics] = None
    segments_charged: int = 0
    error: Optional[BaseException] = None
    #: The shared ledger (not this series' own budget) stopped the run.
    ledger_exhausted: bool = False
    #: Prefilter decision counters for this series (``None`` when the
    #: prefilter was off or inert — docs/PREFILTER.md).
    prefilter: Optional[Counter] = None


@dataclass
class SeriesTask:
    """One unit of parallel work: evaluate the plan over one series."""

    index: int
    series: Series
    limit: Optional[int]
    segment_budget: Optional[int]
    deadline: Optional[float]
    analyze: bool
    #: Engine-level vector-kernel toggle, forwarded to the worker's
    #: ExecContext so serial and parallel runs take the same leaf path.
    vectorize: Optional[bool] = None
    #: Extracted prefilter plan (plain picklable dataclasses), so every
    #: backend takes the identical skip/narrow/full decision the serial
    #: engine would take for this series.
    prefilter: Optional[PrefilterPlan] = None


def run_series(plan: PhysicalOperator, raw_plan: PhysicalOperator,
               query: Query, task: SeriesTask,
               ledger: Optional[SegmentLedger] = None,
               log_unexpected: bool = True) -> SeriesOutcome:
    """Evaluate ``plan`` over one series, capturing any failure.

    ``plan`` may be the instrumented copy (analyze mode); ``raw_plan``
    is the original tree metrics are finalized against, mirroring the
    serial engine.  The ``data.series`` fault point fires here, inside
    the worker, so chaos tests exercise the same injection sites under
    every backend.
    """
    sink = MatchSink(task.limit)
    ctx: Optional[ExecContext] = None
    error: Optional[BaseException] = None
    pf_counters: Optional[Counter] = None
    t0 = time.perf_counter()
    try:
        if _faults.ENABLED:
            _faults.fire("data.series")
        ctx = ExecContext(task.series, query.registry,
                          deadline=task.deadline,
                          metrics=RunMetrics() if task.analyze else None,
                          segment_budget=task.segment_budget,
                          ledger=ledger, vectorize=task.vectorize)
        pf_counters = evaluate_with_prefilter(
            plan, task.prefilter, ctx, task.series, sink)
    except Exception as exc:  # noqa: BLE001 — settled by the merge step
        error = exc
        if log_unexpected and not isinstance(exc, TRexError):
            _logger.exception("series %s failed with a non-library error "
                              "(captured by the parallel executor)",
                              task.series.key)
    seconds = time.perf_counter() - t0
    metrics = ctx.metrics if ctx is not None else None
    if metrics is not None:
        metrics.finalize(raw_plan)
    return SeriesOutcome(
        index=task.index,
        matches=sink.finish(),
        stats=ctx.stats if ctx is not None else Counter(),
        seconds=seconds,
        metrics=metrics,
        segments_charged=ctx.segments_charged if ctx is not None else 0,
        error=error,
        ledger_exhausted=isinstance(error, LedgerExhausted),
        prefilter=pf_counters)


# ---------------------------------------------------------------------------
# Process backend
# ---------------------------------------------------------------------------

#: The TREX_FAULTS value this worker process last installed; ``None``
#: until the first task, so fork-inherited programmatic faults survive
#: when no environment faults are requested.
_worker_faults_env: Optional[str] = None


def _ensure_worker_faults(env_value: str) -> None:
    """Re-arm ``TREX_FAULTS`` inside a pool worker when it changed.

    Spawned workers re-install from the value shipped with the task;
    forked workers inherit the parent's armed registry and only reset
    it when the environment actually changes between tasks.
    """
    global _worker_faults_env
    if env_value == _worker_faults_env:
        return
    if _worker_faults_env is not None or env_value:
        _faults.disarm_all()
        if env_value:
            _faults.install_from_env(env_value)
    _worker_faults_env = env_value


def _pickle_safe_error(error: Optional[BaseException]) \
        -> Optional[BaseException]:
    """Ensure an exception survives the trip back to the parent."""
    if error is None:
        return None
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:  # noqa: BLE001 — any pickling failure
        return WorkerCrashed(
            f"worker error could not be serialized: "
            f"{type(error).__name__}: {error}")


def _process_worker(payload: tuple) -> SeriesOutcome:
    """Module-level process-pool entry point (must be picklable)."""
    (plan, query, task, deadline_remaining, faults_env) = payload
    _ensure_worker_faults(faults_env)
    if deadline_remaining is not None:
        # perf_counter epochs are per-process: re-base the deadline on
        # the remaining budget measured at dispatch time.
        task.deadline = time.perf_counter() + deadline_remaining
    exec_plan = instrument_plan(plan) if task.analyze else plan
    outcome = run_series(exec_plan, plan, query, task)
    outcome.error = _pickle_safe_error(outcome.error)
    return outcome


# ---------------------------------------------------------------------------
# Pool management
# ---------------------------------------------------------------------------

_pool_lock = threading.Lock()
_thread_pool: Optional[ThreadPoolExecutor] = None
_thread_pool_key: Optional[tuple] = None
_process_pool: Optional[ProcessPoolExecutor] = None
_process_pool_key: Optional[tuple] = None


def _get_thread_pool(workers: int) -> ThreadPoolExecutor:
    global _thread_pool, _thread_pool_key
    with _pool_lock:
        key = (workers,)
        if _thread_pool is None or _thread_pool_key != key:
            if _thread_pool is not None:
                _thread_pool.shutdown(wait=False)
            _thread_pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="trex-worker")
            _thread_pool_key = key
        return _thread_pool


def _get_process_pool(workers: int) -> ProcessPoolExecutor:
    """One cached process pool, keyed by (workers, TREX_FAULTS).

    Keying by the fault environment means chaos runs that change
    ``TREX_FAULTS`` between queries get a fresh pool whose workers pick
    the new faults up; unchanged environments reuse warm workers.
    """
    global _process_pool, _process_pool_key
    with _pool_lock:
        key = (workers, os.environ.get("TREX_FAULTS", ""))
        if _process_pool is None or _process_pool_key != key:
            if _process_pool is not None:
                _process_pool.shutdown(wait=False)
            import multiprocessing
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover — non-posix platforms
                mp_context = multiprocessing.get_context()
            _process_pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=mp_context)
            _process_pool_key = key
        return _process_pool


def _discard_process_pool() -> None:
    global _process_pool, _process_pool_key
    with _pool_lock:
        if _process_pool is not None:
            _process_pool.shutdown(wait=False)
        _process_pool = None
        _process_pool_key = None


def warm_pools(executor: str, workers: Optional[int]) -> None:
    """Pre-create the cached worker pool for ``executor``.

    Long-running callers (the query service) call this once at startup
    so the first request does not pay pool spin-up latency; subsequent
    requests reuse the same cached pool (the pools here are
    module-level and keyed by configuration, so cross-request reuse is
    automatic).  A no-op for the serial backend.
    """
    count = resolve_workers(workers)
    if executor == "thread":
        _get_thread_pool(count)
    elif executor == "process":
        _get_process_pool(count)


#: Observer invoked (with a short description) every time the process
#: backend converts a dead worker into a :class:`WorkerCrashed` outcome.
#: The query service registers one to drive its crash-retry accounting
#: (docs/SERVICE.md); ``None`` disables the hook.
_crash_listener: Optional[Callable[[str], None]] = None


def set_crash_listener(listener: Optional[Callable[[str], None]]) -> None:
    """Install (or with ``None`` remove) the worker-crash observer."""
    global _crash_listener
    _crash_listener = listener


def _notify_crash(description: str) -> None:
    listener = _crash_listener
    if listener is not None:
        try:
            listener(description)
        except Exception:  # noqa: BLE001 — observers must not break runs
            _logger.exception("worker-crash listener failed")


def reset_pools() -> None:
    """Shut down every cached worker pool (tests, fault re-arming).

    Programmatic (non-environment) faults reach forked process workers
    only if they are armed *before* the pool is created; call this
    first to force a fresh pool.
    """
    global _thread_pool, _thread_pool_key
    with _pool_lock:
        if _thread_pool is not None:
            _thread_pool.shutdown(wait=False)
        _thread_pool = None
        _thread_pool_key = None
    _discard_process_pool()


atexit.register(reset_pools)


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

def _plan_is_picklable(plan: PhysicalOperator, query: Query) -> bool:
    try:
        pickle.dumps((plan, query))
        return True
    except Exception:  # noqa: BLE001 — any pickling failure
        return False


def dispatch(backend: str, workers: Optional[int],
             plan: PhysicalOperator, exec_plan: PhysicalOperator,
             query: Query, tasks: Sequence[SeriesTask],
             ledger: Optional[SegmentLedger] = None,
             log_unexpected: bool = True) -> Dict[int, SeriesOutcome]:
    """Run every task on the chosen backend; outcomes keyed by index.

    The process backend falls back to threads for plans or registries
    that cannot be pickled (e.g. ad-hoc aggregate classes defined in a
    test function) — logged, never fatal.  A worker process that dies
    mid-task surfaces as a :class:`~repro.errors.WorkerCrashed` outcome
    for every task it took down, so the ``on_error`` policy still
    applies per series.
    """
    count = resolve_workers(workers)
    if backend == "process" and not _plan_is_picklable(plan, query):
        _logger.warning(
            "plan or query is not picklable; falling back to the thread "
            "backend for this query (docs/PARALLELISM.md)")
        backend = "thread"

    if backend == "thread":
        pool = _get_thread_pool(count)
        futures = [
            (task, pool.submit(run_series, exec_plan, plan, query, task,
                               ledger, log_unexpected))
            for task in tasks
        ]
        return {task.index: future.result() for task, future in futures}

    if backend != "process":
        raise ValueError(f"unknown parallel backend {backend!r}")

    faults_env = os.environ.get("TREX_FAULTS", "")
    pool = _get_process_pool(count)
    now = time.perf_counter()
    futures: List[Tuple[SeriesTask, Future]] = []
    for task in tasks:
        remaining = None
        if task.deadline is not None:
            remaining = max(0.0, task.deadline - now)
        payload = (plan, query, task, remaining, faults_env)
        futures.append((task, pool.submit(_process_worker, payload)))
    outcomes: Dict[int, SeriesOutcome] = {}
    broken = False
    for task, future in futures:
        try:
            outcomes[task.index] = future.result()
        except Exception as exc:  # noqa: BLE001 — pool infrastructure died
            broken = True
            crash = WorkerCrashed(
                f"worker process failed while evaluating series "
                f"{task.series.key!r}: {type(exc).__name__}: {exc}")
            _notify_crash(str(crash))
            outcomes[task.index] = SeriesOutcome(
                index=task.index, error=crash)
    if broken:
        _discard_process_pool()
    return outcomes
