"""Core engine: planning + execution pipeline and reference semantics."""

from repro.core.bruteforce import BruteForceMatcher
from repro.core.engine import TRexEngine, find_matches
from repro.core.result import QueryResult, SeriesMatches

__all__ = ["BruteForceMatcher", "TRexEngine", "find_matches", "QueryResult",
           "SeriesMatches"]
