"""Vectorized leaf kernels behind the ``eval`` contract (ROADMAP item 1).

The scalar leaf hot loop (`exec/seggen.py`) pays a Python-level
``EvalContext`` construction and an interpreted expression walk per
candidate ``(start, end)``.  This module compiles the *supported subset*
of condition expressions into numpy evaluators over whole candidate
batches and enumerates the search-space box/diagonal as arrays, so the
per-candidate cost collapses to a few array ops.

Non-negotiable contract (docs/VECTORIZATION.md): for every eligible
plan/series the vector path produces **byte-identical** results to the
scalar path — matches, ``ctx.stats`` counters, per-op EXPLAIN ANALYZE
counters, and error behavior.  Three mechanisms make that hold:

* **Capability gating** — :func:`compile_condition` returns ``None`` for
  any expression whose vector evaluation could diverge (string literals,
  parameters, non-exact direct aggregates like ``sum``/``avg`` whose
  ``np.sum`` uses pairwise accumulation, aggregates needing series
  context, interval units that fail to convert, ...); the leaf then runs
  the scalar loop.  Per-series ineligibility (missing or non-float64
  condition columns) is caught by :func:`bind`, so data errors surface
  from the scalar path exactly as before.
* **Suspension-exact counters** — consumers such as ``ProbeNot`` pull a
  single segment and abandon the iterator, so counters must be correct
  at *every* generator suspension point, not just batch boundaries.
  Batch evaluation therefore accumulates per-candidate counter deltas
  and flushes their running (cumulative-sum) totals just before each
  yield; see :func:`_eval_batch`.
* **Short-circuit parity** — ``and``/``or`` evaluate both branches over
  the batch but thread a *live mask* so per-candidate aggregate-call
  counters (``index_lookups``/``direct_agg_evals``) are only charged for
  candidates whose scalar evaluation would have reached the call.

Budget contract: the deadline ticks the scalar loop pays per candidate
are amortized as :meth:`ExecContext.tick_batch` — one deadline check per
batch of at most :data:`BATCH_SIZE` candidates.
"""

from __future__ import annotations

import os
import weakref
from typing import (TYPE_CHECKING, Callable, Dict, Iterator, List, Optional,
                    Tuple)

import numpy as np

from repro.lang import expr as E
from repro.testing import faults as _faults
from repro.timeseries.segment import Segment

if TYPE_CHECKING:
    from repro.exec.base import Env, ExecContext, PhysicalOperator
    from repro.lang.query import VarDef
    from repro.plan.search_space import SearchSpace
    from repro.timeseries.series import Series

#: Maximum candidates evaluated (and ticked) per batch.  ``tick_batch``
#: performs one deadline check per batch, so this bounds how far past
#: its deadline a query can run relative to the scalar path's
#: per-candidate ticks (docs/VECTORIZATION.md).
BATCH_SIZE = 4096

#: Aggregates whose *indexed* lookups have exact batch equivalents
#: (``lookup_batch`` reproduces ``lookup`` bit-for-bit; see
#: aggregates/basic.py).  Other indexable aggregates fall back to the
#: scalar loop so a raising lookup surfaces mid-stream exactly as the
#: scalar path would.
_INDEXED_VECTOR_AGGS = frozenset(
    {"count", "sum", "avg", "min", "max", "stddev"})

#: Aggregates with exact *direct* (unshared) batch evaluation.  ``sum``
#: and ``avg`` are excluded here: ``np.sum`` over a slice uses pairwise
#: accumulation, which a batched left-fold cannot reproduce bit-for-bit.
_DIRECT_VECTOR_AGGS = frozenset({"count", "min", "max"})


def default_enabled() -> bool:
    """Process-wide default for the vectorize toggle.

    ``TREX_VECTOR=0`` (or ``off``/``false``/``no``) disables the vector
    path for contexts that don't pin ``vectorize=`` explicitly
    (docs/VECTORIZATION.md).
    """
    raw = os.environ.get("TREX_VECTOR", "1").strip().lower()
    return raw not in ("0", "off", "false", "no")


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------
#
# A compiled node is a closure ``fn(state, live) -> value`` where value
# is a float64/bool numpy array over the batch or a (numpy/python)
# scalar broadcastable to it.  ``live`` marks candidates whose scalar
# evaluation would reach this node (short-circuit parity); only
# aggregate-call sites consume it, everything else passes it through.


class _Unsupported(Exception):
    """Raised during compilation for expressions outside the subset."""


class _CompileCtx:
    """Mutable state threaded through one compilation."""

    __slots__ = ("var_name", "provider_kind", "registry", "columns",
                 "intervals")

    def __init__(self, var_name: str, provider_kind: str, registry) -> None:
        self.var_name = var_name
        self.provider_kind = provider_kind  # 'direct' | 'indexed'
        self.registry = registry
        self.columns: set = set()
        self.intervals: set = set()


class _Program:
    """A compiled condition plus everything bind() must validate."""

    __slots__ = ("fn", "kind", "columns", "intervals")

    def __init__(self, fn: Callable, kind: str, columns: Tuple[str, ...],
                 intervals: Tuple[Tuple[float, str], ...]) -> None:
        self.fn = fn
        self.kind = kind  # 'bool' | 'num'
        self.columns = columns
        self.intervals = intervals


def _truthy(kind: str, value: object) -> object:
    """Vector mirror of :func:`repro.lang.expr.truthy` for the two
    compiled value kinds (bools as-is; numbers nonzero-and-not-NaN)."""
    if kind == "bool":
        return value
    return np.logical_and(value != 0, np.logical_not(np.isnan(value)))


def _numify(kind: str, fn: Callable) -> Callable:
    """Wrap ``fn`` so its value matches scalar ``as_number`` semantics."""
    if kind == "num":
        return fn

    def to_num(st: "_EvalState", live: np.ndarray) -> object:
        value = fn(st, live)
        if isinstance(value, np.ndarray):
            return value.astype(np.float64)
        return np.float64(1.0) if value else np.float64(0.0)

    return to_num


def _vdiv(a: object, b: object) -> object:
    """Division with the scalar path's explicit zero-divisor branch.

    Scalar semantics (lang/expr.py): ``a / b`` unless ``b != 0`` is
    false — then ``inf``/``-inf``/``nan`` by the sign of ``a``.  The
    branch keys on ``b == 0``, so ``b = -0.0`` takes the zero branch
    (never ``-inf`` from IEEE division), and a NaN ``a`` yields NaN
    (``inf * 0``).  Registered in EXACT_FLOAT_SITES: the comparison is
    intentionally bitwise, mirroring the scalar branch predicate.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    zero = b == 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        quotient = np.true_divide(a, b)
        signed = np.where(a > 0, np.inf,
                          np.where(a < 0, -np.inf, np.nan))
    return np.where(zero, signed, quotient)


_VECTOR_CMP = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "=": np.equal,
    "==": np.equal,
    "!=": np.not_equal,
    "<>": np.not_equal,
}

_VECTOR_ARITH = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
}


def _compile(node: E.Expr, cx: _CompileCtx) -> Tuple[str, Callable]:
    """Compile one expression node; raises :class:`_Unsupported`."""
    if isinstance(node, E.Literal):
        value = node.value
        if isinstance(value, bool):
            return "bool", lambda st, live, v=value: v
        if isinstance(value, (int, float)):
            constant = float(value)
            return "num", lambda st, live, v=constant: v
        raise _Unsupported("non-numeric literal")
    if isinstance(node, E.Interval):
        key = (node.value, node.unit)
        cx.intervals.add(key)
        return "num", lambda st, live, k=key: st.intervals[k]
    if isinstance(node, E.ColumnRef):
        cx.columns.add(node.column)
        if node.variable is None or node.variable == cx.var_name:
            # Standalone reference denotes the segment's last value
            # (MATCH_RECOGNIZE "final" semantics, lang/expr.py).
            return "num", (lambda st, live, c=node.column:
                           st.col(c)[st.ends])
        return "num", (lambda st, live, v=node.variable, c=node.column:
                       st.ref_value(v, c, "last"))
    if isinstance(node, E.PointAccess):
        ref = node.arg
        cx.columns.add(ref.column)
        use_start = node.which == "first"
        if ref.variable is None or ref.variable == cx.var_name:
            def point(st: "_EvalState", live: np.ndarray,
                      c: str = ref.column, first: bool = use_start) -> object:
                return st.col(c)[st.starts if first else st.ends]
            return "num", point
        which = "first" if use_start else "last"
        return "num", (lambda st, live, v=ref.variable, c=ref.column,
                       w=which: st.ref_value(v, c, w))
    if isinstance(node, E.AggCall):
        return "num", _compile_agg(node, cx)
    if isinstance(node, E.Unary):
        kind, fn = _compile(node.operand, cx)
        if node.op == "-":
            numeric = _numify(kind, fn)
            return "num", lambda st, live: np.negative(numeric(st, live))
        if node.op == "not":
            return "bool", (lambda st, live:
                            np.logical_not(_truthy(kind, fn(st, live))))
        raise _Unsupported(f"unary {node.op!r}")
    if isinstance(node, E.Binary):
        return _compile_binary(node, cx)
    if isinstance(node, E.Between):
        vk, vf = _compile(node.operand, cx)
        lk, lf = _compile(node.low, cx)
        hk, hf = _compile(node.high, cx)

        def between(st: "_EvalState", live: np.ndarray) -> object:
            value = vf(st, live)
            low = lf(st, live)
            high = hf(st, live)
            return np.logical_and(np.less_equal(low, value),
                                  np.less_equal(value, high))
        return "bool", between
    # WindowCall, Param, and anything not modeled: scalar fallback.  The
    # scalar path raises for WindowCall/Param at evaluation time, and
    # the counter state at that raise must stay scalar-exact.
    raise _Unsupported(type(node).__name__)


def _compile_binary(node: E.Binary, cx: _CompileCtx) -> Tuple[str, Callable]:
    if node.op == "and":
        lk, lf = _compile(node.left, cx)
        rk, rf = _compile(node.right, cx)

        def and_fn(st: "_EvalState", live: np.ndarray) -> object:
            left = _truthy(lk, lf(st, live))
            right = _truthy(rk, rf(st, np.logical_and(live, left)))
            return np.logical_and(left, right)
        return "bool", and_fn
    if node.op == "or":
        lk, lf = _compile(node.left, cx)
        rk, rf = _compile(node.right, cx)

        def or_fn(st: "_EvalState", live: np.ndarray) -> object:
            left = _truthy(lk, lf(st, live))
            right = _truthy(
                rk, rf(st, np.logical_and(live, np.logical_not(left))))
            return np.logical_or(left, right)
        return "bool", or_fn
    if node.op in _VECTOR_CMP:
        op = _VECTOR_CMP[node.op]
        lk, lf = _compile(node.left, cx)
        rk, rf = _compile(node.right, cx)
        return "bool", lambda st, live: op(lf(st, live), rf(st, live))
    if node.op in _VECTOR_ARITH:
        op = _VECTOR_ARITH[node.op]
        lf = _numify(*_compile(node.left, cx))
        rf = _numify(*_compile(node.right, cx))
        return "num", lambda st, live: op(lf(st, live), rf(st, live))
    if node.op == "/":
        lf = _numify(*_compile(node.left, cx))
        rf = _numify(*_compile(node.right, cx))
        return "num", lambda st, live: _vdiv(lf(st, live), rf(st, live))
    raise _Unsupported(f"binary {node.op!r}")


# trex: no-tick(walks one condition's call arguments at compile time)
def _compile_agg(node: E.AggCall, cx: _CompileCtx) -> Callable:
    try:
        agg = cx.registry.get(node.name)
    except Exception as exc:
        raise _Unsupported(str(exc)) from None
    if getattr(agg, "needs_series_context", False):
        raise _Unsupported("aggregate needs series context")
    for ref in node.columns:
        # Cross-segment calls (external refs) always evaluate directly
        # in the scalar path; keep them there.
        if ref.variable is not None and ref.variable != cx.var_name:
            raise _Unsupported("cross-segment aggregate")
        cx.columns.add(ref.column)
    extras: List[float] = []
    for extra_node in node.extra:
        if not isinstance(extra_node, E.Literal) \
                or isinstance(extra_node.value, str) \
                or not isinstance(extra_node.value, (bool, int, float)):
            raise _Unsupported("non-literal aggregate extra")
        extras.append(E.as_number(extra_node.value))
    extra = tuple(extras)
    if cx.provider_kind == "indexed" and agg.supports_index:
        if agg.name not in _INDEXED_VECTOR_AGGS:
            raise _Unsupported("no exact batch lookup")
        return (lambda st, live, a=agg, call=node, e=extra:
                st.indexed_lookup(a, call, e, live))
    # Direct evaluation (SegGenFilter, or an indexed leaf whose
    # aggregate does not support indexing).
    if agg.name not in _DIRECT_VECTOR_AGGS or len(node.columns) != 1:
        raise _Unsupported("no exact batch direct evaluation")
    column = node.columns[0].column
    return (lambda st, live, name=agg.name, c=column:
            st.direct_agg(name, c, live))


def compile_condition(var: "VarDef", provider_kind: str,
                      registry) -> Optional[_Program]:
    """Compile a variable's condition; ``None`` when outside the subset."""
    cx = _CompileCtx(var.name, provider_kind, registry)
    condition = var.condition
    if condition is None:
        kind: str = "bool"
        fn: Callable = lambda st, live: True  # noqa: E731
    else:
        try:
            kind, fn = _compile(condition, cx)
        except _Unsupported:
            return None
    return _Program(fn, kind, tuple(sorted(cx.columns)),
                    tuple(sorted(cx.intervals)))


# ---------------------------------------------------------------------------
# Per-operator program cache
# ---------------------------------------------------------------------------

#: op -> (registry, program-or-None).  Keyed weakly by operator identity
#: so cached plans keep their compiled programs but nothing is ever
#: stored *on* an operator (plans must stay picklable for the process
#: executor).  Instrumented clones get their own (cheap) entries.
_PROGRAM_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _leaf_program(op: "PhysicalOperator", provider_kind: str,
                  registry) -> Optional[_Program]:
    entry = _PROGRAM_CACHE.get(op)
    if entry is not None and entry[0] is registry:
        return entry[1]
    program = compile_condition(op.var, provider_kind, registry)
    _PROGRAM_CACHE[op] = (registry, program)
    return program


def compiles_statically(var: "VarDef", provider_kind: str,
                        registry) -> bool:
    """Whether the condition is vector-compilable on this provider path.

    Used by the cost model; depends only on the query and registry —
    never on the runtime toggle or the series — so plan choice is
    identical whether or not vectorization is enabled at run time.
    """
    return compile_condition(var, provider_kind, registry) is not None


# ---------------------------------------------------------------------------
# Bind: per-series eligibility
# ---------------------------------------------------------------------------


# trex: no-tick(bounded by the program's columns and window specs)
def _bind(program: _Program, op: "PhysicalOperator",
          series: "Series") -> Optional[Dict[Tuple[float, str], float]]:
    """Validate per-series assumptions; interval values or ``None``.

    Checks that every condition column (and, for point variables, every
    time-window column the diagonal enumerator indexes) exists as a
    float64 array, that window bounds convert to the series' time unit,
    and resolves interval literals.  Any failure falls back to the
    scalar loop, which raises (or not) exactly as it always did.
    """
    from repro.timeseries.timeunits import to_base_units
    for name in program.columns:
        if not series.has_column(name) \
                or series.column(name).dtype != np.float64:
            return None
    for spec in op.window.specs:
        if spec.kind != "time":
            continue
        column = spec.column or series.order_column
        if not series.has_column(column) \
                or series.column(column).dtype != np.float64:
            return None
    # Window bounds are computed inside the enumerators; a unit that
    # fails to convert must surface from the scalar path instead.
    try:
        for spec in op.window.specs:
            spec.bounds_on(series)
        intervals = {key: to_base_units(key[0], key[1], series.time_unit)
                     for key in program.intervals}
    except Exception:
        return None
    return intervals


# ---------------------------------------------------------------------------
# Batch evaluation state
# ---------------------------------------------------------------------------


class _EvalState:
    """Everything one batch evaluation needs, plus counter deltas."""

    __slots__ = ("ctx", "series", "starts", "ends", "refs", "intervals",
                 "pads", "deltas", "pending_builds")

    def __init__(self, ctx: "ExecContext", starts: np.ndarray,
                 ends: np.ndarray, refs: "Env",
                 intervals: Dict[Tuple[float, str], float],
                 pads: Dict[str, np.ndarray]) -> None:
        self.ctx = ctx
        self.series = ctx.series
        self.starts = starts
        self.ends = ends
        self.refs = refs
        self.intervals = intervals
        #: Per-eval-call cache of columns padded for reduceat (shared
        #: across this leaf eval's batches).
        self.pads = pads
        #: counter name -> int64 per-candidate increment array.
        self.deltas: Dict[str, np.ndarray] = {}
        #: index key -> union of live masks across this batch's call
        #: sites, for indexes built *during* this batch (see
        #: :meth:`settle_builds`).
        self.pending_builds: Dict[tuple, np.ndarray] = {}

    def col(self, name: str) -> np.ndarray:
        return self.series.float_column(name)

    def ref_value(self, variable: str, column: str, which: str) -> object:
        """Constant value of an external reference (same for the batch)."""
        start, end = self.refs[variable]
        return self.series.value_at(column, start if which == "first"
                                    else end)

    def add_delta(self, name: str, counts: np.ndarray) -> None:
        """Accumulate per-candidate increments (bool mask or int64)."""
        existing = self.deltas.get(name)
        if existing is None:
            self.deltas[name] = counts.astype(np.int64)
        else:
            existing += counts

    def indexed_lookup(self, agg, call: E.AggCall, extra: Tuple[float, ...],
                       live: np.ndarray) -> np.ndarray:
        """Batched index lookups with scalar-exact counter attribution."""
        size = len(self.starts)
        if not bool(np.any(live)):
            # No candidate's scalar evaluation reaches this call: no
            # lookups, and — crucially — no index build.
            return np.zeros(size, dtype=np.float64)
        self.add_delta("index_lookups", live)
        ctx = self.ctx
        key = (agg.name, tuple(c.column for c in call.columns), extra)
        builds_before = ctx.stats["index_builds"]
        index = ctx.aggregate_index(agg, call, extra)
        live = np.asarray(live, dtype=bool)
        if ctx.stats["index_builds"] != builds_before:
            # aggregate_index charged the build eagerly, but the scalar
            # path builds at the first *candidate* that reaches any call
            # site for this key — which a later site may reach earlier
            # in the batch.  Revert the eager charge and defer the
            # per-candidate attribution to settle_builds().
            ctx.stats["index_builds"] = builds_before
            self.pending_builds[key] = live.copy()
        elif key in self.pending_builds:
            np.logical_or(self.pending_builds[key], live,
                          out=self.pending_builds[key])
        return index.lookup_batch(self.starts, self.ends)

    # trex: no-tick(at most one entry per distinct index key)
    def settle_builds(self) -> None:
        """Charge each deferred index build to the first candidate whose
        scalar evaluation would have reached any call site for its key."""
        for union in self.pending_builds.values():
            one_hot = np.zeros(len(self.starts), dtype=np.int64)
            one_hot[int(np.argmax(union))] = 1
            self.add_delta("index_builds", one_hot)

    def direct_agg(self, name: str, column: str,
                   live: np.ndarray) -> np.ndarray:
        """Exact direct evaluation for count/min/max over the batch."""
        size = len(self.starts)
        if not bool(np.any(live)):
            return np.zeros(size, dtype=np.float64)
        self.add_delta("direct_agg_evals", live)
        if name == "count":
            return (self.ends - self.starts + 1).astype(np.float64)
        padded = self.pads.get(column)
        if padded is None:
            values = self.col(column)
            # One trailing pad element keeps ``ends + 1 == n`` a valid
            # reduceat index; the odd (inter-pair) reductions that could
            # read it are discarded below.
            padded = np.concatenate((values, values[-1:]))
            self.pads[column] = padded
        bounds = np.empty(2 * size, dtype=np.int64)
        bounds[0::2] = self.starts
        bounds[1::2] = self.ends + 1
        reducer = np.minimum if name == "min" else np.maximum
        return reducer.reduceat(padded, bounds)[0::2]


# ---------------------------------------------------------------------------
# Candidate enumeration (scalar iteration order, batched)
# ---------------------------------------------------------------------------


def _runs_to_batches(ctx: "ExecContext", drives: List[int], los: List[int],
                     his: List[int],
                     by_end: bool) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Expand buffered (drive, lo..hi) runs into candidate batches."""
    drive_arr = np.asarray(drives, dtype=np.int64)
    lo_arr = np.asarray(los, dtype=np.int64)
    counts = np.asarray(his, dtype=np.int64) - lo_arr + 1
    total = int(counts.sum())
    run_offsets = np.cumsum(counts) - counts
    flat = (np.arange(total, dtype=np.int64)
            - np.repeat(run_offsets, counts) + np.repeat(lo_arr, counts))
    fixed = np.repeat(drive_arr, counts)
    starts, ends = (flat, fixed) if by_end else (fixed, flat)
    for at in range(0, total, BATCH_SIZE):
        stop = min(at + BATCH_SIZE, total)
        ctx.tick_batch(stop - at)
        yield starts[at:stop], ends[at:stop]


# trex: no-charge(buffers candidate index runs, not retained segments)
def _box_batches(op: "PhysicalOperator", ctx: "ExecContext",
                 sp: "SearchSpace") -> Iterator[Tuple[np.ndarray,
                                                      np.ndarray]]:
    """Admissible boxed candidates in ``iterate_box``'s exact order.

    Mirrors ``WindowConjunction.iterate``/``iterate_by_end`` including
    the driving-direction rule, so scalar and vector paths enumerate
    identical candidate sequences.
    """
    series = ctx.series
    window = op.window
    n = len(series)
    by_end = (sp.e_hi - sp.e_lo) < (sp.s_hi - sp.s_lo)
    if by_end:
        drive_lo, drive_hi = max(sp.e_lo, 0), min(sp.e_hi, n - 1)
    else:
        drive_lo, drive_hi = max(sp.s_lo, 0), min(sp.s_hi, n - 1)
    drives: List[int] = []
    los: List[int] = []
    his: List[int] = []
    pending = 0
    # Buffered candidates are ticked batch-wise in _runs_to_batches;
    # empty drive positions are tick-free in the scalar iterators too.
    # trex: no-tick(buffered candidates tick batched in _runs_to_batches)
    for drive in range(drive_lo, drive_hi + 1):
        if by_end:
            lo, hi = window.start_range(series, drive)
            lo = max(lo, sp.s_lo, 0)
            hi = min(hi, sp.s_hi, drive)
        else:
            lo, hi = window.end_range(series, drive)
            lo = max(lo, sp.e_lo, drive)
            hi = min(hi, sp.e_hi, n - 1)
        if hi < lo:
            continue
        drives.append(drive)
        los.append(lo)
        his.append(hi)
        pending += hi - lo + 1
        if pending >= BATCH_SIZE:
            yield from _runs_to_batches(ctx, drives, los, his, by_end)
            drives, los, his = [], [], []
            pending = 0
    if pending:
        yield from _runs_to_batches(ctx, drives, los, his, by_end)


# trex: no-charge(window-spec bound tuples, not retained segments)
def _diag_batches(op: "PhysicalOperator", ctx: "ExecContext",
                  sp: "SearchSpace") -> Iterator[Tuple[np.ndarray,
                                                       np.ndarray]]:
    """Admissible ``(i, i)`` diagonal candidates for point variables.

    Scalar parity notes: the scalar loop ticks per *candidate* (window
    rejections included), so ``tick_batch`` covers the full chunk; a
    NaN timestamp gives a NaN duration whose comparisons are all false,
    i.e. the point is accepted — the masks reproduce that by rejecting
    on ``d < lo`` / ``d > hi`` rather than accepting on the complement.
    """
    series = ctx.series
    lo = max(sp.s_lo, sp.e_lo)
    hi = min(sp.s_hi, sp.e_hi)
    if hi < lo:
        return
    specs = []
    # trex: no-tick(bounded by the window's spec count)
    for spec in op.window.specs:
        b_lo, b_hi = spec.bounds_on(series)
        column = None if spec.kind == "point" else series.float_column(
            spec.column or series.order_column)
        specs.append((b_lo, b_hi, column))
    for base in range(lo, hi + 1, BATCH_SIZE):
        idx = np.arange(base, min(base + BATCH_SIZE - 1, hi) + 1,
                        dtype=np.int64)
        ctx.tick_batch(len(idx))
        mask = np.ones(len(idx), dtype=bool)
        # trex: no-tick(bounded by the window's spec count)
        for b_lo, b_hi, column in specs:
            if column is None:
                # Point-duration of a diagonal candidate is always 0.
                if 0 < b_lo or (b_hi is not None and 0 > b_hi):
                    mask[:] = False
            else:
                duration = column[idx] - column[idx]
                mask &= np.logical_not(duration < b_lo)
                if b_hi is not None:
                    mask &= np.logical_not(duration > b_hi)
        keep = idx[mask]
        if len(keep):
            yield keep, keep


# ---------------------------------------------------------------------------
# Batch evaluation with suspension-exact counter flushes
# ---------------------------------------------------------------------------


# trex: no-tick(folds a handful of per-counter cumulative arrays)
def _flush_counts(stats, record, cums: Dict[str, np.ndarray],
                  start: int, stop: int) -> None:
    """Fold counter deltas for candidates ``[start, stop)`` into sinks."""
    if stop == start:
        return
    for name, cum in cums.items():
        increment = int(cum[stop] - cum[start])
        if increment:
            stats[name] += increment
            if record is not None and name == "condition_evals":
                record.counters[name] += increment


def _eval_batch(op: "PhysicalOperator", ctx: "ExecContext",
                record, starts: np.ndarray, ends: np.ndarray, refs: "Env",
                program: _Program,
                intervals: Dict[Tuple[float, str], float],
                pads: Dict[str, np.ndarray],
                payload_name: Optional[str]) -> Iterator[Segment]:
    size = len(starts)
    state = _EvalState(ctx, starts, ends, refs, intervals, pads)
    live = np.ones(size, dtype=bool)
    matched = np.broadcast_to(
        np.asarray(_truthy(program.kind, program.fn(state, live)),
                   dtype=bool), (size,))
    state.settle_builds()
    # Cumulative per-counter totals: cums[name][j] = increments charged
    # by candidates 0..j-1, so a flush over [a, b) is one subtraction.
    cums = {"condition_evals": np.arange(size + 1, dtype=np.int64)}
    # trex: no-tick(a few counter delta arrays per batch)
    for name, delta in state.deltas.items():
        cum = np.empty(size + 1, dtype=np.int64)
        cum[0] = 0
        np.cumsum(delta, out=cum[1:])
        cums[name] = cum
    stats = ctx.stats
    hits = np.flatnonzero(matched)
    if len(hits) == 0:
        _flush_counts(stats, record, cums, 0, size)
        return
    # Pre-slice everything the per-yield loop touches into plain Python
    # lists: numpy scalar boxing per emission dominates otherwise.  The
    # flush for hit k covers candidates (hits[k-1], hits[k]], so each
    # suspension point still sees exact counters.
    bounds = np.empty(len(hits) + 1, dtype=np.int64)
    bounds[0] = 0
    np.add(hits, 1, out=bounds[1:])
    # trex: no-tick(a few counter delta arrays per batch)
    increments = [(name, np.diff(cum[bounds]).tolist())
                  for name, cum in cums.items()]
    hit_starts = starts[hits].tolist()
    hit_ends = ends[hits].tolist()
    rec_counters = record.counters if record is not None else None
    # trex: no-tick(bounded by one already-ticked batch)
    for k in range(len(hits)):
        # Counters must be exact at this suspension point: charge every
        # candidate up to and including this one, then emit.
        # trex: no-tick(a few counter names per emission)
        for name, inc in increments:
            value = inc[k]
            if value:
                stats[name] += value
                if rec_counters is not None \
                        and name == "condition_evals":
                    rec_counters[name] += value
        stats["segments_emitted"] += 1
        if rec_counters is not None:
            rec_counters["segments_emitted"] += 1
        start = hit_starts[k]
        end = hit_ends[k]
        if payload_name is not None:
            yield Segment(start, end, {payload_name: (start, end)})
        else:
            yield Segment(start, end)
    _flush_counts(stats, record, cums, int(bounds[-1]), size)


def _run(op: "PhysicalOperator", ctx: "ExecContext", sp: "SearchSpace",
         refs: "Env", record, program: _Program,
         intervals: Dict[Tuple[float, str], float]) -> Iterator[Segment]:
    var = op.var
    payload_name = var.name if var.name in op.publish else None
    pads: Dict[str, np.ndarray] = {}
    if var.is_segment:
        batches = _box_batches(op, ctx, sp)
    else:
        batches = _diag_batches(op, ctx, sp)
    # trex: no-tick(the enumerators tick per candidate batch)
    for starts, ends in batches:
        yield from _eval_batch(op, ctx, record, starts, ends, refs,
                               program, intervals, pads, payload_name)


def try_eval(op: "PhysicalOperator", ctx: "ExecContext", sp: "SearchSpace",
             refs: "Env", record,
             provider_kind: str) -> Optional[Iterator[Segment]]:
    """The vector path for one leaf eval, or ``None`` to run scalar.

    Eligibility: the context's vectorize toggle is on, fault injection
    is off (fault points live in the scalar call graph), the condition
    compiles, and the series binds.  ``sp`` must already be clamped and
    non-empty (the caller does both).
    """
    if not ctx.vectorize or _faults.ENABLED:
        return None
    program = _leaf_program(op, provider_kind, ctx.registry)
    if program is None:
        return None
    binds = ctx.vector_binds
    bound = binds.get(op.op_id, False)
    if bound is False:
        bound = _bind(program, op, ctx.series)
        binds[op.op_id] = bound
    if bound is None:
        return None
    return _run(op, ctx, sp, refs, record, program, bound)
