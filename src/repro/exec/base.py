"""Physical operator interface and execution context (Section 4.1).

Every physical operator implements ``eval(ctx, sp, refs)`` producing an
iterator of :class:`Segment` objects whose bounds lie inside the search
space ``sp`` and satisfy the operator's embedded window.  ``refs`` carries
referenced segments needed by conditions inside the operator's sub-tree.

The :class:`ExecContext` owns everything shared across one series
evaluation: the series itself, aggregate index caches (computation
sharing), probe-result caches, and run-statistics counters.
"""

from __future__ import annotations

import functools
import itertools
import time
from abc import ABC, abstractmethod
from collections import Counter
from typing import (TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Optional,
                    Sequence, Tuple)

from repro.aggregates.base import Aggregate, AggregateIndex
from repro.aggregates.registry import DEFAULT_REGISTRY, AggregateRegistry
from repro.errors import ExecutionError, QueryTimeout, ResourceBudgetExceeded
from repro.exec.vector import default_enabled as _vector_default_enabled
from repro.testing import faults as _faults
from repro.lang import expr as E
from repro.lang.windows import WindowConjunction
from repro.plan.search_space import SearchSpace
from repro.timeseries.segment import Segment
from repro.timeseries.series import Series

if TYPE_CHECKING:
    from repro.core.parallel import SegmentLedger as SegmentLedgerLike
    from repro.exec.metrics import RunMetrics

Env = Dict[str, Tuple[int, int]]

_op_ids = itertools.count()


class IndexedProvider(E.AggregateProvider):
    """Aggregate provider that uses shared indexes when possible.

    An aggregate call is answered from an index when the aggregate supports
    indexing and all of its column arguments resolve to the *current*
    segment (cross-segment calls like ``corr`` always evaluate directly).
    Indexes are built once per (series, call signature) and cached on the
    execution context.
    """

    def __init__(self, ctx: "ExecContext"):
        super().__init__(ctx.registry)
        self._ctx = ctx

    def evaluate(self, agg: Aggregate, call: E.AggCall, ectx: E.EvalContext,
                 segments: Sequence[Tuple[str, int, int]]) -> float:
        same_segment = all(start == ectx.start and end == ectx.end
                           for _, start, end in segments)
        if agg.supports_index and same_segment and not getattr(
                agg, "needs_series_context", False):
            extra = tuple(E.as_number(E.evaluate(e, ectx)) for e in call.extra)
            index = self._ctx.aggregate_index(agg, call, extra)
            self._ctx.stats["index_lookups"] += 1
            value = index.lookup(ectx.start, ectx.end)
            if _faults.ENABLED:
                value = _faults.fire("aggregate.lookup", value)
            return value
        self._ctx.stats["direct_agg_evals"] += 1
        return super().evaluate(agg, call, ectx, segments)


class CountingProvider(E.AggregateProvider):
    """Direct-evaluation provider that counts calls for run statistics."""

    def __init__(self, ctx: "ExecContext"):
        super().__init__(ctx.registry)
        self._ctx = ctx

    def evaluate(self, agg, call, ectx, segments):
        self._ctx.stats["direct_agg_evals"] += 1
        return super().evaluate(agg, call, ectx, segments)


class ExecContext:
    """Shared state for evaluating one physical plan over one series."""

    #: How many tick() calls between deadline checks.
    TICK_STRIDE = 2048

    def __init__(self, series: Series,
                 registry: AggregateRegistry = DEFAULT_REGISTRY,
                 deadline: Optional[float] = None,
                 metrics: Optional["RunMetrics"] = None,
                 segment_budget: Optional[int] = None,
                 ledger: Optional["SegmentLedgerLike"] = None,
                 vectorize: Optional[bool] = None):
        self.series = series
        self.registry = registry
        self.stats: Counter = Counter()
        self._indexes: Dict[tuple, AggregateIndex] = {}
        self._probe_caches: Dict[tuple, List[Segment]] = {}
        self.direct_provider = CountingProvider(self)
        self.indexed_provider = IndexedProvider(self)
        #: Absolute time.perf_counter() deadline, or None for no limit.
        self.deadline = deadline
        self._ticks = 0
        #: Per-operator metric sink (EXPLAIN ANALYZE); None when disabled.
        self.metrics = metrics
        #: Remaining segment/materialization budget, or None for no limit.
        #: Hot loops guard their charge() calls with an
        #: ``is not None`` check so the disabled mode pays nothing.
        self.segment_budget = segment_budget
        #: Segments charged against the budget so far (engine-accounted
        #: across series when the budget is global to a query).
        self.segments_charged = 0
        #: Optional cross-series budget ledger shared by concurrent
        #: workers (see :class:`repro.core.parallel.SegmentLedger`).
        #: Serial execution never sets one, so its accounting is
        #: untouched by the parallel engine.
        self.ledger = ledger
        #: Whether eligible leaves may take the vectorized kernel path
        #: (repro.exec.vector).  ``None`` defers to the process default
        #: (the ``TREX_VECTOR`` environment toggle).
        if vectorize is None:
            vectorize = _vector_default_enabled()
        self.vectorize = vectorize
        #: Per-plan-op bind cache for the vector path: op_id -> resolved
        #: interval constants, or ``None`` for "fell back to scalar on
        #: this series" (False marks "not probed yet").
        self.vector_binds: Dict[int, object] = {}

    def count(self, op: "PhysicalOperator", name: str, n: int = 1) -> None:
        """Attribute a named event to ``op`` (no-op unless analyzing)."""
        if self.metrics is not None:
            self.metrics.count(op, name, n)

    def tick(self) -> None:
        """Cheap cooperative cancellation point for hot loops.

        Raises :class:`QueryTimeout` when the engine deadline has passed;
        the clock is only consulted every :attr:`TICK_STRIDE` calls.
        """
        if self.deadline is None:
            return
        self._ticks += 1
        if self._ticks % self.TICK_STRIDE == 0 and \
                time.perf_counter() > self.deadline:
            raise QueryTimeout(
                f"query exceeded its deadline after {self._ticks} steps")

    def tick_batch(self, n: int) -> None:
        """Amortized :meth:`tick` for ``n`` candidates at once.

        The vector kernels charge one batch of at most
        ``repro.exec.vector.BATCH_SIZE`` candidates per call, with a
        single deadline check — the batched counterpart of the scalar
        loop's per-candidate ticks (docs/VECTORIZATION.md).
        """
        if self.deadline is None or n <= 0:
            return
        self._ticks += n
        if time.perf_counter() > self.deadline:
            raise QueryTimeout(
                f"query exceeded its deadline after {self._ticks} steps")

    def charge(self, n: int = 1) -> None:
        """Charge ``n`` materialized/retained segments against the budget.

        The budget is a memory-pressure proxy: operators call this
        wherever segments accumulate in collections whose size is not
        bounded a priori (MaterializeNot/MaterializeKleene state, probe
        and sub-pattern caches, the engine's result sink).
        """
        self.segments_charged += n
        if self.segment_budget is not None \
                and self.segments_charged > self.segment_budget:
            raise ResourceBudgetExceeded(
                f"query exceeded max_segments={self.segment_budget} "
                f"({self.segments_charged} segments materialized)")
        if self.ledger is not None:
            self.ledger.charge(n)

    def aggregate_index(self, agg: Aggregate, call: E.AggCall,
                        extra: Tuple[float, ...]) -> AggregateIndex:
        """Get or build the shared index for one aggregate call signature."""
        key = (agg.name, tuple((c.column) for c in call.columns), extra)
        index = self._indexes.get(key)
        if index is None:
            columns = [self.series.column(ref.column) for ref in call.columns]
            index = agg.build_index(columns, list(extra))
            self._indexes[key] = index
            self.stats["index_builds"] += 1
        return index

    def prebuild_indexes(self, calls: Sequence[E.AggCall]) -> None:
        """Eagerly build indexes for the given calls (baseline sharing)."""
        # trex: no-tick(bounded by the query's distinct aggregate calls)
        for call in calls:
            agg = self.registry.get(call.name)
            if not agg.supports_index or getattr(agg, "needs_series_context",
                                                 False):
                continue
            extra = tuple(
                E.as_number(E.evaluate(e, E.EvalContext(
                    self.series, 0, 0, registry=self.registry)))
                for e in call.extra)
            self.aggregate_index(agg, call, extra).materialize_all()

    def probe_cache_get(self, key: tuple) -> Optional[List[Segment]]:
        return self._probe_caches.get(key)

    def probe_cache_put(self, key: tuple, value: List[Segment]) -> None:
        if self.segment_budget is not None:
            self.charge(len(value))
        self._probe_caches[key] = value


def refs_key(refs: Env, needed: FrozenSet[str]) -> tuple:
    """Hashable cache-key projection of ``refs`` to the needed names."""
    return tuple(sorted((name, refs[name]) for name in needed
                        if name in refs))


def _with_fault_point(eval_fn):
    """Wrap an operator class's ``eval`` with its named fault point.

    The wrapper is a plain function (not a generator), so a raising
    fault fires at the ``eval()`` call itself — before any iteration —
    matching where a real construction-time operator bug would surface.
    """
    @functools.wraps(eval_fn)
    def eval(self, ctx, sp, refs):
        if _faults.ENABLED:
            # Resolved from the *instance's* class so operators that
            # inherit eval (e.g. SegGenFilter from _ConditionLeaf) still
            # get their own exec.<OpName>.eval point.
            klass = type(self)
            _faults.fire(
                f"exec.{getattr(klass, 'name', None) or klass.__name__}"
                f".eval")
        return eval_fn(self, ctx, sp, refs)

    eval._fault_wrapped = True  # type: ignore[attr-defined]
    return eval


class PhysicalOperator(ABC):
    """Base physical operator.

    ``window`` is the embedded window the emitted segments must satisfy;
    ``publish`` is the set of variable names whose matched segments must be
    present in emitted payloads (needed by consumers above); ``requires``
    is the set of external references conditions in this sub-tree need.
    """

    #: Human-readable operator name for EXPLAIN output.
    name = "op"

    #: Cost-model key when it differs from ``name`` (see
    #: ``repro.analysis.plan_verify.check_cost_coverage``); ``None`` means
    #: the operator is charged under ``name``.
    cost_key: Optional[str] = None

    def __init__(self, window: WindowConjunction,
                 publish: FrozenSet[str] = frozenset(),
                 requires: FrozenSet[str] = frozenset()):
        self.window = window
        self.publish = publish
        self.requires = requires
        self.op_id = next(_op_ids)

    def __init_subclass__(cls, **kwargs) -> None:
        """Give every concrete operator class a named fault point.

        ``eval`` is wrapped once at class-creation time so chaos tests
        can inject at ``exec.<OpName>.eval`` (see repro.testing.faults);
        disarmed, the wrapper is one module-flag check per eval call.
        """
        super().__init_subclass__(**kwargs)
        eval_fn = cls.__dict__.get("eval")
        if eval_fn is not None and not getattr(eval_fn, "_fault_wrapped",
                                               False):
            cls.eval = _with_fault_point(eval_fn)

    @abstractmethod
    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        """Yield matching segments within ``sp`` given referenced segments."""

    def children(self) -> Tuple["PhysicalOperator", ...]:
        return ()

    def check_refs(self, refs: Env) -> None:
        missing = set(self.requires) - set(refs)
        if missing:
            raise ExecutionError(
                f"{self.name} needs referenced segments {sorted(missing)} "
                f"but they were not provided")

    def emit(self, segment: Segment) -> Segment:
        """Project the payload to what consumers above still need."""
        return segment.project_payload(self.publish)

    # trex: no-tick(EXPLAIN rendering is bounded by plan size)
    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        window = "" if self.window.is_wild else f" [{self.window.describe()}]"
        lines = [f"{pad}{self.describe()}{window}"]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return self.name

    def to_dict(self) -> dict:
        """JSON-serializable plan representation (for tooling/EXPLAIN)."""
        node = {"operator": self.describe()}
        if not self.window.is_wild:
            node["window"] = self.window.describe()
        if self.publish:
            node["publish"] = sorted(self.publish)
        if self.requires:
            node["requires"] = sorted(self.requires)
        children = [child.to_dict() for child in self.children()]
        if children:
            node["children"] = children
        return node

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


# trex: no-tick(drains generators whose own hot loops already tick)
def dedupe(segments: Iterator[Segment]) -> Iterator[Segment]:
    """Drop duplicate (bounds, payload) emissions."""
    seen = set()
    for segment in segments:
        key = (segment.start, segment.end, segment.payload_key())
        if key not in seen:
            seen.add(key)
            yield segment
