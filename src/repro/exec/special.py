"""Special operators (Section 4.5): sub-pattern materialization.

:class:`SubPatternCache` wraps an operator whose sub-tree appears more than
once in a physical plan; the first ``eval()`` per (search space, refs)
materializes the results, and repeats are served from the cache — the
paper's SubPattern operator.
"""

from __future__ import annotations

from typing import Iterator

from repro.exec.base import Env, ExecContext, PhysicalOperator, refs_key
from repro.plan.search_space import SearchSpace
from repro.timeseries.segment import Segment


class SubPatternCache(PhysicalOperator):
    """Memoize a repeated sub-pattern's results per (space, refs)."""

    name = "SubPattern"

    def __init__(self, child: PhysicalOperator, cache_key: str):
        super().__init__(child.window, publish=child.publish,
                         requires=child.requires)
        self.child = child
        self.cache_key = cache_key

    def children(self):
        return (self.child,)

    #: Spaces at most this many (start, end) cells stream through without
    #: caching: materializing tiny probe spaces would defeat early
    #: termination (e.g. ProbeNot closing after the first hit) and costs
    #: more than it saves.
    MIN_CELLS_TO_CACHE = 64

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        if sp.start_range_size * sp.end_range_size <= self.MIN_CELLS_TO_CACHE:
            return self.child.eval(ctx, sp, refs)
        key = ("subpattern", self.cache_key, sp,
               refs_key(refs, self.requires))
        cached = ctx.probe_cache_get(key)
        if cached is None:
            ctx.stats["subpattern_evals"] += 1
            ctx.count(self, "subpattern_evals")
            cached = list(self.child.eval(ctx, sp, refs))
            ctx.probe_cache_put(key, cached)
        else:
            ctx.stats["subpattern_cache_hits"] += 1
            ctx.count(self, "subpattern_cache_hits")
        return iter(cached)

    def describe(self) -> str:
        return f"{self.name}({self.cache_key[:12]})"
