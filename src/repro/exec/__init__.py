"""Physical operators and execution context (Section 4)."""

from repro.exec.and_or import (LeftProbeAnd, RightProbeAnd, SortMergeAnd,
                               SortMergeOr)
from repro.exec.base import ExecContext, PhysicalOperator
from repro.exec.concat import (LeftProbeConcat, RightProbeConcat,
                               SortMergeConcat, WildWindowConcat)
from repro.exec.filter_op import FilterOp
from repro.exec.kleene import MaterializeKleene
from repro.exec.metrics import OpMetrics, RunMetrics, instrument_plan
from repro.exec.not_op import MaterializeNot, ProbeNot
from repro.exec.seggen import SegGenFilter, SegGenIndexing, SegGenWindow
from repro.exec.special import SubPatternCache

__all__ = [
    "ExecContext", "PhysicalOperator",
    "OpMetrics", "RunMetrics", "instrument_plan",
    "SegGenWindow", "SegGenFilter", "SegGenIndexing",
    "SortMergeConcat", "RightProbeConcat", "LeftProbeConcat",
    "WildWindowConcat",
    "SortMergeAnd", "RightProbeAnd", "LeftProbeAnd", "SortMergeOr",
    "MaterializeNot", "ProbeNot", "MaterializeKleene", "FilterOp",
    "SubPatternCache",
]
