"""EXPLAIN ANALYZE: per-operator runtime metrics (observability layer).

The engine's ``analyze`` mode wraps every node of a physical plan in a
timing shim (:func:`instrument_plan`) and collects one :class:`OpMetrics`
record per operator on the :class:`~repro.exec.base.ExecContext`, keyed by
``op_id``:

* ``eval_calls`` — how many times the operator's ``eval`` was entered
  (probed operators are entered once per cache miss);
* ``segments_out`` — segments the operator emitted;
* ``segments_in`` — segments pulled from children (derived at
  :meth:`RunMetrics.finalize` as the sum of the children's emissions);
* ``sum_ls``/``sum_le``/``max_ls``/``max_le`` — the incoming search-space
  range sizes ℓ_s and ℓ_e (Table 1's cardinality inputs), so the measured
  reality can be compared against the cost model's assumptions;
* ``time_seconds`` — cumulative wall time spent inside the operator's
  iterator, children included; ``self_seconds`` subtracts the children;
* ``counters`` — operator-reported events (probe-cache hits/misses,
  condition evaluations, sub-pattern cache hits, ...) attributed through
  :meth:`~repro.exec.base.ExecContext.count`.

Overhead guarantee: when analyze mode is off the engine evaluates the
*uninstrumented* plan — the shim does not exist — and the only residual
cost is one ``ctx.metrics is None`` check at each operator-reported event
site (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import copy
import math
import threading
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

from repro.exec.base import Env, ExecContext, PhysicalOperator
from repro.plan.search_space import SearchSpace
from repro.timeseries.segment import Segment


@dataclass
class OpMetrics:
    """Runtime metrics for one physical operator (one ``op_id``)."""

    op_id: int
    label: str
    eval_calls: int = 0
    segments_out: int = 0
    #: Derived: sum of direct children's ``segments_out`` (finalize()).
    segments_in: int = 0
    #: Incoming search-space range sizes, summed over eval calls.
    sum_ls: int = 0
    sum_le: int = 0
    max_ls: int = 0
    max_le: int = 0
    #: Cumulative wall time inside this operator's iterator (children
    #: included); ``self_seconds`` is derived by ``finalize()``.
    time_seconds: float = 0.0
    self_seconds: float = 0.0
    counters: Counter = field(default_factory=Counter)

    def observe_space(self, sp: SearchSpace) -> None:
        ls, le = sp.start_range_size, sp.end_range_size
        self.sum_ls += ls
        self.sum_le += le
        self.max_ls = max(self.max_ls, ls)
        self.max_le = max(self.max_le, le)

    @property
    def avg_ls(self) -> float:
        return self.sum_ls / self.eval_calls if self.eval_calls else 0.0

    @property
    def avg_le(self) -> float:
        return self.sum_le / self.eval_calls if self.eval_calls else 0.0

    def merge(self, other: "OpMetrics") -> None:
        self.eval_calls += other.eval_calls
        self.segments_out += other.segments_out
        self.segments_in += other.segments_in
        self.sum_ls += other.sum_ls
        self.sum_le += other.sum_le
        self.max_ls = max(self.max_ls, other.max_ls)
        self.max_le = max(self.max_le, other.max_le)
        self.time_seconds += other.time_seconds
        self.self_seconds += other.self_seconds
        self.counters.update(other.counters)

    def annotation(self) -> str:
        """One-line metric summary for the annotated EXPLAIN tree."""
        parts = [f"time={self.time_seconds * 1e3:.3f}ms",
                 f"self={self.self_seconds * 1e3:.3f}ms",
                 f"evals={self.eval_calls}",
                 f"in={self.segments_in}",
                 f"out={self.segments_out}",
                 f"ls_avg={self.avg_ls:.1f}",
                 f"le_avg={self.avg_le:.1f}"]
        parts.extend(f"{name}={value}"
                     for name, value in sorted(self.counters.items()))
        return " ".join(parts)

    def to_dict(self) -> dict:
        data = {
            "op_id": self.op_id,
            "operator": self.label,
            "eval_calls": self.eval_calls,
            "segments_in": self.segments_in,
            "segments_out": self.segments_out,
            "time_seconds": self.time_seconds,
            "self_seconds": self.self_seconds,
            "search_space": {
                "sum_ls": self.sum_ls, "sum_le": self.sum_le,
                "max_ls": self.max_ls, "max_le": self.max_le,
                "avg_ls": self.avg_ls, "avg_le": self.avg_le,
            },
        }
        if self.counters:
            data["counters"] = dict(self.counters)
        return data


class RunMetrics:
    """Per-operator metrics for one plan evaluation (or an aggregate)."""

    def __init__(self) -> None:
        self.ops: Dict[int, OpMetrics] = {}

    def for_op(self, op: PhysicalOperator) -> OpMetrics:
        record = self.ops.get(op.op_id)
        if record is None:
            record = OpMetrics(op.op_id, op.describe())
            self.ops[op.op_id] = record
        return record

    def count(self, op: PhysicalOperator, name: str, n: int = 1) -> None:
        self.for_op(op).counters[name] += n

    # trex: no-tick(post-run folding, bounded by operator count)
    def merge(self, other: "RunMetrics") -> None:
        """Fold another run's records into this one (cross-series)."""
        for op_id, theirs in other.ops.items():
            mine = self.ops.get(op_id)
            if mine is None:
                mine = OpMetrics(op_id, theirs.label)
                self.ops[op_id] = mine
            mine.merge(theirs)

    # trex: no-tick(post-run derivation, bounded by plan size)
    def finalize(self, plan: PhysicalOperator) -> None:
        """Derive ``self_seconds`` and ``segments_in`` from the tree."""
        def walk(op: PhysicalOperator) -> None:
            child_time = 0.0
            child_out = 0
            for child in op.children():
                walk(child)
                child_metrics = self.ops.get(child.op_id)
                if child_metrics is not None:
                    # trex: nan-ok(perf_counter deltas are always finite)
                    child_time += child_metrics.time_seconds
                    child_out += child_metrics.segments_out
            record = self.ops.get(op.op_id)
            if record is not None:
                record.self_seconds = max(
                    0.0, record.time_seconds - child_time)
                record.segments_in = child_out
        walk(plan)

    # trex: no-tick(EXPLAIN rendering, bounded by plan size)
    def annotate(self, plan: PhysicalOperator) -> str:
        """The plan's explain tree with one metric line per operator."""
        lines: List[str] = []

        def walk(op: PhysicalOperator, indent: int) -> None:
            pad = "  " * indent
            window = "" if op.window.is_wild \
                else f" [{op.window.describe()}]"
            lines.append(f"{pad}{op.describe()}{window}")
            record = self.ops.get(op.op_id)
            detail = record.annotation() if record is not None \
                else "(never evaluated)"
            lines.append(f"{pad}  `- {detail}")
            for child in op.children():
                walk(child, indent + 1)

        walk(plan, 0)
        return "\n".join(lines)

    def tree_dict(self, plan: PhysicalOperator) -> dict:
        """JSON form: the plan tree with a ``metrics`` entry per node."""
        node: dict = {"operator": plan.describe(), "op_id": plan.op_id}
        if not plan.window.is_wild:
            node["window"] = plan.window.describe()
        record = self.ops.get(plan.op_id)
        if record is not None:
            node["metrics"] = record.to_dict()
        children = [self.tree_dict(child) for child in plan.children()]
        if children:
            node["children"] = children
        return node

    def to_list(self) -> List[dict]:
        """Flat per-operator records, ordered by ``op_id``."""
        return [self.ops[op_id].to_dict() for op_id in sorted(self.ops)]

    @property
    def total_time_seconds(self) -> float:
        return sum(record.self_seconds for record in self.ops.values())


_CHILD_ATTRS = ("child", "left", "right")


def instrument_plan(plan: PhysicalOperator) -> PhysicalOperator:
    """Shallow-copy ``plan`` wrapping every ``eval`` with metric capture.

    The copies share all immutable state (windows, conditions, ``op_id``)
    with the original nodes, so metrics recorded while running the
    instrumented copy can be reported against the original plan tree.
    Only the time spent *inside* each operator's iterator is charged to
    it; consumer-side gaps between ``next()`` calls are not.
    """
    clone = copy.copy(plan)
    # trex: no-tick(iterates the three fixed child attribute names)
    for attr in _CHILD_ATTRS:
        child = getattr(clone, attr, None)
        if isinstance(child, PhysicalOperator):
            setattr(clone, attr, instrument_plan(child))
    inner_eval = type(plan).eval

    def analyzed_eval(ctx: ExecContext, sp: SearchSpace,
                      refs: Env) -> Iterator[Segment]:
        metrics = ctx.metrics
        if metrics is None:
            yield from inner_eval(clone, ctx, sp, refs)
            return
        record = metrics.for_op(clone)
        record.eval_calls += 1
        record.observe_space(sp)
        t0 = time.perf_counter()
        # Timed separately: non-generator evals (SubPatternCache) do
        # their materialization work in the call itself.
        iterator = inner_eval(clone, ctx, sp, refs)
        record.time_seconds += time.perf_counter() - t0
        # trex: no-tick(drains the wrapped operator's ticking iterator)
        while True:
            t0 = time.perf_counter()
            try:
                segment = next(iterator)
            except StopIteration:
                record.time_seconds += time.perf_counter() - t0
                return
            record.time_seconds += time.perf_counter() - t0
            record.segments_out += 1
            yield segment

    # Instance attribute shadows the class method for ``clone`` only.
    clone.eval = analyzed_eval  # type: ignore[method-assign]
    return clone


def merged_metrics(per_series: List[Optional[RunMetrics]]) -> RunMetrics:
    """Aggregate per-series run metrics into one cross-series view."""
    total = RunMetrics()
    for metrics in per_series:
        if metrics is not None:
            total.merge(metrics)
    return total


# ---------------------------------------------------------------------------
# Service-side run accounting (used by repro.service; docs/SERVICE.md)
# ---------------------------------------------------------------------------

def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample.

    ``q`` is in [0, 100].  Nearest-rank (rather than interpolation)
    keeps the reported latency an actually-observed value, which is the
    convention load-testing tools use for pXX figures.
    """
    if not sorted_values:
        return 0.0
    if q <= 0:
        return sorted_values[0]
    rank = int(math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[min(len(sorted_values), max(1, rank)) - 1]


class LatencyWindow:
    """Bounded, thread-safe latency sample for percentile reporting.

    Keeps the most recent ``max_samples`` observations (enough for
    stable p50/p95/p99 on a serving window without unbounded growth).
    """

    def __init__(self, max_samples: int = 4096):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self._samples: Deque[float] = deque(maxlen=max_samples)
        self._lock = threading.Lock()
        self.count = 0
        self.total_seconds = 0.0

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self.count += 1
            self.total_seconds += seconds

    def snapshot(self) -> dict:
        """Count, mean and p50/p95/p99 over the retained window."""
        with self._lock:
            values = sorted(self._samples)
            count = self.count
            total = self.total_seconds
        return {
            "count": count,
            "mean_seconds": (total / count) if count else 0.0,
            "p50_seconds": percentile(values, 50),
            "p95_seconds": percentile(values, 95),
            "p99_seconds": percentile(values, 99),
        }


class ServiceCounters:
    """Thread-safe named counters for the query service's /stats.

    A tiny wrapper over :class:`collections.Counter` whose increments
    are safe from both asyncio callbacks and executor threads; the
    service layer keys it with its admission/shed/retry/breaker events
    (docs/SERVICE.md lists the stable names).
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self._lock = threading.Lock()

    def add(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counts[name] += value

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts[name]

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)
