"""Concatenation physical operators (Sections 4.3, 4.5.2).

``gap`` is the join offset between the left segment's end and the right
segment's start: 0 for shared-boundary joins (segments involved), 1 for the
classic disjoint point-variable join.

* :class:`SortMergeConcat` evaluates both children once over expanded
  search spaces and merge-joins on the boundary;
* :class:`RightProbeConcat` / :class:`LeftProbeConcat` evaluate one child
  and *probe* the other with a search space collapsed to the join point —
  additionally tightened by the embedded window anchored at the known
  segment end/start, which is where search-space pruning pays off;
* :class:`WildWindowConcat` (WConcat) fuses the ``X W Y`` chain around a
  window-only padding variable, pairing X and Y directly without
  materializing the padding segments.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, FrozenSet, Iterator, List

from repro.exec.base import (Env, ExecContext, PhysicalOperator, dedupe,
                             refs_key)
from repro.lang.windows import WindowConjunction
from repro.plan.search_space import SearchSpace
from repro.timeseries.segment import Segment


class _BinaryConcat(PhysicalOperator):
    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 gap: int, window: WindowConjunction,
                 publish: FrozenSet[str] = frozenset(),
                 requires: FrozenSet[str] = frozenset()):
        super().__init__(window, publish=publish, requires=requires)
        self.left = left
        self.right = right
        self.gap = gap

    def children(self):
        return (self.left, self.right)

    def _join(self, ctx: ExecContext, sp: SearchSpace, left: Segment,
              right: Segment) -> Iterator[Segment]:
        # Called once per candidate pair: the probe variants' inner
        # loops make no other tick progress between candidates.
        ctx.tick()
        start, end = left.start, right.end
        if not sp.contains(start, end):
            return
        if not self.window.accepts(ctx.series, start, end):
            return
        payload = dict(left.payload)
        payload.update(right.payload)
        ctx.stats["segments_emitted"] += 1
        yield self.emit(Segment(start, end, payload))

    def describe(self) -> str:
        return f"{self.name}(gap={self.gap})"


class SortMergeConcat(_BinaryConcat):
    """Evaluate both children independently, join on the boundary point."""

    name = "SortMergeConcat"

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        self.check_refs(refs)
        sp = sp.clamp(len(ctx.series))
        if sp.is_empty():
            return

        def generate() -> Iterator[Segment]:
            by_end: Dict[int, List[Segment]] = defaultdict(list)
            for left in self.left.eval(ctx, sp.concat_left(self.gap), refs):
                ctx.tick()
                if ctx.segment_budget is not None:
                    ctx.charge()
                by_end[left.end].append(left)
            if not by_end:
                return  # early termination: no need to evaluate the right
            for right in self.right.eval(ctx, sp.concat_right(self.gap),
                                         refs):
                ctx.tick()
                for left in by_end.get(right.start - self.gap, ()):
                    yield from self._join(ctx, sp, left, right)

        yield from dedupe(generate())


class RightProbeConcat(_BinaryConcat):
    """Enumerate the left child; probe the right at each boundary."""

    name = "RightProbeConcat"

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        self.check_refs(refs)
        sp = sp.clamp(len(ctx.series))
        if sp.is_empty():
            return

        def generate() -> Iterator[Segment]:
            needed = self.right.requires
            for left in self.left.eval(ctx, sp.concat_left(self.gap), refs):
                ctx.tick()
                # The result spans [left.start, e]: tighten the probed end
                # range with the embedded window anchored at left.start.
                e_lo, e_hi = self.window.end_range(ctx.series, left.start)
                probe = SearchSpace(left.end + self.gap, left.end + self.gap,
                                    max(sp.e_lo, e_lo), min(sp.e_hi, e_hi))
                if probe.is_empty():
                    continue
                child_refs = dict(refs)
                child_refs.update(left.payload)
                key = (self.right.op_id, probe,
                       refs_key(child_refs, needed))
                rights = ctx.probe_cache_get(key)
                if rights is None:
                    ctx.stats["probe_calls"] += 1
                    ctx.count(self, "probe_cache_misses")
                    rights = list(self.right.eval(ctx, probe, child_refs))
                    ctx.probe_cache_put(key, rights)
                else:
                    ctx.stats["probe_cache_hits"] += 1
                    ctx.count(self, "probe_cache_hits")
                for right in rights:
                    yield from self._join(ctx, sp, left, right)

        yield from dedupe(generate())


class LeftProbeConcat(_BinaryConcat):
    """Enumerate the right child; probe the left at each boundary."""

    name = "LeftProbeConcat"

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        self.check_refs(refs)
        sp = sp.clamp(len(ctx.series))
        if sp.is_empty():
            return

        def generate() -> Iterator[Segment]:
            needed = self.left.requires
            for right in self.right.eval(ctx, sp.concat_right(self.gap),
                                         refs):
                ctx.tick()
                s_lo, s_hi = self.window.start_range(ctx.series, right.end)
                probe = SearchSpace(max(sp.s_lo, s_lo), min(sp.s_hi, s_hi),
                                    right.start - self.gap,
                                    right.start - self.gap)
                if probe.is_empty():
                    continue
                child_refs = dict(refs)
                child_refs.update(right.payload)
                key = (self.left.op_id, probe, refs_key(child_refs, needed))
                lefts = ctx.probe_cache_get(key)
                if lefts is None:
                    ctx.stats["probe_calls"] += 1
                    ctx.count(self, "probe_cache_misses")
                    lefts = list(self.left.eval(ctx, probe, child_refs))
                    ctx.probe_cache_put(key, lefts)
                else:
                    ctx.stats["probe_cache_hits"] += 1
                    ctx.count(self, "probe_cache_hits")
                for left in lefts:
                    yield from self._join(ctx, sp, left, right)

        yield from dedupe(generate())


class WildWindowConcat(PhysicalOperator):
    """Fused ``X PAD Y`` concatenation around a window-only padding variable.

    Pairs X segments with Y segments directly: a pair joins when the
    implicit padding segment ``[x.end + gap_left, y.start - gap_right]``
    satisfies the padding window.  ``gap_left``/``gap_right`` are the
    concatenation join offsets around the eliminated pad — 0 for
    shared-boundary segment joins, 1 for disjoint point joins; a point pad
    between two point variables joins ``y.start = x.end + 2``.  Avoids
    materializing the (potentially huge) padding segments.
    """

    name = "WildWindowConcat"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 pad_window: WindowConjunction, window: WindowConjunction,
                 publish: FrozenSet[str] = frozenset(),
                 requires: FrozenSet[str] = frozenset(),
                 gap_left: int = 0, gap_right: int = 0):
        super().__init__(window, publish=publish, requires=requires)
        self.left = left
        self.right = right
        self.pad_window = pad_window
        self.gap_left = gap_left
        self.gap_right = gap_right

    def children(self):
        return (self.left, self.right)

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        self.check_refs(refs)
        sp = sp.clamp(len(ctx.series))
        if sp.is_empty():
            return

        def generate() -> Iterator[Segment]:
            left_sp = SearchSpace(sp.s_lo, sp.s_hi, sp.s_lo, sp.e_hi)
            lefts = []
            for left in self.left.eval(ctx, left_sp, refs):
                ctx.tick()
                if ctx.segment_budget is not None:
                    ctx.charge()
                lefts.append(left)
            if not lefts:
                return
            right_sp = SearchSpace(sp.s_lo, sp.e_hi, sp.e_lo, sp.e_hi)
            rights = []
            for right in self.right.eval(ctx, right_sp, refs):
                ctx.tick()
                if ctx.segment_budget is not None:
                    ctx.charge()
                rights.append(right)
            if not rights:
                return
            rights.sort(key=lambda seg: seg.start)
            starts = [seg.start for seg in rights]
            n = len(ctx.series)
            for left in lefts:
                ctx.tick()
                pad_start = left.end + self.gap_left
                if pad_start >= n:
                    continue
                # Admissible pad end positions; right starts sit gap_right
                # past them.
                pad_lo, pad_hi = self.pad_window.end_range(ctx.series,
                                                           pad_start)
                pad_lo = max(pad_lo, pad_start)
                # Result end range from the embedded window.
                e_lo, e_hi = self.window.end_range(ctx.series, left.start)
                lo_index = bisect.bisect_left(starts,
                                              pad_lo + self.gap_right)
                hi_index = bisect.bisect_right(starts,
                                               pad_hi + self.gap_right)
                for right in rights[lo_index:hi_index]:
                    ctx.tick()
                    start, end = left.start, right.end
                    if end < max(sp.e_lo, e_lo) or end > min(sp.e_hi, e_hi):
                        continue
                    if not sp.contains(start, end):
                        continue
                    payload = dict(left.payload)
                    payload.update(right.payload)
                    ctx.stats["segments_emitted"] += 1
                    yield self.emit(Segment(start, end, payload))

        yield from dedupe(generate())
