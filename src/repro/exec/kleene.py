"""Kleene physical operator (Section 4.4.3).

:class:`MaterializeKleene` evaluates its child once, hashes the child's
segments by start position, and assembles "linked" chains with a
breadth-first search.  Window-awareness is what makes it fast on long
series (the OpenCEP_Q2 analysis in Section 6.3): the embedded window bounds
each chain's end range from its start position, so chains are pruned as
soon as they out-span the window.

Chains deduplicate on ``(end, reps)`` states, which keeps the search
polynomial even when exponentially many decompositions exist.  Payloads of
chain members are not tracked (references *into* a Kleene body are
rejected by the planner's validator, matching the paper's scoping).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.exec.base import Env, ExecContext, PhysicalOperator
from repro.lang.windows import WindowConjunction
from repro.plan.search_space import SearchSpace
from repro.timeseries.segment import Segment


class MaterializeKleene(PhysicalOperator):
    """Assemble repeated child matches into Kleene chains."""

    name = "MaterializeKleene"

    def __init__(self, child: PhysicalOperator, min_reps: int,
                 max_reps: Optional[int], gap: int,
                 window: WindowConjunction,
                 publish: FrozenSet[str] = frozenset(),
                 requires: FrozenSet[str] = frozenset(),
                 window_aware: bool = True):
        super().__init__(window, publish=publish, requires=requires)
        if min_reps < 1:
            raise ValueError(
                "MaterializeKleene requires a minimum of one repetition; "
                "rewrite zero-minimum quantifiers (see DESIGN.md)")
        self.child = child
        self.min_reps = min_reps
        self.max_reps = max_reps
        self.gap = gap
        # window_aware=False models the ZStream/OpenCEP behaviour analysed
        # in Section 6.3: chains are only window-checked at emission, so the
        # BFS explores the full span regardless of the window bound.
        self.window_aware = window_aware

    def children(self):
        return (self.child,)

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        self.check_refs(refs)
        sp = sp.clamp(len(ctx.series))
        if sp.is_empty():
            return
        child_sp = sp.kleene_child()
        by_start: Dict[int, List[int]] = defaultdict(list)
        singles: Set[int] = set()
        for segment in self.child.eval(ctx, child_sp, refs):
            ctx.tick()
            if self.gap == 0 and segment.duration == 0:
                # A zero-duration link makes no progress under shared
                # boundaries, so it never joins a chain — but the spec
                # (DESIGN.md §3, mirrored by the brute-force matcher) lets
                # the *final* repetition cover whatever remains, so a lone
                # zero-width repetition is a complete match on its own.
                if self.min_reps <= 1:
                    singles.add(segment.start)
                continue
            if ctx.segment_budget is not None:
                ctx.charge()
            by_start[segment.start].append(segment.end)

        series = ctx.series
        for start in range(sp.s_lo, sp.s_hi + 1):
            if start not in by_start and start not in singles:
                continue
            # Window pruning: the furthest end a chain from `start` may reach.
            if self.window_aware:
                w_lo, w_hi = self.window.end_range(series, start)
                e_hi = min(w_hi, sp.e_hi)
                e_lo = max(w_lo, sp.e_lo)
            else:
                e_hi = sp.e_hi
                e_lo = sp.e_lo
            visited: Set[Tuple[int, int]] = set()
            emitted: Set[int] = set()
            if (start in singles and e_lo <= start <= e_hi
                    and self.window.accepts(series, start, start)
                    and sp.contains(start, start)):
                emitted.add(start)
                ctx.stats["segments_emitted"] += 1
                yield self.emit(Segment(start, start))
            queue = deque()
            for end in by_start.get(start, ()):
                ctx.tick()
                if end <= e_hi:
                    state = (end, 1)
                    if state not in visited:
                        visited.add(state)
                        queue.append(state)
            while queue:
                ctx.tick()
                end, reps = queue.popleft()
                if (reps >= self.min_reps and e_lo <= end <= e_hi
                        and end not in emitted
                        and self.window.accepts(series, start, end)
                        and sp.contains(start, end)):
                    emitted.add(end)
                    ctx.stats["segments_emitted"] += 1
                    yield self.emit(Segment(start, end))
                if self.max_reps is not None and reps >= self.max_reps:
                    continue
                next_start = end + self.gap
                for next_end in by_start.get(next_start, ()):
                    ctx.tick()
                    if next_end > e_hi:
                        continue
                    state = (next_end, reps + 1)
                    if state not in visited:
                        # Chain states are the memory hot spot (O(n·reps)
                        # of them can exist); charge them like segments.
                        if ctx.segment_budget is not None:
                            ctx.charge()
                        visited.add(state)
                        queue.append(state)

    def describe(self) -> str:
        hi = "inf" if self.max_reps is None else self.max_reps
        return f"{self.name}{{{self.min_reps},{hi}}}(gap={self.gap})"
