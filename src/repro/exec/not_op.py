"""Not physical operators (Section 4.4.2).

Both emit the windowed segments of the search space that the child does
*not* match.  :class:`MaterializeNot` evaluates the child once over the
whole space and emits the complement; :class:`ProbeNot` probes the child
per candidate segment with an exact search space, closing the child's
iterator after the first hit.  The optimizer picks between them based on
the number of candidates (Figure 10).

Thanks to the ``refs`` argument, the negated sub-pattern may freely
reference variables matched outside the Not — no post-processing needed.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Set, Tuple

from repro.exec.base import Env, ExecContext, PhysicalOperator
from repro.lang.windows import WindowConjunction
from repro.plan.search_space import SearchSpace
from repro.timeseries.segment import Segment


class _NotBase(PhysicalOperator):
    def __init__(self, child: PhysicalOperator, window: WindowConjunction,
                 publish: FrozenSet[str] = frozenset(),
                 requires: FrozenSet[str] = frozenset()):
        super().__init__(window, publish=publish, requires=requires)
        self.child = child

    def children(self):
        return (self.child,)


class MaterializeNot(_NotBase):
    """Materialize all child matches, emit the windowed complement."""

    name = "MaterializeNot"

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        self.check_refs(refs)
        sp = sp.clamp(len(ctx.series))
        if sp.is_empty():
            return
        matched: Set[Tuple[int, int]] = set()
        for segment in self.child.eval(ctx, sp, refs):
            ctx.tick()
            if ctx.segment_budget is not None:
                ctx.charge()
            matched.add(segment.bounds)
        for start, end in self.window.iterate_box(ctx.series, sp.s_lo, sp.s_hi,
                                              sp.e_lo, sp.e_hi):
            ctx.tick()
            if (start, end) not in matched:
                ctx.stats["segments_emitted"] += 1
                yield Segment(start, end)


class ProbeNot(_NotBase):
    """Probe the child once per windowed candidate segment."""

    name = "ProbeNot"

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        self.check_refs(refs)
        sp = sp.clamp(len(ctx.series))
        if sp.is_empty():
            return
        for start, end in self.window.iterate_box(ctx.series, sp.s_lo, sp.s_hi,
                                              sp.e_lo, sp.e_hi):
            ctx.tick()
            probe = SearchSpace.exact(start, end)
            ctx.stats["probe_calls"] += 1
            ctx.count(self, "probe_calls")
            # The iterator is closed after the first hit (cheap negation).
            hit = next(iter(self.child.eval(ctx, probe, refs)), None)
            if hit is None:
                ctx.stats["segments_emitted"] += 1
                yield Segment(start, end)
