"""And / Or physical operators (Section 4.3).

An ``And`` joins segments with *identical* positions; the search space is
passed to children unchanged.  Probe variants collapse the probed child's
space to the exact segment produced by the other child — the paper's key
pruning device for conjunctions (e.g. DIFF pruning DOWN).

An ``Or`` unions both children's emissions; no probe variant exists.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.exec.base import (Env, ExecContext, PhysicalOperator, dedupe,
                             refs_key)
from repro.lang.windows import WindowConjunction
from repro.plan.search_space import SearchSpace
from repro.timeseries.segment import Segment


class _BinaryAnd(PhysicalOperator):
    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 window: WindowConjunction,
                 publish: FrozenSet[str] = frozenset(),
                 requires: FrozenSet[str] = frozenset()):
        super().__init__(window, publish=publish, requires=requires)
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def _join(self, ctx: ExecContext, sp: SearchSpace, left: Segment,
              right: Segment) -> Iterator[Segment]:
        # Called once per candidate pair: the probe variants' inner
        # loops make no other tick progress between candidates.
        ctx.tick()
        # Bounds already equal by construction; re-check space and window.
        if not sp.contains(left.start, left.end):
            return
        if not self.window.accepts(ctx.series, left.start, left.end):
            return
        payload = dict(left.payload)
        payload.update(right.payload)
        ctx.stats["segments_emitted"] += 1
        yield self.emit(Segment(left.start, left.end, payload))


class SortMergeAnd(_BinaryAnd):
    """Evaluate both children once, join segments with identical bounds."""

    name = "SortMergeAnd"

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        self.check_refs(refs)
        sp = sp.clamp(len(ctx.series))
        if sp.is_empty():
            return

        def generate() -> Iterator[Segment]:
            by_bounds: Dict[Tuple[int, int], List[Segment]] = defaultdict(list)
            for left in self.left.eval(ctx, sp, refs):
                ctx.tick()
                if ctx.segment_budget is not None:
                    ctx.charge()
                by_bounds[left.bounds].append(left)
            if not by_bounds:
                return  # early termination
            for right in self.right.eval(ctx, sp, refs):
                ctx.tick()
                for left in by_bounds.get(right.bounds, ()):
                    yield from self._join(ctx, sp, left, right)

        yield from dedupe(generate())


class RightProbeAnd(_BinaryAnd):
    """Enumerate the left child; probe the right with the exact segment."""

    name = "RightProbeAnd"

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        self.check_refs(refs)
        sp = sp.clamp(len(ctx.series))
        if sp.is_empty():
            return

        def generate() -> Iterator[Segment]:
            needed = self.right.requires
            for left in self.left.eval(ctx, sp, refs):
                ctx.tick()
                probe = SearchSpace.exact(left.start, left.end)
                child_refs = dict(refs)
                child_refs.update(left.payload)
                key = (self.right.op_id, probe, refs_key(child_refs, needed))
                rights = ctx.probe_cache_get(key)
                if rights is None:
                    ctx.stats["probe_calls"] += 1
                    ctx.count(self, "probe_cache_misses")
                    rights = list(self.right.eval(ctx, probe, child_refs))
                    ctx.probe_cache_put(key, rights)
                else:
                    ctx.stats["probe_cache_hits"] += 1
                    ctx.count(self, "probe_cache_hits")
                for right in rights:
                    yield from self._join(ctx, sp, left, right)

        yield from dedupe(generate())


class LeftProbeAnd(_BinaryAnd):
    """Enumerate the right child; probe the left with the exact segment."""

    name = "LeftProbeAnd"

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        self.check_refs(refs)
        sp = sp.clamp(len(ctx.series))
        if sp.is_empty():
            return

        def generate() -> Iterator[Segment]:
            needed = self.left.requires
            for right in self.right.eval(ctx, sp, refs):
                ctx.tick()
                probe = SearchSpace.exact(right.start, right.end)
                child_refs = dict(refs)
                child_refs.update(right.payload)
                key = (self.left.op_id, probe, refs_key(child_refs, needed))
                lefts = ctx.probe_cache_get(key)
                if lefts is None:
                    ctx.stats["probe_calls"] += 1
                    ctx.count(self, "probe_cache_misses")
                    lefts = list(self.left.eval(ctx, probe, child_refs))
                    ctx.probe_cache_put(key, lefts)
                else:
                    ctx.stats["probe_cache_hits"] += 1
                    ctx.count(self, "probe_cache_hits")
                for left in lefts:
                    yield from self._join(ctx, sp, right, left)

        yield from dedupe(generate())


class SortMergeOr(PhysicalOperator):
    """Union of both children's matches within the search space."""

    name = "SortMergeOr"

    def __init__(self, left: PhysicalOperator, right: PhysicalOperator,
                 window: WindowConjunction,
                 publish: FrozenSet[str] = frozenset(),
                 requires: FrozenSet[str] = frozenset()):
        super().__init__(window, publish=publish, requires=requires)
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        self.check_refs(refs)
        sp = sp.clamp(len(ctx.series))
        if sp.is_empty():
            return

        def generate() -> Iterator[Segment]:
            for child in (self.left, self.right):
                for segment in child.eval(ctx, sp, refs):
                    ctx.tick()
                    if not self.window.accepts(ctx.series, segment.start,
                                               segment.end):
                        continue
                    ctx.stats["segments_emitted"] += 1
                    yield self.emit(segment)

        yield from dedupe(generate())
