"""Filter physical operator (Section 4.4.1).

A :class:`FilterOp` carries *lifted* conditions: conditions whose owning
variables were replaced by unfiltered leaves (``SegGenWindow``) deeper in
the tree, typically because a Sort-Merge join's children must be
independent, or because sibling sub-patterns reference each other
cyclically.  Each condition is evaluated against its owner's segment taken
from the flowing segment's payload (Figure 6) — like evaluating a join
predicate that could not be pushed down.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Tuple

from repro.exec.base import Env, ExecContext, PhysicalOperator
from repro.lang import expr as E
from repro.lang.windows import WindowConjunction
from repro.plan.search_space import SearchSpace
from repro.timeseries.segment import Segment

#: One lifted condition: (owner variable name, condition expression).
LiftedCondition = Tuple[str, E.Expr]


class FilterOp(PhysicalOperator):
    """Evaluate lifted conditions on segments produced by the child."""

    name = "Filter"

    def __init__(self, child: PhysicalOperator,
                 conditions: List[LiftedCondition],
                 window: WindowConjunction, use_index: bool = True,
                 publish: FrozenSet[str] = frozenset(),
                 requires: FrozenSet[str] = frozenset()):
        super().__init__(window, publish=publish, requires=requires)
        self.child = child
        self.conditions = list(conditions)
        self.use_index = use_index

    def children(self):
        return (self.child,)

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        self.check_refs(refs)
        sp = sp.clamp(len(ctx.series))
        if sp.is_empty():
            return
        provider = ctx.indexed_provider if self.use_index \
            else ctx.direct_provider
        for segment in self.child.eval(ctx, sp, refs):
            ctx.tick()
            env = dict(refs)
            env.update(segment.payload)
            if self._passes(ctx, segment, env, provider):
                ctx.stats["segments_emitted"] += 1
                yield self.emit(segment)

    def _passes(self, ctx: ExecContext, segment: Segment, env: Env,
                provider: E.AggregateProvider) -> bool:
        # trex: no-tick(bounded by the query's lifted condition count)
        for owner, condition in self.conditions:
            owner_segment = env.get(owner, segment.bounds)
            ectx = E.EvalContext(ctx.series, owner_segment[0],
                                 owner_segment[1], variable=owner, refs=env,
                                 provider=provider, registry=ctx.registry)
            ctx.stats["condition_evals"] += 1
            ctx.count(self, "condition_evals")
            if not E.evaluate_condition(condition, ectx):
                return False
        return True

    def describe(self) -> str:
        owners = ", ".join(owner for owner, _ in self.conditions)
        return f"{self.name}({owners})"
