"""Segment Generators — leaf physical operators (Section 4.2).

* :class:`SegGenWindow` emits every windowed segment in the search space
  (window-only variables, e.g. wild padding ``W``);
* :class:`SegGenFilter` additionally evaluates the embedded variable's
  condition directly per segment;
* :class:`SegGenIndexing` evaluates the condition through shared aggregate
  indexes (``index()``/``lookup()``), amortizing aggregate work across
  overlapping segments.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Tuple

from repro.exec import vector
from repro.exec.base import Env, ExecContext, PhysicalOperator
from repro.lang import expr as E
from repro.lang.query import VarDef
from repro.lang.windows import WindowConjunction
from repro.plan.search_space import SearchSpace
from repro.timeseries.segment import Segment


class SegGenWindow(PhysicalOperator):
    """Emit all windowed segments in the search space (no condition)."""

    name = "SegGenWindow"

    def __init__(self, window: WindowConjunction, var_name: str = "",
                 publish: FrozenSet[str] = frozenset()):
        super().__init__(window, publish=publish)
        self.var_name = var_name

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        sp = sp.clamp(len(ctx.series))
        if sp.is_empty():
            return
        payload_name = self.var_name if self.var_name in self.publish else None
        metrics = ctx.metrics
        record = metrics.for_op(self) if metrics is not None else None
        for start, end in self.window.iterate_box(ctx.series, sp.s_lo, sp.s_hi,
                                              sp.e_lo, sp.e_hi):
            ctx.tick()
            ctx.stats["segments_emitted"] += 1
            if record is not None:
                record.counters["segments_emitted"] += 1
            if payload_name is not None:
                yield Segment(start, end, {payload_name: (start, end)})
            else:
                yield Segment(start, end)

    def describe(self) -> str:
        label = f"({self.var_name})" if self.var_name else ""
        return f"{self.name}{label}"


class _ConditionLeaf(PhysicalOperator):
    """Shared plumbing for condition-evaluating leaves."""

    #: Which aggregate-provider semantics the vector kernels must mirror
    #: ("direct" or "indexed"); see :func:`repro.exec.vector.try_eval`.
    vector_provider = "direct"

    def __init__(self, var: VarDef, window: WindowConjunction,
                 publish: FrozenSet[str] = frozenset()):
        super().__init__(window, publish=publish,
                         requires=frozenset(var.external_refs))
        self.var = var

    def _provider(self, ctx: ExecContext) -> E.AggregateProvider:
        raise NotImplementedError

    def eval(self, ctx: ExecContext, sp: SearchSpace,
             refs: Env) -> Iterator[Segment]:
        self.check_refs(refs)
        sp = sp.clamp(len(ctx.series))
        if sp.is_empty():
            return
        provider = self._provider(ctx)
        var = self.var
        is_point = not var.is_segment
        publish_self = var.name in self.publish
        # Hoisted metric sink: one is-None check per candidate when off.
        metrics = ctx.metrics
        record = metrics.for_op(self) if metrics is not None else None
        batched = vector.try_eval(self, ctx, sp, refs, record,
                                  self.vector_provider)
        if batched is not None:
            yield from batched
            return
        if is_point:
            # Point variables only ever match start == end: enumerate the
            # diagonal of the boxed space directly instead of walking the
            # full start x end box and discarding off-diagonal candidates,
            # which burned tick/deadline budget quadratically.
            candidates = self._iter_diagonal(ctx, sp)
        else:
            candidates = self.window.iterate_box(ctx.series, sp.s_lo, sp.s_hi,
                                                 sp.e_lo, sp.e_hi)
        for start, end in candidates:
            ctx.tick()
            ectx = E.EvalContext(ctx.series, start, end, variable=var.name,
                                 refs=refs, provider=provider,
                                 registry=ctx.registry)
            ctx.stats["condition_evals"] += 1
            if record is not None:
                record.counters["condition_evals"] += 1
            if E.evaluate_condition(var.condition, ectx):
                ctx.stats["segments_emitted"] += 1
                if record is not None:
                    record.counters["segments_emitted"] += 1
                if publish_self:
                    yield Segment(start, end, {var.name: (start, end)})
                else:
                    yield Segment(start, end)

    def _iter_diagonal(self, ctx: ExecContext,
                       sp: SearchSpace) -> Iterator[Tuple[int, int]]:
        """Admissible ``(i, i)`` pairs, ascending (sorted by start and end)."""
        series = ctx.series
        accepts = self.window.accepts
        for i in range(max(sp.s_lo, sp.e_lo), min(sp.s_hi, sp.e_hi) + 1):
            # Tick per candidate, not per acceptance: a window rejecting
            # every diagonal point would otherwise spin untimed.
            ctx.tick()
            if accepts(series, i, i):
                yield i, i

    def describe(self) -> str:
        return f"{self.name}({self.var.name})"


class SegGenFilter(_ConditionLeaf):
    """Leaf that evaluates the variable's condition directly per segment."""

    name = "SegGenFilter"
    vector_provider = "direct"

    def _provider(self, ctx: ExecContext) -> E.AggregateProvider:
        return ctx.direct_provider


class SegGenIndexing(_ConditionLeaf):
    """Leaf that answers aggregate conditions from shared indexes."""

    name = "SegGenIndexing"
    vector_provider = "indexed"

    def _provider(self, ctx: ExecContext) -> E.AggregateProvider:
        return ctx.indexed_provider
