"""Time-series substrate: series, tables, segments and time units.

The executor operates over :class:`Series` objects — in-memory, columnar,
ordered collections of points.  A :class:`Table` is the relational input from
which series are constructed according to a query's ``PARTITION BY`` /
``ORDER BY`` clauses.  A :class:`Segment` is a contiguous ``[start, end]``
index range of one series, optionally carrying a payload of referenced
sub-matches (Section 4.1 of the paper).
"""

from repro.timeseries.segment import Segment
from repro.timeseries.series import Series
from repro.timeseries.table import Table
from repro.timeseries.timeunits import UNIT_SECONDS, to_base_units

__all__ = ["Segment", "Series", "Table", "UNIT_SECONDS", "to_base_units"]
