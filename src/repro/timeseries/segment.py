"""Segments: the unit of data flowing through the T-ReX executor.

A segment is a contiguous ``[start, end]`` (inclusive) index range of one
series.  Physical operators exchange :class:`Segment` objects; a segment may
carry a *payload* mapping variable names to the sub-segments they matched,
which implements the reference-passing mechanism of Section 4.1.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class Segment:
    """A matched segment ``[start, end]`` with an optional payload.

    The payload maps variable names to ``(start, end)`` tuples of the
    segments matched by referenced sub-patterns.  Payload entries travel up
    the plan tree until no operator above needs them (Section 4.1).

    Segments are immutable value objects: equality and hashing consider both
    the index range and the payload, so operators can deduplicate emissions
    without conflating matches that bound references differently.
    """

    __slots__ = ("start", "end", "_payload", "_hash")

    def __init__(self, start: int, end: int,
                 payload: Optional[Dict[str, Tuple[int, int]]] = None):
        if start > end:
            raise ValueError(f"segment start {start} > end {end}")
        self.start = int(start)
        self.end = int(end)
        self._payload = dict(payload) if payload else {}
        self._hash = None

    @property
    def payload(self) -> Dict[str, Tuple[int, int]]:
        """Referenced sub-matches carried by this segment (read-only view)."""
        return self._payload

    @property
    def bounds(self) -> Tuple[int, int]:
        """The ``(start, end)`` tuple."""
        return (self.start, self.end)

    @property
    def duration(self) -> int:
        """Index-space duration ``end - start`` (0 for a single point)."""
        return self.end - self.start

    @property
    def num_points(self) -> int:
        """Number of points covered, ``end - start + 1``."""
        return self.end - self.start + 1

    def is_point(self) -> bool:
        """True when the segment covers exactly one point."""
        return self.start == self.end

    def with_payload(self, extra: Dict[str, Tuple[int, int]]) -> "Segment":
        """Return a copy with ``extra`` merged into the payload."""
        if not extra:
            return self
        merged = dict(self._payload)
        merged.update(extra)
        return Segment(self.start, self.end, merged)

    def without_payload(self) -> "Segment":
        """Return a payload-free copy (used once references are consumed)."""
        if not self._payload:
            return self
        return Segment(self.start, self.end)

    def project_payload(self, keep: frozenset) -> "Segment":
        """Return a copy keeping only payload keys in ``keep``."""
        if not self._payload:
            return self
        kept = {k: v for k, v in self._payload.items() if k in keep}
        if len(kept) == len(self._payload):
            return self
        return Segment(self.start, self.end, kept)

    def payload_key(self) -> Tuple[Tuple[str, Tuple[int, int]], ...]:
        """A hashable canonical form of the payload."""
        return tuple(sorted(self._payload.items()))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Segment):
            return NotImplemented
        return (self.start == other.start and self.end == other.end
                and self._payload == other._payload)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.start, self.end, self.payload_key()))
        return self._hash

    def __repr__(self) -> str:
        if self._payload:
            refs = ", ".join(f"{k}={v}"
                             for k, v in sorted(self._payload.items()))
            return f"Segment[{self.start}, {self.end}; {refs}]"
        return f"Segment[{self.start}, {self.end}]"
