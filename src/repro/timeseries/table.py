"""Relational input tables and PARTITION BY / ORDER BY series construction."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import DataError
from repro.timeseries.series import Series, concat_keys


class Table:
    """A columnar relational table of timestamped records.

    This is the substrate the query's ``PARTITION BY`` / ``ORDER BY`` clauses
    operate on: :meth:`partition` groups rows by the partition columns, sorts
    each group by the order column and yields one :class:`Series` per group
    (Section 3, "Time Series Data Model").
    """

    def __init__(self, columns: Dict[str, Sequence], time_unit: str = "DAY",
                 nan_policy: str = "allow"):
        if nan_policy not in Series.NAN_POLICIES:
            raise DataError(f"nan_policy must be one of "
                            f"{Series.NAN_POLICIES}, got {nan_policy!r}")
        self._columns: Dict[str, np.ndarray] = {}
        length = None
        for name, values in columns.items():
            arr = np.asarray(values)
            if arr.ndim != 1:
                raise DataError(f"column {name!r} must be 1-D")
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise DataError(f"column {name!r} has length {len(arr)}, "
                                f"expected {length}")
            self._columns[name] = arr
        if length is None:
            raise DataError("a table needs at least one column")
        self._length = length
        self.time_unit = time_unit
        #: Non-finite handling threaded into every Series this table
        #: partitions into (see :class:`Series` for the semantics).
        self.nan_policy = nan_policy

    def __len__(self) -> int:
        return self._length

    @property
    def column_names(self) -> List[str]:
        return sorted(self._columns)

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise DataError(f"unknown column {name!r}; available: "
                            f"{self.column_names}") from None

    def partition(self, partition_by: Optional[Sequence[str]],
                  order_by: str) -> List[Series]:
        """Build one ordered :class:`Series` per partition key.

        ``partition_by`` may be ``None`` or empty for single-series tables.
        Partitions are returned in deterministic (sorted key) order.
        """
        if order_by not in self._columns:
            raise DataError(f"ORDER BY column {order_by!r} not in table")
        partition_by = list(partition_by or [])
        for name in partition_by:
            if name not in self._columns:
                raise DataError(f"PARTITION BY column {name!r} not in table")

        if not partition_by:
            order = np.argsort(self._columns[order_by], kind="stable")
            columns = {name: arr[order] for name, arr in self._columns.items()}
            return [Series(columns, order_by, key=(),
                           time_unit=self.time_unit,
                           nan_policy=self.nan_policy)]

        groups: Dict[tuple, List[int]] = {}
        key_arrays = [self._columns[name] for name in partition_by]
        for row in range(self._length):
            key = tuple(arr[row] for arr in key_arrays)
            groups.setdefault(key, []).append(row)

        series_list: List[Series] = []
        for key in concat_keys(groups):
            rows = np.asarray(groups[key], dtype=np.int64)
            order = np.argsort(self._columns[order_by][rows], kind="stable")
            rows = rows[order]
            columns = {name: arr[rows] for name, arr in self._columns.items()}
            series_list.append(
                Series(columns, order_by, key=key, time_unit=self.time_unit,
                       nan_policy=self.nan_policy))
        return series_list

    @classmethod
    def from_series(cls, series_list: Sequence[Series],
                    partition_column: str = "series_id") -> "Table":
        """Flatten already-built series back into one table (testing aid)."""
        if not series_list:
            raise DataError("no series given")
        names = set(series_list[0].column_names)
        columns: Dict[str, list] = {name: [] for name in names}
        keys: List[object] = []
        for idx, series in enumerate(series_list):
            if set(series.column_names) != names:
                raise DataError("series have inconsistent columns")
            for name in names:
                columns[name].extend(series.column(name).tolist())
            label = series.key[0] if series.key else idx
            keys.extend([label] * len(series))
        columns[partition_column] = keys
        return cls(columns, time_unit=series_list[0].time_unit)

    def __repr__(self) -> str:
        return f"Table(n={self._length}, columns={self.column_names})"
