"""Time-unit handling for window conditions.

Timestamps in this library are plain numbers.  Datasets choose their own
base resolution (e.g. the weather dataset stores one point per day with
``tstamp`` counted in days; the NASDAQ dataset counts seconds).  A window
such as ``window(tstamp, 25, 30, DAY)`` is converted into the timestamp
column's units using the conversion table below together with the series'
declared ``time_unit``.
"""

from __future__ import annotations

from repro.errors import DataError

#: Seconds per named unit.  ``POINT`` is a pseudo-unit used by point-based
#: windows and never reaches this table.
UNIT_SECONDS = {
    "SECOND": 1.0,
    "MINUTE": 60.0,
    "HOUR": 3600.0,
    "DAY": 86400.0,
    "WEEK": 7 * 86400.0,
}


def to_base_units(value: float, unit: str, series_unit: str) -> float:
    """Convert ``value`` expressed in ``unit`` into a series' native units.

    ``series_unit`` is the unit in which the series' timestamp column is
    counted (one of the keys of :data:`UNIT_SECONDS`).  For example a value
    of ``5`` with ``unit='DAY'`` on a series whose timestamps count hours
    becomes ``120.0``.
    """
    try:
        numerator = UNIT_SECONDS[unit.upper()]
    except KeyError:
        raise DataError(f"unknown time unit {unit!r}") from None
    try:
        denominator = UNIT_SECONDS[series_unit.upper()]
    except KeyError:
        raise DataError(f"unknown series time unit {series_unit!r}") from None
    return value * numerator / denominator
