"""In-memory columnar time series.

A :class:`Series` stores one ordered partition of the input data.  Columns
are numpy arrays; one column is designated the *order column* (typically the
timestamp) and must be non-decreasing.  Segments address the series by
integer index positions, so a segment ``[i, j]`` can be sliced in O(1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import DataError


class Series:
    """One ordered time series partition.

    Parameters
    ----------
    columns:
        Mapping of column name to a 1-D sequence of values.  Numeric columns
        are stored as ``float64`` numpy arrays; non-numeric columns (e.g.
        string tickers) are stored as object arrays and may only be used in
        equality conditions.
    order_column:
        Name of the column the series is ordered by (must be non-decreasing).
    key:
        Partition key value(s), kept for labeling results.
    time_unit:
        Unit in which the order column counts time (``'DAY'``, ``'HOUR'``,
        ...).  Used to convert time-based window bounds.
    nan_policy:
        What to do with non-finite values (NaN/±inf) in numeric columns:
        ``'allow'`` (default) keeps them — aggregates then see them
        verbatim; ``'raise'`` rejects the series with a
        :class:`~repro.errors.DataError` naming the first offending cell;
        ``'omit'`` masks out every row that has a non-finite value in any
        numeric column.  See docs/ROBUSTNESS.md.
    """

    NAN_POLICIES = ("allow", "raise", "omit")

    def __init__(self, columns: Dict[str, Sequence], order_column: str,
                 key: Optional[tuple] = None, time_unit: str = "DAY",
                 nan_policy: str = "allow"):
        if order_column not in columns:
            raise DataError(
                f"order column {order_column!r} missing from columns "
                            f"{sorted(columns)}")
        if nan_policy not in self.NAN_POLICIES:
            raise DataError(f"nan_policy must be one of "
                            f"{self.NAN_POLICIES}, got {nan_policy!r}")
        self._columns: Dict[str, np.ndarray] = {}
        length = None
        for name, values in columns.items():
            arr = self._to_array(name, values)
            if length is None:
                length = len(arr)
            elif len(arr) != length:
                raise DataError(f"column {name!r} has length {len(arr)}, "
                                f"expected {length}")
            self._columns[name] = arr
        if nan_policy != "allow":
            self._apply_nan_policy(nan_policy, key)
        self.order_column = order_column
        self.key = key if key is not None else ()
        self.time_unit = time_unit
        order = self._columns[order_column]
        if len(order) > 1 and np.any(np.diff(order.astype(np.float64)) < 0):
            raise DataError(f"order column {order_column!r} is not sorted for "
                            f"partition {key!r}")

    def _apply_nan_policy(self, nan_policy: str,
                          key: Optional[tuple]) -> None:
        keep: Optional[np.ndarray] = None
        for name in sorted(self._columns):
            arr = self._columns[name]
            if arr.dtype.kind != "f":
                continue
            finite = np.isfinite(arr)
            if finite.all():
                continue
            if nan_policy == "raise":
                row = int(np.flatnonzero(~finite)[0])
                raise DataError(
                    f"column {name!r} has a non-finite value at row {row} "
                    f"for partition {key!r} (nan_policy='raise'); load "
                    f"with nan_policy='omit' to mask such rows")
            keep = finite if keep is None else (keep & finite)
        if keep is not None:
            self._columns = {name: arr[keep]
                             for name, arr in self._columns.items()}

    @staticmethod
    def _to_array(name: str, values: Sequence) -> np.ndarray:
        arr = np.asarray(values)
        if arr.ndim != 1:
            raise DataError(
                f"column {name!r} must be 1-D, got shape {arr.shape}")
        if arr.dtype.kind in "iuf b".replace(" ", ""):
            return arr.astype(np.float64)
        return arr.astype(object)

    def __len__(self) -> int:
        return len(self._columns[self.order_column])

    @property
    def column_names(self) -> List[str]:
        """Names of all columns, sorted for determinism."""
        return sorted(self._columns)

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> np.ndarray:
        """The full array for a column."""
        try:
            return self._columns[name]
        except KeyError:
            raise DataError(f"unknown column {name!r}; available: "
                            f"{self.column_names}") from None

    def is_numeric(self, name: str) -> bool:
        """Whether ``name`` exists and is stored as a float64 column."""
        arr = self._columns.get(name)
        return arr is not None and arr.dtype == np.float64

    def float_column(self, name: str) -> np.ndarray:
        """The contiguous float64 buffer for a numeric column.

        The vectorized kernels (``repro.exec.vector``) index these
        arrays wholesale; construction already stores numeric columns as
        C-contiguous float64 (:meth:`_to_array`), so this is a dict
        lookup plus a dtype guard, never a copy.
        """
        arr = self.column(name)
        if arr.dtype != np.float64:
            numeric = [c for c in self.column_names if self.is_numeric(c)]
            raise DataError(f"column {name!r} is not numeric; numeric "
                            f"columns: {numeric}")
        return arr

    def values(self, name: str, start: int, end: int) -> np.ndarray:
        """Values of ``name`` over the inclusive segment ``[start, end]``."""
        return self._columns[name][start:end + 1]

    def value_at(self, name: str, index: int) -> object:
        """Single value of column ``name`` at ``index``."""
        try:
            return self._columns[name][index]
        except KeyError:
            raise DataError(f"unknown column {name!r}; available: "
                            f"{self.column_names}") from None

    @property
    def timestamps(self) -> np.ndarray:
        """The order column's values."""
        return self._columns[self.order_column]

    def duration(self, start: int, end: int) -> float:
        """Time-duration of the inclusive segment ``[start, end]``."""
        order = self._columns[self.order_column]
        return float(order[end] - order[start])

    def label(self) -> str:
        """Human-readable partition label."""
        if not self.key:
            return "<series>"
        return "/".join(str(part) for part in self.key)

    def __repr__(self) -> str:
        return (f"Series(key={self.key!r}, n={len(self)}, "
                f"columns={self.column_names})")


def concat_keys(keys: Iterable[tuple]) -> List[tuple]:
    """Stable, deterministic ordering of partition keys."""
    return sorted(keys, key=lambda k: tuple(str(part) for part in k))
