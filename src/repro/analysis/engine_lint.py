"""Engine contract analyzer: TRX3xx/4xx/5xx checks over engine source.

``repro lint --engine`` turns the runtime contracts the engine's
correctness story rests on into static checks that run on every commit:

* **TRX3xx — budget coverage.**  Every function reachable from an
  operator ``eval`` or aggregate ``lookup``-family root must call
  ``ctx.tick()`` in its hot loops (cooperative deadline checks) and
  ``ctx.charge()`` where segments accumulate (``max_segments``).
* **TRX4xx — determinism.**  Serial, thread and process backends must
  stay byte-identical, so exec/core/aggregates code must not iterate
  sets, yield in dict order, order by ``id()`` or read clocks and
  environment outside the engine boundary.
* **TRX5xx — numeric safety.**  Aggregates must not compare floats
  with bare ``==``/``!=`` outside the registered bitwise-exact sites,
  and float accumulation loops need a NaN story.

The analysis is deliberately *lite*: a name-based call graph with a
ticking fixpoint, not a real CFG.  Where it cannot prove a loop ticks
it emits a warning (TRX303) instead of an error, and every suppression
— pragma or registry — is recorded in the report so exemptions stay
auditable.  See ``docs/ENGINE_CONTRACTS.md``.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import astutil, contracts
from repro.analysis.diagnostics import Diagnostic, Severity, Span

_SEVERITIES = {
    "TRX300": Severity.ERROR,
    "TRX301": Severity.ERROR,
    "TRX302": Severity.ERROR,
    "TRX303": Severity.WARNING,
    "TRX401": Severity.ERROR,
    "TRX402": Severity.WARNING,
    "TRX403": Severity.ERROR,
    "TRX404": Severity.ERROR,
    "TRX501": Severity.ERROR,
    "TRX502": Severity.WARNING,
}

#: Diagnostic code -> pragma rule that may suppress it.
_CODE_TO_RULE = {code: rule
                 for rule, codes in contracts.PRAGMA_RULES.items()
                 for code in codes}


@dataclass
class Suppression:
    """One recorded exemption (pragma or registry entry)."""

    kind: str  # "pragma" | "registry"
    code: str
    file: str
    line: int
    owner: str
    reason: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "code": self.code, "file": self.file,
                "line": self.line, "owner": self.owner,
                "reason": self.reason}


@dataclass
class EngineLintReport:
    """Findings plus recorded suppressions for one analyzer run."""

    findings: List[Tuple[str, Diagnostic]] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for _, diag in self.findings if diag.is_error)

    @property
    def warnings(self) -> int:
        return sum(1 for _, diag in self.findings if not diag.is_error)

    def summary(self) -> str:
        return (f"engine-lint: {self.errors} error(s), "
                f"{self.warnings} warning(s), "
                f"{len(self.suppressions)} suppression(s) across "
                f"{self.files_checked} file(s)")


@dataclass
class _Corpus:
    modules: Dict[str, astutil.ModuleInfo]
    by_name: Dict[str, List[astutil.FunctionInfo]]
    class_inits: Dict[str, List[astutil.FunctionInfo]]

    @property
    def functions(self) -> List[astutil.FunctionInfo]:
        return [func for module in self.modules.values()
                for func in module.functions]


def _build_corpus(
        modules: Dict[str, astutil.ModuleInfo]) -> _Corpus:
    by_name: Dict[str, List[astutil.FunctionInfo]] = {}
    class_inits: Dict[str, List[astutil.FunctionInfo]] = {}
    for module in modules.values():
        for func in module.functions:
            by_name.setdefault(func.name, []).append(func)
            if func.name == "__init__" and func.class_name:
                class_inits.setdefault(func.class_name, []).append(func)
    return _Corpus(modules, by_name, class_inits)


def _func_key(func: astutil.FunctionInfo) -> Tuple[str, str]:
    return (func.relpath, func.qualname)


def _ticking_names(corpus: _Corpus) -> Set[str]:
    """Fixpoint of call names that transitively reach ``ctx.tick()``.

    A name is *ticking* when some corpus function (or class, through
    its ``__init__``) with that name contains a tick call or a call to
    another ticking name.  Optimistic on name collisions — this is a
    lint, not a verifier; TRX303 covers the unprovable remainder.
    """
    ticking: Set[Tuple[str, str]] = set()
    pending = corpus.functions
    changed = True
    while changed:
        changed = False
        names = _names_of(corpus, ticking)
        for func in pending:
            if _func_key(func) in ticking:
                continue
            if func.calls & astutil.TICK_CALL_NAMES or \
                    func.calls & names:
                ticking.add(_func_key(func))
                changed = True
    return _names_of(corpus, ticking)


def _names_of(corpus: _Corpus,
              ticking: Set[Tuple[str, str]]) -> Set[str]:
    names: Set[str] = set()
    for func in corpus.functions:
        if _func_key(func) in ticking:
            names.add(func.name)
            if func.name == "__init__" and func.class_name:
                names.add(func.class_name)
    return names


def _reachable(corpus: _Corpus) -> Set[Tuple[str, str]]:
    """Functions reachable from the per-package TICK_ROOTS by name."""
    frontier: List[astutil.FunctionInfo] = []
    for module in corpus.modules.values():
        roots = contracts.TICK_ROOTS.get(module.package, frozenset())
        frontier.extend(f for f in module.functions if f.name in roots)
    seen: Set[Tuple[str, str]] = {_func_key(f) for f in frontier}
    while frontier:
        func = frontier.pop()
        for name in func.calls:
            targets = list(corpus.by_name.get(name, ()))
            targets.extend(corpus.class_inits.get(name, ()))
            for target in targets:
                key = _func_key(target)
                if key not in seen:
                    seen.add(key)
                    frontier.append(target)
    return seen


def _local_ticking(func: astutil.FunctionInfo,
                   global_names: Set[str]) -> Set[str]:
    """Nested-def names of ``func`` that transitively tick.

    Generator closures (``generate()``, ``advance()``) execute as part
    of the enclosing operator; their recursion is invisible to the
    corpus-level graph, so resolve it locally.
    """
    nested = {node.name: astutil.collect_call_names(node)
              for node in astutil.nested_function_defs(func.node)}
    ticking: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, calls in nested.items():
            if name in ticking:
                continue
            if calls & astutil.TICK_CALL_NAMES \
                    or calls & global_names or calls & ticking:
                ticking.add(name)
                changed = True
    return ticking


def _loop_is_ticked(loop: astutil.LoopSite,
                    ticking_names: Set[str]) -> bool:
    if astutil.is_constant_iterable(loop.iter_expr):
        return True
    names = astutil.collect_call_names(loop.node)
    return bool(names & astutil.TICK_CALL_NAMES
                or names & ticking_names)


def _body_yields(loop: ast.For) -> bool:
    """Does the loop body yield (its order then feeds result order)?"""
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
    return False


@dataclass
class _Finding:
    relpath: str
    code: str
    message: str
    line: int
    column: int
    owner: str
    hint: Optional[str] = None


class _Analyzer:
    """One analysis run over a set of parsed engine modules."""

    def __init__(self, modules: Dict[str, astutil.ModuleInfo]) -> None:
        self.corpus = _build_corpus(modules)
        self.findings: List[_Finding] = []
        self.suppressions: List[Suppression] = []

    def run(self) -> EngineLintReport:
        ticking = _ticking_names(self.corpus)
        reachable = _reachable(self.corpus)
        for module in self.corpus.modules.values():
            self._check_pragmas(module)
            for func in module.functions:
                if module.package in contracts.BUDGET_SCOPE \
                        and _func_key(func) in reachable:
                    self._check_budget(module, func, ticking)
                if module.package in contracts.DETERMINISM_SCOPE:
                    self._check_determinism(module, func)
                if module.package in contracts.NUMERIC_SCOPE:
                    self._check_numeric(module, func)
        return self._finish()

    # -- TRX300: pragma hygiene ---------------------------------------------

    def _check_pragmas(self, module: astutil.ModuleInfo) -> None:
        for pragma in module.pragmas:
            if pragma.rule not in contracts.PRAGMA_RULES:
                self._emit(module.relpath, "TRX300",
                           f"unknown pragma rule {pragma.rule!r}",
                           pragma.line, 1, pragma.rule,
                           hint="valid rules: " + ", ".join(
                               sorted(contracts.PRAGMA_RULES)))
            elif not pragma.reason:
                self._emit(module.relpath, "TRX300",
                           f"pragma {pragma.rule!r} carries no reason",
                           pragma.line, 1, pragma.rule,
                           hint="write # trex: "
                                f"{pragma.rule}(<why this is safe>)")

    # -- TRX3xx: budget contract --------------------------------------------

    def _check_budget(self, module: astutil.ModuleInfo,
                      func: astutil.FunctionInfo,
                      ticking: Set[str]) -> None:
        local = _local_ticking(func, ticking)
        effective = ticking | local
        unticked = [loop for loop in astutil.function_loops(func.node)
                    if not _loop_is_ticked(loop, effective)]
        has_ctx = astutil.uses_exec_context(func)
        if unticked and has_ctx:
            for loop in unticked:
                self._emit(
                    module.relpath, "TRX301",
                    f"loop in {func.qualname} has no ctx.tick() on "
                    f"any path",
                    loop.lineno,
                    getattr(loop.node, "col_offset", 0) + 1,
                    func.qualname,
                    hint="tick() each iteration, or annotate "
                         "# trex: no-tick(<reason>)")
        elif unticked:
            self._emit(
                module.relpath, "TRX303",
                f"{func.qualname} is reachable from an engine entry "
                f"point but has loops the analyzer cannot prove "
                f"ticked (no execution context in scope)",
                func.lineno, func.node.col_offset + 1, func.qualname,
                hint="thread a ctx through, or annotate "
                     "# trex: no-tick(<reason>) on the def line")
        if module.package in contracts.CHARGE_SCOPE and has_ctx:
            self._check_charges(module, func)

    def _check_charges(self, module: astutil.ModuleInfo,
                       func: astutil.FunctionInfo) -> None:
        if func.calls & astutil.CHARGE_CALL_NAMES:
            return
        for loop in astutil.function_loops(func.node):
            names = astutil.collect_call_names(loop.node)
            if names & astutil.MATERIALIZE_CALL_NAMES:
                self._emit(
                    module.relpath, "TRX302",
                    f"{func.qualname} materializes segments in a "
                    f"loop but never charges the segment budget",
                    func.lineno, func.node.col_offset + 1,
                    func.qualname,
                    hint="guard accumulation with `if "
                         "ctx.segment_budget is not None: "
                         "ctx.charge()`, or annotate "
                         "# trex: no-charge(<reason>)")
                return

    # -- TRX4xx: determinism -------------------------------------------------

    def _check_determinism(self, module: astutil.ModuleInfo,
                           func: astutil.FunctionInfo) -> None:
        set_names = astutil.set_valued_names(func.node)
        boundary = module.relpath in contracts.CLOCK_BOUNDARY_FILES \
            or (module.relpath, func.qualname) in \
            contracts.CLOCK_BOUNDARY_FUNCTIONS
        for node in ast.walk(func.node):
            if isinstance(node, ast.For):
                self._check_for_iterable(module, func, node, set_names)
            elif isinstance(node, ast.Compare):
                self._check_identity_compare(module, func, node)
            elif isinstance(node, ast.Call):
                self._check_sort_key(module, func, node)
            elif not boundary and isinstance(node, ast.Attribute):
                self._check_clock_read(module, func, node)

    def _check_for_iterable(self, module: astutil.ModuleInfo,
                            func: astutil.FunctionInfo, node: ast.For,
                            set_names: Set[str]) -> None:
        target = astutil.strip_transparent_wrappers(node.iter)
        is_set = astutil._is_set_expr(target) or (
            isinstance(target, ast.Name) and target.id in set_names)
        if is_set:
            self._emit(
                module.relpath, "TRX401",
                f"{func.qualname} iterates a set; element order is "
                f"nondeterministic across processes",
                node.lineno, node.col_offset + 1, func.qualname,
                hint="iterate sorted(...) or keep a list alongside "
                     "the set")
            return
        if isinstance(target, ast.Call) \
                and isinstance(target.func, ast.Attribute) \
                and target.func.attr in ("items", "keys", "values") \
                and _body_yields(node):
            self._emit(
                module.relpath, "TRX402",
                f"{func.qualname} yields while iterating dict "
                f".{target.func.attr}(); insertion order becomes "
                f"result order",
                node.lineno, node.col_offset + 1, func.qualname,
                hint="sort the keys, or document why insertion order "
                     "is already canonical")

    def _check_identity_compare(self, module: astutil.ModuleInfo,
                                func: astutil.FunctionInfo,
                                node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for operand in operands:
            for call in astutil.iter_calls(operand):
                if astutil.call_name(call) == "id":
                    self._emit(
                        module.relpath, "TRX403",
                        f"{func.qualname} compares object identities "
                        f"(id()); CPython addresses differ across "
                        f"processes",
                        node.lineno, node.col_offset + 1,
                        func.qualname,
                        hint="compare stable keys (op_id, bounds) "
                             "instead")
                    return

    def _check_sort_key(self, module: astutil.ModuleInfo,
                        func: astutil.FunctionInfo,
                        node: ast.Call) -> None:
        if astutil.call_name(node) not in ("sorted", "sort", "min",
                                           "max"):
            return
        for keyword in node.keywords:
            if keyword.arg == "key" \
                    and "id" in astutil.collect_call_names(
                        keyword.value):
                self._emit(
                    module.relpath, "TRX403",
                    f"{func.qualname} orders by id(); the order "
                    f"changes run to run",
                    node.lineno, node.col_offset + 1, func.qualname,
                    hint="order by a stable attribute instead")

    def _check_clock_read(self, module: astutil.ModuleInfo,
                          func: astutil.FunctionInfo,
                          node: ast.Attribute) -> None:
        path = astutil.dotted_name(node)
        if path is None:
            return
        nondeterministic = (
            path.startswith("time.") or path.startswith("random.")
            or path == "os.environ" or path.startswith("os.environ."))
        if nondeterministic:
            self._emit(
                module.relpath, "TRX404",
                f"{func.qualname} reads {path} outside the engine "
                f"boundary",
                node.lineno, node.col_offset + 1, func.qualname,
                hint="receive time/config through the ExecContext or "
                     "engine options; see contracts.CLOCK_BOUNDARY_*")

    # -- TRX5xx: numeric safety ----------------------------------------------

    def _check_numeric(self, module: astutil.ModuleInfo,
                       func: astutil.FunctionInfo) -> None:
        float_names = self._float_names(func)
        exact_site = self._exact_site(module, func)
        for node in ast.walk(func.node):
            if isinstance(node, ast.Compare):
                self._check_float_equality(
                    module, func, node, float_names, exact_site)
        self._check_accumulations(module, func, float_names)

    def _float_names(self, func: astutil.FunctionInfo) -> Set[str]:
        names = astutil.assigned_names_from_calls(
            func.node, contracts.FLOAT_CALL_NAMES)
        names -= astutil.assigned_names_from_calls(
            func.node, contracts.INT_CALL_NAMES)
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Constant) \
                    and isinstance(node.value.value, float):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _exact_site(self, module: astutil.ModuleInfo,
                    func: astutil.FunctionInfo) -> Optional[str]:
        for path, qualname, reason in contracts.EXACT_FLOAT_SITES:
            if path == module.relpath and qualname == func.qualname:
                return reason
        return None

    def _is_floaty(self, expr: ast.expr, float_names: Set[str]) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in float_names \
                or expr.id in contracts.ARRAY_PARAM_NAMES
        if isinstance(expr, ast.Subscript):
            value = expr.value
            return isinstance(value, ast.Name) \
                and value.id in contracts.ARRAY_PARAM_NAMES
        if isinstance(expr, ast.Call):
            return astutil.call_name(expr) in contracts.FLOAT_CALL_NAMES
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, float)
        return False

    def _check_float_equality(self, module: astutil.ModuleInfo,
                              func: astutil.FunctionInfo,
                              node: ast.Compare,
                              float_names: Set[str],
                              exact_reason: Optional[str]) -> None:
        for left, right in astutil.float_comparison_operands(node):
            if not (self._is_floaty(left, float_names)
                    or self._is_floaty(right, float_names)):
                continue
            if exact_reason is not None:
                self.suppressions.append(Suppression(
                    "registry", "TRX501", module.relpath,
                    node.lineno, func.qualname, exact_reason))
                continue
            self._emit(
                module.relpath, "TRX501",
                f"{func.qualname} compares floats with bare ==/!= "
                f"outside the registered exact sites",
                node.lineno, node.col_offset + 1, func.qualname,
                hint="use a tolerance, or register the site in "
                     "contracts.EXACT_FLOAT_SITES / annotate "
                     "# trex: float-exact(<reason>)")

    def _check_accumulations(self, module: astutil.ModuleInfo,
                             func: astutil.FunctionInfo,
                             float_names: Set[str]) -> None:
        guarded = bool(func.calls & contracts.NAN_GUARD_CALL_NAMES)
        if guarded:
            return
        for loop in astutil.function_loops(func.node):
            for node in ast.walk(loop.node):
                if isinstance(node, ast.AugAssign) \
                        and isinstance(node.op, ast.Add) \
                        and isinstance(node.target, ast.Name) \
                        and node.target.id in float_names:
                    self._emit(
                        module.relpath, "TRX502",
                        f"{func.qualname} accumulates floats in a "
                        f"loop without a NaN guard",
                        node.lineno, node.col_offset + 1,
                        func.qualname,
                        hint="check isfinite/isnan, or annotate "
                             "# trex: nan-ok(<reason>) if NaN "
                             "propagation is intended")

    # -- plumbing ------------------------------------------------------------

    def _emit(self, relpath: str, code: str, message: str, line: int,
              column: int, owner: str,
              hint: Optional[str] = None) -> None:
        self.findings.append(
            _Finding(relpath, code, message, line, column, owner, hint))

    def _finish(self) -> EngineLintReport:
        report = EngineLintReport(
            files_checked=len(self.corpus.modules))
        report.suppressions.extend(self.suppressions)
        for finding in self.findings:
            pragma = self._covering_pragma(finding)
            if pragma is not None:
                report.suppressions.append(Suppression(
                    "pragma", finding.code, finding.relpath,
                    pragma.line, finding.owner, pragma.reason))
                continue
            diag = Diagnostic(
                code=finding.code,
                severity=_SEVERITIES[finding.code],
                message=finding.message,
                span=Span(finding.line, finding.column),
                hint=finding.hint,
                owner=finding.owner)
            report.findings.append((finding.relpath, diag))
        report.findings.sort(
            key=lambda item: (item[0], item[1].span.line
                              if item[1].span else 0, item[1].code))
        report.suppressions.sort(
            key=lambda s: (s.file, s.line, s.code))
        return report

    def _covering_pragma(
            self, finding: _Finding) -> Optional[astutil.Pragma]:
        rule = _CODE_TO_RULE.get(finding.code)
        if rule is None:  # TRX300 is never suppressible
            return None
        module = self.corpus.modules.get(finding.relpath)
        if module is None:
            return None
        pragmas = astutil.pragma_lines(module, rule)
        pragma = astutil.pragma_for_line(pragmas, finding.line)
        if pragma is not None and pragma.reason:
            return pragma
        return None


# -- entry points ------------------------------------------------------------


def engine_source_root(root: Optional[str] = None) -> str:
    """Directory containing the engine packages (``src/repro``)."""
    if root is not None:
        return root
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def collect_modules(root: str) -> Dict[str, astutil.ModuleInfo]:
    modules: Dict[str, astutil.ModuleInfo] = {}
    for package in contracts.CHECKED_PACKAGES:
        package_dir = os.path.join(root, package)
        if not os.path.isdir(package_dir):
            continue
        for dirpath, _dirnames, filenames in sorted(
                os.walk(package_dir)):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                relpath = os.path.relpath(path, root).replace(
                    os.sep, "/")
                with open(path, encoding="utf-8") as handle:
                    source = handle.read()
                modules[relpath] = astutil.parse_module(relpath, source)
    return modules


def lint_engine(root: Optional[str] = None) -> EngineLintReport:
    """Run the engine contract analyzer over the installed tree."""
    modules = collect_modules(engine_source_root(root))
    return _Analyzer(modules).run()


def lint_source(source: str, relpath: str) -> EngineLintReport:
    """Analyze one in-memory module as if it lived at ``relpath``.

    Test hook for the bad-fixture corpus: the relpath's leading
    component selects the package scopes/roots (e.g. ``exec/bad.py``).
    """
    modules = {relpath: astutil.parse_module(relpath, source)}
    return _Analyzer(modules).run()


# -- baseline ----------------------------------------------------------------

BASELINE_VERSION = 1


def load_baseline(path: str) -> List[dict]:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported engine-lint baseline version "
            f"{data.get('version')!r} in {path}")
    return list(data.get("entries", []))


def write_baseline(report: EngineLintReport, path: str) -> None:
    entries = [{"code": diag.code, "file": relpath,
                "owner": diag.owner or ""}
               for relpath, diag in report.findings]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(report: EngineLintReport,
                   entries: Sequence[dict]) -> EngineLintReport:
    """Drop findings matching baseline entries (each consumed once)."""
    pool: Dict[Tuple[str, str, str], int] = {}
    for entry in entries:
        key = (entry.get("code", ""), entry.get("file", ""),
               entry.get("owner", ""))
        pool[key] = pool.get(key, 0) + 1
    kept: List[Tuple[str, Diagnostic]] = []
    for relpath, diag in report.findings:
        key = (diag.code, relpath, diag.owner or "")
        if pool.get(key, 0) > 0:
            pool[key] -= 1
            continue
        kept.append((relpath, diag))
    filtered = EngineLintReport(
        findings=kept,
        suppressions=list(report.suppressions),
        files_checked=report.files_checked)
    return filtered


# -- renderers ---------------------------------------------------------------


def render_text(report: EngineLintReport) -> str:
    lines = [diag.format(relpath) for relpath, diag in report.findings]
    lines.append(report.summary())
    return "\n".join(lines)


def render_json(report: EngineLintReport) -> str:
    payload = {
        "findings": [dict(file=relpath, **diag.to_dict())
                     for relpath, diag in report.findings],
        "suppressions": [s.to_dict() for s in report.suppressions],
        "files_checked": report.files_checked,
        "errors": report.errors,
        "warnings": report.warnings,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(report: EngineLintReport) -> str:
    """Minimal SARIF 2.1.0 document (for CI code-scanning upload)."""
    from repro.analysis.diagnostics import CATALOG
    rule_ids = sorted({diag.code for _, diag in report.findings}
                      | set(_SEVERITIES))
    rules = [{"id": code,
              "shortDescription": {"text": CATALOG.get(code, code)}}
             for code in rule_ids]
    results = []
    for relpath, diag in report.findings:
        region = {}
        if diag.span is not None:
            region = {"startLine": diag.span.line,
                      "startColumn": diag.span.column}
        results.append({
            "ruleId": diag.code,
            "level": "error" if diag.is_error else "warning",
            "message": {"text": diag.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f"src/repro/{relpath}"},
                    "region": region,
                },
            }],
        })
    document = {
        "version": "2.1.0",
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "runs": [{
            "tool": {"driver": {"name": "trexlint-engine",
                                "rules": rules}},
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)
