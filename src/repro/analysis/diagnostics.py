"""Shared diagnostics framework for the static analyzer.

Every check in :mod:`repro.analysis` reports through :class:`Diagnostic`:
a stable ``TRX`` code, a :class:`Severity`, a human-readable message, an
optional source :class:`Span` (1-based line/column from the lexer) and an
optional fix hint.  Code families:

* ``TRX0xx`` — query-lint errors (the query is wrong or cannot match);
* ``TRX1xx`` — query-lint warnings (legal but suspicious or slow);
* ``TRX2xx`` — plan-verify findings (operator-contract violations).

``docs/LINTING.md`` catalogues every code with a bad/good query pair.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple


class Severity(enum.Enum):
    """How bad a diagnostic is."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Span:
    """A 1-based (line, column) source location with a token length."""

    line: int
    column: int
    length: int = 1

    def describe(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    span: Optional[Span] = None
    hint: Optional[str] = None
    #: Variable or operator the finding is about (for grouping/filtering).
    owner: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def format(self, filename: Optional[str] = None) -> str:
        """Compiler-style one/two-line rendering."""
        location = ""
        if self.span is not None:
            location = f"{self.span.describe()}: "
        prefix = f"{filename}:" if filename else ""
        text = f"{prefix}{location}{self.severity}[{self.code}]: " \
               f"{self.message}"
        if self.hint:
            text += f"\n  hint: {self.hint}"
        return text

    def to_dict(self) -> dict:
        """JSON-serializable form (for ``repro lint --format json``)."""
        data = {"code": self.code, "severity": str(self.severity),
                "message": self.message}
        if self.span is not None:
            data["line"] = self.span.line
            data["column"] = self.span.column
        if self.hint:
            data["hint"] = self.hint
        if self.owner:
            data["owner"] = self.owner
        return data


#: Every diagnostic code the analyzer can emit, with a one-line summary.
CATALOG = {
    "TRX000": "query text could not be tokenized or parsed",
    "TRX001": "variable is defined but never appears in the pattern",
    "TRX002": "variable is defined more than once",
    "TRX003": "condition references an undefined variable",
    "TRX004": "point variable declares a window constraint",
    "TRX005": "window(...) is not a top-level conjunct of its definition",
    "TRX006": "malformed window(...) arguments",
    "TRX007": "condition calls an unregistered aggregate",
    "TRX008": "aggregate called with the wrong number of arguments",
    "TRX009": "condition uses an unbound :parameter",
    "TRX010": "a variable's window constraints contradict each other",
    "TRX011": "window constraints make the pattern unsatisfiable",
    "TRX012": "condition references a variable inside a Kleene or Not body",
    "TRX013": "Not operand matches every segment, so nothing can match",
    "TRX014": "query failed to bind",
    "TRX101": "unbounded Kleene repetition with no window cap",
    "TRX102": "window(...) constrains nothing (wild bounds)",
    "TRX103": "SUBSET is never referenced by any condition",
    "TRX104": "cyclic references between variables force filter lifting",
    "TRX105": "aggregate over a single-point variable is constant",
    "TRX201": "reference-flow violation in the physical plan",
    "TRX202": "operator publishes a variable its subtree never binds",
    "TRX203": "operator under-declares its reference requirements",
    "TRX204": "operator emitted a segment outside its search space",
    "TRX205": "operator emitted a segment violating its embedded window",
    "TRX206": "physical operator has no cost-model entry",
    "TRX300": "malformed or reasonless `# trex:` suppression pragma",
    "TRX301": "engine hot loop has no ctx.tick() on any path",
    "TRX302": "segment materialization without a matching ctx.charge()",
    "TRX303": "reachable helper has loops the analyzer cannot prove "
              "ticked",
    "TRX401": "set iteration: element order is nondeterministic",
    "TRX402": "dict iteration feeds result ordering",
    "TRX403": "object-identity (id()) used as an ordering key",
    "TRX404": "clock/random/environment read outside the engine "
              "boundary",
    "TRX501": "bare float ==/!= outside registered bitwise-exact sites",
    "TRX502": "float accumulation loop without a NaN guard",
}


def _sort_key(diag: Diagnostic) -> Tuple[int, int, int, str]:
    if diag.span is None:
        return (1, 0, 0, diag.code)
    return (0, diag.span.line, diag.span.column, diag.code)


def sort_diagnostics(diags: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Source order (spanned findings first), then by code."""
    return sorted(diags, key=_sort_key)


def has_errors(diags: Iterable[Diagnostic]) -> bool:
    return any(d.is_error for d in diags)
