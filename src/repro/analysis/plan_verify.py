"""Pass 2: physical-plan verification (codes ``TRX2xx``).

Promotes the reference-flow validator (the paper's footnote 7, formerly
``repro.optimizer.validator``) into the diagnostics framework and extends
it with operator-contract checks:

* :func:`reference_flow` — TRX201, the original reference-dependency
  rules (message text preserved verbatim for the planner's error paths);
* :func:`verify_plan` — reference flow plus publish/require consistency:
  TRX202 (an operator publishes a variable its subtree never binds) and
  TRX203 (an operator's ``requires`` under-declares what its children
  consume from above);
* :func:`verify_execution_contracts` — dynamic search-space monotonicity:
  runs an instrumented copy of the plan over a series and reports every
  segment emitted outside the operator's search space (TRX204) or in
  violation of its embedded window (TRX205);
* :func:`check_cost_coverage` — TRX206, introspects every concrete
  operator class under ``repro.exec`` and reports the ones whose cost key
  has no entry in the cost model (``CostParams.f_op`` silently falls back
  to a default weight, so a missing entry would otherwise go unnoticed).
"""

from __future__ import annotations

import copy
from typing import (Dict, FrozenSet, Iterable, Iterator, List, Optional,
                    Set, Tuple, Type)

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.exec.and_or import (LeftProbeAnd, RightProbeAnd, SortMergeAnd,
                               SortMergeOr)
from repro.exec.base import ExecContext, PhysicalOperator
from repro.exec.concat import (LeftProbeConcat, RightProbeConcat,
                               SortMergeConcat, WildWindowConcat)
from repro.exec.filter_op import FilterOp
from repro.exec.kleene import MaterializeKleene
from repro.exec.not_op import MaterializeNot, ProbeNot
from repro.exec.seggen import SegGenFilter, SegGenIndexing, SegGenWindow
from repro.exec.special import SubPatternCache
from repro.lang import expr as E
from repro.optimizer.cost_params import DEFAULT_COST_PARAMS, CostParams
from repro.plan.search_space import SearchSpace
from repro.timeseries.series import Series


# ---------------------------------------------------------------------------
# TRX201 — reference flow (the original validator rules)
# ---------------------------------------------------------------------------

def reference_flow(op: PhysicalOperator,
                   available: FrozenSet[str] = frozenset()) \
        -> List[Diagnostic]:
    """Reference-dependency violations of a physical plan (TRX201).

    Message text is stable API: the planners raise ``PlanError`` with
    these exact strings and tests match on them.
    """
    diags: List[Diagnostic] = []
    _flow(op, available, diags)
    missing = set(op.requires) - set(available)
    if missing:
        _ref_violation(
            diags, op,
            f"plan root requires {sorted(missing)} with no provider")
    return diags


def _ref_violation(diags: List[Diagnostic], op: PhysicalOperator,
                   message: str) -> None:
    diags.append(Diagnostic(
        "TRX201", Severity.ERROR, message, owner=op.describe(),
        hint="the planner must route referenced segments through probe "
             "anchors or lifted filters"))


def _flow(op: PhysicalOperator, available: FrozenSet[str],
          diags: List[Diagnostic]) -> None:
    if isinstance(op, (SegGenFilter, SegGenIndexing)):
        missing = set(op.var.external_refs) - set(available)
        if missing:
            _ref_violation(
                diags, op,
                f"{op.describe()} needs {sorted(missing)} but only "
                f"{sorted(available)} are available")
        return
    if isinstance(op, SegGenWindow):
        return
    if isinstance(op, SubPatternCache):
        _flow(op.child, available, diags)
        return
    if isinstance(op, FilterOp):
        provided = available | op.child.publish
        for owner, condition in op.conditions:
            needed = set(E.external_references(condition, owner)) | {owner}
            missing = needed - set(provided)
            if missing:
                _ref_violation(
                    diags, op,
                    f"{op.describe()} lifted condition on {owner!r} needs "
                    f"{sorted(missing)} beyond child payload "
                    f"{sorted(op.child.publish)}")
        _flow(op.child, available, diags)
        return
    if isinstance(op, (MaterializeNot, ProbeNot, MaterializeKleene)):
        child = op.children()[0]
        missing = set(child.requires) - set(available)
        if missing:
            _ref_violation(
                diags, op,
                f"{op.describe()} child needs {sorted(missing)} which the "
                f"operator cannot supply")
        _flow(child, available, diags)
        return
    if isinstance(op, (SortMergeConcat, SortMergeAnd, SortMergeOr,
                       WildWindowConcat)):
        for side, child in zip(("left", "right"), op.children()):
            missing = set(child.requires) - set(available)
            if missing:
                _ref_violation(
                    diags, op,
                    f"{op.describe()} {side} child needs {sorted(missing)} "
                    f"but Sort-Merge children must be independent")
            _flow(child, available, diags)
        return
    if isinstance(op, (RightProbeConcat, RightProbeAnd)):
        anchor, probed = op.left, op.right
    elif isinstance(op, (LeftProbeConcat, LeftProbeAnd)):
        anchor, probed = op.right, op.left
    else:
        # Unknown operator type: validate children conservatively.
        for child in op.children():
            _flow(child, available, diags)
        return
    missing = set(anchor.requires) - set(available)
    if missing:
        _ref_violation(
            diags, op,
            f"{op.describe()} anchor needs {sorted(missing)} with no "
            f"provider")
    _flow(anchor, available, diags)
    probe_available = available | anchor.publish
    missing = set(probed.requires) - set(probe_available)
    if missing:
        _ref_violation(
            diags, op,
            f"{op.describe()} probed side needs {sorted(missing)} but the "
            f"anchor only publishes {sorted(anchor.publish)}")
    _flow(probed, probe_available, diags)


# ---------------------------------------------------------------------------
# TRX202 / TRX203 — publish/require consistency
# ---------------------------------------------------------------------------

def _bound_variables(op: PhysicalOperator) -> FrozenSet[str]:
    """Variables whose segments the subtree rooted at ``op`` can bind."""
    if isinstance(op, SegGenWindow):
        return frozenset({op.var_name}) if op.var_name else frozenset()
    if isinstance(op, (SegGenFilter, SegGenIndexing)):
        return frozenset({op.var.name})
    if isinstance(op, (MaterializeNot, ProbeNot, MaterializeKleene)):
        # A negation binds nothing; Kleene bodies stay inside the loop.
        return frozenset()
    result: Set[str] = set()
    for child in op.children():
        result |= _bound_variables(child)
    return frozenset(result)


def verify_plan(op: PhysicalOperator,
                available: FrozenSet[str] = frozenset()) \
        -> List[Diagnostic]:
    """Static plan verification: TRX201 + TRX202 + TRX203."""
    diags = reference_flow(op, available)
    _publish_require(op, diags)
    return diags


def _publish_require(op: PhysicalOperator,
                     diags: List[Diagnostic]) -> None:
    unbound = set(op.publish) - set(_bound_variables(op))
    if unbound:
        diags.append(Diagnostic(
            "TRX202", Severity.ERROR,
            f"{op.describe()} publishes {sorted(unbound)} but its subtree "
            f"never binds them",
            owner=op.describe(),
            hint="publish sets must be a subset of the variables the "
                 "subtree's segment generators bind"))
    children = op.children()
    if children:
        child_requires: Set[str] = set()
        child_publishes: Set[str] = set()
        for child in children:
            child_requires |= set(child.requires)
            child_publishes |= set(child.publish)
        hidden = (child_requires - child_publishes) - set(op.requires)
        if hidden:
            diags.append(Diagnostic(
                "TRX203", Severity.ERROR,
                f"{op.describe()} under-declares requires: children need "
                f"{sorted(hidden)} from above but the operator does not "
                f"require them",
                owner=op.describe(),
                hint="propagate child requirements that no sibling "
                     "publishes into the operator's own requires set"))
    for child in children:
        _publish_require(child, diags)


# ---------------------------------------------------------------------------
# TRX204 / TRX205 — dynamic search-space and window monotonicity
# ---------------------------------------------------------------------------

_CHILD_ATTRS = ("child", "left", "right")


def _instrument(op: PhysicalOperator, diags: List[Diagnostic],
                reported: Set[Tuple[int, str]]) -> PhysicalOperator:
    """Shallow-copy the plan, wrapping every ``eval`` with contract checks.

    The copies share immutable state (windows, conditions, VarDefs) with
    the original plan, so instrumentation never perturbs the real plan.
    """
    clone = copy.copy(op)
    for attr in _CHILD_ATTRS:
        if hasattr(clone, attr):
            child = getattr(clone, attr)
            if isinstance(child, PhysicalOperator):
                setattr(clone, attr, _instrument(child, diags, reported))
    inner_eval = type(op).eval

    def checked_eval(ctx: ExecContext, sp: SearchSpace,
                     refs: Dict[str, Tuple[int, int]]) -> Iterator:
        clamped = sp.clamp(len(ctx.series))
        for segment in inner_eval(clone, ctx, sp, refs):
            if not clamped.contains(segment.start, segment.end):
                key = (op.op_id, "TRX204")
                if key not in reported:
                    reported.add(key)
                    diags.append(Diagnostic(
                        "TRX204", Severity.ERROR,
                        f"{op.describe()} emitted segment "
                        f"[{segment.start}, {segment.end}] outside its "
                        f"search space {clamped.describe()}",
                        owner=op.describe(),
                        hint="operators must shrink, never escape, the "
                             "search space handed to them"))
            elif not clone.window.accepts(ctx.series, segment.start,
                                          segment.end):
                key = (op.op_id, "TRX205")
                if key not in reported:
                    reported.add(key)
                    diags.append(Diagnostic(
                        "TRX205", Severity.ERROR,
                        f"{op.describe()} emitted segment "
                        f"[{segment.start}, {segment.end}] violating its "
                        f"embedded window [{clone.window.describe()}]",
                        owner=op.describe(),
                        hint="apply the operator's window before emitting "
                             "segments"))
            yield segment

    # Instance attribute shadows the class method for ``clone`` only.
    clone.eval = checked_eval  # type: ignore[method-assign]
    return clone


def verify_execution_contracts(plan: PhysicalOperator, series: Series,
                               max_matches: Optional[int] = None) \
        -> List[Diagnostic]:
    """Run an instrumented copy of ``plan`` over ``series`` and report
    every operator that emits a segment outside its search space (TRX204)
    or violating its embedded window (TRX205).

    Each (operator, code) pair is reported at most once.  ``max_matches``
    optionally bounds how many root emissions are drawn.
    """
    diags: List[Diagnostic] = []
    reported: Set[Tuple[int, str]] = set()
    checked = _instrument(plan, diags, reported)
    ctx = ExecContext(series)
    sp = SearchSpace.full(len(series))
    for count, _ in enumerate(checked.eval(ctx, sp, {})):
        if max_matches is not None and count + 1 >= max_matches:
            break
    return diags


# ---------------------------------------------------------------------------
# TRX206 — cost-model coverage by introspection
# ---------------------------------------------------------------------------

def operator_cost_key(cls: Type[PhysicalOperator]) -> str:
    """The cost-model key an operator class is charged under."""
    return getattr(cls, "cost_key", None) or cls.name


def discover_exec_operators() -> List[Type[PhysicalOperator]]:
    """Every concrete operator class defined under ``repro.exec``."""
    found: List[Type[PhysicalOperator]] = []

    def visit(cls: Type[PhysicalOperator]) -> None:
        for sub in cls.__subclasses__():
            if sub.__module__.startswith("repro.exec") \
                    and not sub.__name__.startswith("_") \
                    and not getattr(sub, "__abstractmethods__", None):
                found.append(sub)
            visit(sub)

    visit(PhysicalOperator)
    return sorted(set(found), key=lambda cls: cls.__name__)


def check_cost_coverage(
        params: Optional[CostParams] = None,
        operators: Optional[Iterable[Type[PhysicalOperator]]] = None) \
        -> List[Diagnostic]:
    """TRX206 — every operator class must have a cost-model entry.

    ``CostParams.f_op`` silently substitutes a default weight for unknown
    keys, so a new operator with no entry would get costed arbitrarily and
    the optimizer could pick it for the wrong reasons.  ``operators``
    defaults to introspecting ``repro.exec``.
    """
    params = params or DEFAULT_COST_PARAMS
    classes = list(operators) if operators is not None \
        else discover_exec_operators()
    diags: List[Diagnostic] = []
    for cls in classes:
        key = operator_cost_key(cls)
        if key not in params.operator_weights:
            diags.append(Diagnostic(
                "TRX206", Severity.ERROR,
                f"operator class {cls.__name__} (cost key {key!r}) has no "
                f"entry in the cost model; f_op would silently fall back "
                f"to a default weight",
                owner=cls.__name__,
                hint=f"add {key!r} to DEFAULT_OPERATOR_WEIGHTS or set a "
                     f"'cost_key' class attribute pointing at an existing "
                     f"entry"))
    return diags
