"""Pass 1: static lint of T-ReX queries (codes ``TRX0xx``/``TRX1xx``).

Two entry points:

* :func:`lint_text` — lint raw query text: tokenizes, parses, runs the
  pre-bind checks (with precise source spans), binds, and finishes with the
  semantic checks of :func:`analyze`.  Never raises on bad queries; every
  problem comes back as a :class:`Diagnostic`.
* :func:`analyze` — lint an already-bound :class:`~repro.lang.query.Query`
  (the engine integration point).  Spans are only available when the caller
  supplies the parser's ``var_spans``.

The satisfiability checks (TRX010/TRX011) run interval arithmetic over the
pattern: every node gets a ``[lo, hi]`` interval of possible index durations
(point-based ``window`` specs only; time-based specs cannot be compared to
index durations without a concrete series).  Concatenation sums intervals
(junction gaps under-approximated at 0 and over-approximated at 1 so a
reported contradiction is never a false positive), ``&`` intersects, ``|``
takes the hull, Kleene scales by the repetition bounds and ``~`` is
unbounded.
"""

from __future__ import annotations

import difflib
import math
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.aggregates.registry import DEFAULT_REGISTRY, AggregateRegistry
from repro.analysis.diagnostics import (Diagnostic, Severity, Span,
                                        has_errors, sort_diagnostics)
from repro.errors import AggregateError, BindError, QuerySyntaxError, TRexError
from repro.lang import expr as E
from repro.lang import pattern as P
from repro.lang.lexer import Token, tokenize
from repro.lang.parser import ParsedQuery, RawDefine, parse
from repro.lang.query import Query, VarDef, _interpret_window, bind
from repro.timeseries.timeunits import UNIT_SECONDS

#: Duration interval [lo, hi]; ``math.inf`` means unbounded above.
_Interval = Tuple[float, float]

_SpanMap = Mapping[str, Span]


# ---------------------------------------------------------------------------
# Span helpers
# ---------------------------------------------------------------------------

class _TokenIndex:
    """Locate diagnostic spans in the original token stream."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens

    def ident(self, name: str) -> Optional[Span]:
        """First identifier token spelled ``name`` (case-insensitive)."""
        lowered = name.lower()
        for token in self._tokens:
            if token.kind == "ident" and token.text.lower() == lowered:
                return Span(token.line, token.column, len(token.text))
        return None

    def qualified_ref(self, variable: str) -> Optional[Span]:
        """First ``VAR .`` occurrence (a qualified column reference)."""
        for index, token in enumerate(self._tokens[:-1]):
            nxt = self._tokens[index + 1]
            if token.kind == "ident" and token.text == variable \
                    and nxt.kind == "op" and nxt.text == ".":
                return Span(token.line, token.column, len(token.text))
        return None

    def param(self, name: str) -> Optional[Span]:
        for token in self._tokens:
            if token.kind == "param" and token.text == name:
                return Span(token.line, token.column, len(token.text) + 1)
        return None


def _define_span(raw: RawDefine) -> Optional[Span]:
    if raw.line:
        return Span(raw.line, raw.column, len(raw.name))
    return None


def _spans_from(parsed: ParsedQuery) -> Dict[str, Span]:
    """Best span per variable: definition site, else first pattern site."""
    spans: Dict[str, Span] = {}
    for name, (line, column) in parsed.var_spans.items():
        spans[name] = Span(line, column, len(name))
    for raw in parsed.defines:
        span = _define_span(raw)
        if span is not None:
            spans[raw.name] = span
    return spans


# ---------------------------------------------------------------------------
# Interval arithmetic over patterns (TRX010 / TRX011 / TRX101)
# ---------------------------------------------------------------------------

_EMPTY: _Interval = (1.0, 0.0)


def _is_empty(interval: _Interval) -> bool:
    return interval[0] > interval[1]


def _var_duration_interval(var: VarDef) -> _Interval:
    """Possible index durations of one variable's segments."""
    if not var.is_segment:
        return (0.0, 0.0)
    lo, hi = 0.0, math.inf
    for spec in var.windows:
        if spec.kind != "point":
            continue
        lo = max(lo, spec.lo)
        if spec.hi is not None:
            hi = min(hi, spec.hi)
    return (lo, hi)


def _has_segment(query: Query, node: P.Pattern) -> bool:
    for sub in P.walk(node):
        if isinstance(sub, P.VarRef) and query.var(sub.name).is_segment:
            return True
    return False


def _pattern_interval(node: P.Pattern, query: Query, spans: _SpanMap,
                      diags: List[Diagnostic]) -> _Interval:
    """Duration interval of ``node``, reporting TRX011 where an ``&``
    intersection of individually-satisfiable parts becomes empty."""
    if isinstance(node, P.VarRef):
        return _var_duration_interval(query.var(node.name))
    if isinstance(node, P.Concat):
        parts = [_pattern_interval(p, query, spans, diags)
                 for p in node.parts]
        if any(_is_empty(p) for p in parts):
            return _EMPTY
        lo = sum(p[0] for p in parts)
        hi = sum(p[1] for p in parts) + (len(parts) - 1)
        return (lo, hi)
    if isinstance(node, P.And):
        parts = [_pattern_interval(p, query, spans, diags)
                 for p in node.parts]
        if any(_is_empty(p) for p in parts):
            return _EMPTY
        lo = max(p[0] for p in parts)
        hi = min(p[1] for p in parts)
        if lo > hi:
            names = node.variables()
            anchor = next((n for n in names if n in spans), None)
            diags.append(Diagnostic(
                "TRX011", Severity.ERROR,
                f"window constraints on {node.describe()} are "
                f"unsatisfiable: the parts require at least {lo:g} points "
                f"of duration but allow at most {hi:g}",
                span=spans.get(anchor) if anchor else None,
                hint="widen the enclosing window or shorten the "
                     "concatenated segments' minimum windows",
                owner=anchor))
        return (lo, hi)
    if isinstance(node, P.Or):
        parts = [_pattern_interval(p, query, spans, diags)
                 for p in node.parts]
        alive = [p for p in parts if not _is_empty(p)]
        if not alive:
            return _EMPTY
        return (min(p[0] for p in alive), max(p[1] for p in alive))
    if isinstance(node, P.Kleene):
        child = _pattern_interval(node.child, query, spans, diags)
        if _is_empty(child):
            return _EMPTY if node.min_reps >= 1 else (0.0, math.inf)
        lo = child[0] * node.min_reps
        if node.max_reps is None:
            return (lo, math.inf)
        hi = child[1] * node.max_reps + (node.max_reps - 1)
        return (lo, hi)
    if isinstance(node, P.Not):
        # Evaluate the child for nested findings, but a negation itself can
        # match any duration.
        _pattern_interval(node.child, query, spans, diags)
        return (0.0, math.inf)
    return (0.0, math.inf)


def _finite_max_duration(node: P.Pattern, query: Query) -> bool:
    """Whether every match of ``node`` has a bounded duration.

    Time-based windows count as bounds here (on any real series a finite
    time span covers finitely many points), unlike in the satisfiability
    interval math where they cannot be compared with point durations.
    """
    if isinstance(node, P.VarRef):
        var = query.var(node.name)
        if not var.is_segment:
            return True
        return any(spec.hi is not None for spec in var.windows)
    if isinstance(node, P.Concat):
        return all(_finite_max_duration(p, query) for p in node.parts)
    if isinstance(node, P.And):
        return any(_finite_max_duration(p, query) for p in node.parts)
    if isinstance(node, P.Or):
        return all(_finite_max_duration(p, query) for p in node.parts)
    if isinstance(node, P.Kleene):
        return node.max_reps is not None and \
            _finite_max_duration(node.child, query)
    return False


def _matches_every_segment(node: P.Pattern, query: Query) -> bool:
    """Conservative: True only when ``node`` provably matches *every*
    segment of every series (so ``~node`` matches nothing)."""
    if isinstance(node, P.VarRef):
        var = query.var(node.name)
        return var.is_segment and var.is_wild
    if isinstance(node, (P.Concat, P.And)):
        return all(_matches_every_segment(p, query) for p in node.parts)
    if isinstance(node, P.Or):
        return any(_matches_every_segment(p, query) for p in node.parts)
    if isinstance(node, P.Kleene):
        return _matches_every_segment(node.child, query)
    return False


# ---------------------------------------------------------------------------
# Pre-bind checks (parse tree + token spans)
# ---------------------------------------------------------------------------

def _window_calls(condition: E.Expr) -> Tuple[List[E.WindowCall], bool]:
    """(top-level window conjuncts, whether any nested window call exists)."""
    top_level: List[E.WindowCall] = []
    nested = False
    for conjunct in E.split_conjuncts(condition):
        if isinstance(conjunct, E.WindowCall):
            top_level.append(conjunct)
            continue
        if any(isinstance(sub, E.WindowCall) for sub in E.walk(conjunct)):
            nested = True
    return top_level, nested


def _lint_parsed(parsed: ParsedQuery, index: _TokenIndex,
                 registry: AggregateRegistry) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    pattern_vars = set(parsed.pattern.variables()) if parsed.pattern else set()
    defined = {raw.name for raw in parsed.defines}
    known = defined | pattern_vars | set(parsed.subsets)

    seen: Set[str] = set()
    for raw in parsed.defines:
        span = _define_span(raw)
        if raw.name in seen:
            diags.append(Diagnostic(
                "TRX002", Severity.ERROR,
                f"variable {raw.name!r} is defined more than once",
                span=span, owner=raw.name,
                hint="merge the definitions into one with AND"))
            continue
        seen.add(raw.name)
        if raw.name not in pattern_vars:
            diags.append(Diagnostic(
                "TRX001", Severity.ERROR,
                f"variable {raw.name!r} is defined but never appears in "
                f"the PATTERN clause",
                span=span, owner=raw.name,
                hint=f"add {raw.name} to the pattern or remove the "
                     f"definition"))

        for name in sorted(E.external_references(raw.condition, raw.name)):
            if name not in known:
                close = difflib.get_close_matches(name, sorted(known), n=1)
                hint = f"did you mean {close[0]!r}?" if close else \
                    "define it or add it to the pattern"
                diags.append(Diagnostic(
                    "TRX003", Severity.ERROR,
                    f"condition of {raw.name!r} references undefined "
                    f"variable {name!r}",
                    span=index.qualified_ref(name) or span,
                    hint=hint, owner=raw.name))

        unbound = sorted(E.parameters_used(raw.condition))
        for name in unbound:
            diags.append(Diagnostic(
                "TRX009", Severity.ERROR,
                f"condition of {raw.name!r} uses unbound parameter :{name}",
                span=index.param(name) or span,
                hint=f"supply a value for {name!r} (CLI: --param "
                     f"{name}=VALUE)", owner=raw.name))

        top_level, nested = _window_calls(raw.condition)
        if nested:
            diags.append(Diagnostic(
                "TRX005", Severity.ERROR,
                f"window(...) in variable {raw.name!r} must be a top-level "
                f"AND conjunct of its definition",
                span=span, owner=raw.name,
                hint="move the window call out of OR/NOT/comparison "
                     "sub-expressions"))
        if top_level and not raw.is_segment:
            diags.append(Diagnostic(
                "TRX004", Severity.ERROR,
                f"point variable {raw.name!r} cannot declare a window; "
                f"only segments have a duration",
                span=span, owner=raw.name,
                hint=f"declare it 'SEGMENT {raw.name} AS ...'"))
        for call in top_level:
            if E.parameters_used(call):
                continue  # reported as TRX009 above
            try:
                _interpret_window(call, raw.name)
            except BindError as err:
                diags.append(Diagnostic(
                    "TRX006", Severity.ERROR,
                    f"malformed window(...) in variable {raw.name!r}: {err}",
                    span=span, owner=raw.name,
                    hint="use window(lo, hi), window(size) or "
                         "window(col, lo, hi, UNIT)"))

        for call in E.aggregate_calls(raw.condition):
            agg = registry.lookup(call.name)
            call_span = index.ident(call.name) or span
            if agg is None:
                close = difflib.get_close_matches(
                    call.name, registry.names(), n=1)
                hint = f"did you mean {close[0]!r}?" if close else \
                    "register it with AggregateRegistry.register()"
                diags.append(Diagnostic(
                    "TRX007", Severity.ERROR,
                    f"condition of {raw.name!r} calls unknown aggregate "
                    f"{call.name!r}",
                    span=call_span, hint=hint, owner=raw.name))
                continue
            try:
                agg.validate_call(len(call.columns), len(call.extra))
            except AggregateError as err:
                diags.append(Diagnostic(
                    "TRX008", Severity.ERROR,
                    f"bad call to aggregate {call.name!r} in "
                    f"{raw.name!r}: {err}",
                    span=call_span, owner=raw.name))
    return diags


# ---------------------------------------------------------------------------
# Post-bind semantic checks
# ---------------------------------------------------------------------------

def _per_variable_window_diags(query: Query, spans: _SpanMap,
                               diags: List[Diagnostic]) -> None:
    for var in query.variables.values():
        span = spans.get(var.name)
        for spec in var.windows:
            if spec.is_wild:
                diags.append(Diagnostic(
                    "TRX102", Severity.WARNING,
                    f"variable {var.name!r} has a wild {spec.describe()} "
                    f"that constrains nothing",
                    span=span, owner=var.name,
                    hint="drop the window call or give it bounds"))
        lo, hi = _var_duration_interval(var)
        if lo > hi:
            diags.append(Diagnostic(
                "TRX010", Severity.ERROR,
                f"window constraints on {var.name!r} contradict each "
                f"other: duration >= {lo:g} and <= {hi:g} at once",
                span=span, owner=var.name,
                hint="reconcile the window bounds; their intersection is "
                     "empty"))
        by_column: Dict[Optional[str], Tuple[float, float]] = {}
        for spec in var.windows:
            if spec.kind != "time" or spec.unit is None:
                continue
            scale = UNIT_SECONDS.get(spec.unit.upper())
            if scale is None:
                continue
            t_lo = spec.lo * scale
            t_hi = math.inf if spec.hi is None else spec.hi * scale
            prev = by_column.get(spec.column, (0.0, math.inf))
            by_column[spec.column] = (max(prev[0], t_lo),
                                      min(prev[1], t_hi))
        for column, (t_lo, t_hi) in by_column.items():
            if t_lo > t_hi:
                diags.append(Diagnostic(
                    "TRX010", Severity.ERROR,
                    f"time windows on {var.name!r} (column "
                    f"{column or 'tstamp'}) contradict each other",
                    span=span, owner=var.name,
                    hint="reconcile the time-window bounds; their "
                         "intersection is empty"))


def _scoping_diags(query: Query, spans: _SpanMap,
                   diags: List[Diagnostic]) -> None:
    """TRX012 — references into Kleene/Not bodies (mirrors the planner's
    :func:`repro.optimizer.construct.validate_scoping`)."""
    for node in P.walk(query.pattern):
        if not isinstance(node, (P.Kleene, P.Not)):
            continue
        body = node.child
        inner = {sub.name for sub in P.walk(body)
                 if isinstance(sub, P.VarRef)}
        kind = "Kleene" if isinstance(node, P.Kleene) else "Not"
        for other in query.variables.values():
            if other.name in inner:
                continue
            crossing = sorted(set(other.external_refs) & inner)
            if crossing:
                diags.append(Diagnostic(
                    "TRX012", Severity.ERROR,
                    f"variable {other.name!r} references "
                    f"{', '.join(repr(c) for c in crossing)} inside a "
                    f"{kind} body; such segments are not bound outside it",
                    span=spans.get(other.name), owner=other.name,
                    hint=f"restructure the query so the reference target "
                         f"is outside the {kind} operand"))


def _cycle_diags(query: Query, spans: _SpanMap,
                 diags: List[Diagnostic]) -> None:
    """TRX104 — reference cycles between variables (legal via filter
    lifting, but worth flagging: lifted conditions evaluate late and the
    planner loses most pruning opportunities)."""
    graph = {name: sorted(set(var.external_refs) & set(query.variables))
             for name, var in query.variables.items()}
    reported: Set[Tuple[str, ...]] = set()
    state: Dict[str, int] = {}
    stack: List[str] = []

    def visit(name: str) -> None:
        state[name] = 1
        stack.append(name)
        for dep in graph[name]:
            if state.get(dep, 0) == 0:
                visit(dep)
            elif state.get(dep) == 1:
                cycle = tuple(stack[stack.index(dep):])
                key = tuple(sorted(cycle))
                if key not in reported:
                    reported.add(key)
                    loop = " -> ".join(cycle + (dep,))
                    diags.append(Diagnostic(
                        "TRX104", Severity.WARNING,
                        f"reference cycle between variables: {loop}; the "
                        f"planner must lift these conditions into a late "
                        f"Filter",
                        span=spans.get(dep), owner=dep,
                        hint="break the cycle if possible; cyclic "
                             "conditions disable most search-space "
                             "pruning"))
        stack.pop()
        state[name] = 2

    for name in sorted(graph):
        if state.get(name, 0) == 0:
            visit(name)


def _kleene_cap_diags(query: Query, spans: _SpanMap,
                      diags: List[Diagnostic]) -> None:
    """TRX101 — unbounded Kleene with no duration cap anywhere above it."""

    def visit(node: P.Pattern, capped: bool) -> None:
        bounded = capped or _finite_max_duration(node, query)
        if isinstance(node, P.Kleene) and node.max_reps is None \
                and not bounded:
            names = node.variables()
            anchor = next((n for n in names if n in spans), None)
            diags.append(Diagnostic(
                "TRX101", Severity.WARNING,
                f"unbounded repetition {node.describe()} has no window "
                f"cap; its search space grows with the series length",
                span=spans.get(anchor) if anchor else None, owner=anchor,
                hint="conjoin a bounded window (e.g. '(...)+ & W' with "
                     "'SEGMENT W AS window(0, n)') or bound the "
                     "repetition count"))
        for child in node.children():
            visit(child, bounded)

    visit(query.pattern, False)


def _aggregate_target_diags(query: Query, spans: _SpanMap,
                            diags: List[Diagnostic]) -> None:
    """TRX105 — aggregates over a point variable's single-record segment."""
    for var in query.variables.values():
        for call in var.aggregate_calls():
            agg = query.registry.lookup(call.name)
            if agg is None or getattr(agg, "needs_series_context", False):
                continue
            targets = {ref.variable or var.name for ref in call.columns}
            for target in sorted(targets):
                tvar = query.variables.get(target)
                if tvar is not None and not tvar.is_segment:
                    diags.append(Diagnostic(
                        "TRX105", Severity.WARNING,
                        f"{call.name}(...) in {var.name!r} aggregates over "
                        f"point variable {target!r}; a one-point segment "
                        f"makes the aggregate trivial",
                        span=spans.get(var.name), owner=var.name,
                        hint=f"declare {target!r} as a SEGMENT variable or "
                             f"use a plain column reference"))


def _subset_diags(query: Query, diags: List[Diagnostic]) -> None:
    if not query.subsets:
        return
    used: Set[str] = set()
    for var in query.variables.values():
        used |= set(E.referenced_variables(var.condition))
    for name in sorted(query.subsets):
        if name not in used:
            diags.append(Diagnostic(
                "TRX103", Severity.WARNING,
                f"SUBSET {name!r} is never referenced by any condition",
                hint="remove the SUBSET clause or use it in a DEFINE",
                owner=name))


def _not_diags(query: Query, spans: _SpanMap,
               diags: List[Diagnostic]) -> None:
    for node in P.walk(query.pattern):
        if isinstance(node, P.Not) and \
                _matches_every_segment(node.child, query):
            names = node.child.variables()
            anchor = next((n for n in names if n in spans), None)
            diags.append(Diagnostic(
                "TRX013", Severity.ERROR,
                f"~{node.child.describe()} can never match: its operand "
                f"matches every segment, so the negation matches none",
                span=spans.get(anchor) if anchor else None, owner=anchor,
                hint="give the negated variables a condition or window so "
                     "they exclude something"))


def analyze(query: Query,
            spans: Optional[_SpanMap] = None) -> List[Diagnostic]:
    """Semantic lint of a bound query (the engine-facing API).

    ``spans`` optionally maps variable names to source spans (available
    when the caller kept the :class:`ParsedQuery` around); without it the
    diagnostics simply carry no locations.
    """
    span_map: _SpanMap = spans or {}
    diags: List[Diagnostic] = []
    _per_variable_window_diags(query, span_map, diags)
    _pattern_interval(query.pattern, query, span_map, diags)
    _scoping_diags(query, span_map, diags)
    _not_diags(query, span_map, diags)
    _kleene_cap_diags(query, span_map, diags)
    _cycle_diags(query, span_map, diags)
    _aggregate_target_diags(query, span_map, diags)
    _subset_diags(query, diags)
    return sort_diagnostics(diags)


def lint_text(text: str, params: Optional[Dict[str, object]] = None,
              registry: AggregateRegistry = DEFAULT_REGISTRY) \
        -> List[Diagnostic]:
    """Lint raw query text; returns diagnostics instead of raising."""
    params = params or {}
    try:
        index = _TokenIndex(tokenize(text))
        parsed = parse(text, params)
    except QuerySyntaxError as err:
        span = Span(err.line, err.column) if err.line else None
        return [Diagnostic("TRX000", Severity.ERROR, str(err), span=span)]
    diags = _lint_parsed(parsed, index, registry)
    if has_errors(diags):
        return sort_diagnostics(diags)
    try:
        query = bind(parsed, params, registry)
    except TRexError as err:
        diags.append(Diagnostic(
            "TRX014", Severity.ERROR, f"query failed to bind: {err}"))
        return sort_diagnostics(diags)
    diags.extend(analyze(query, spans=_spans_from(parsed)))
    return sort_diagnostics(diags)
