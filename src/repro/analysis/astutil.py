"""AST helpers shared by the engine contract analyzer (engine lint).

This module owns the *mechanical* layer of ``repro lint --engine``:
parsing engine modules, collecting functions and suppression pragmas,
and answering small syntactic questions ("does this loop body call
``tick``?", "is this iterable a constant literal?").  The rule logic
itself lives in :mod:`repro.analysis.engine_lint`; the registries of
known-good sites live in :mod:`repro.analysis.contracts`.

Pragma syntax (recorded, never silent)::

    # trex: no-tick(<reason>)

where the rule name is one of the keys of
``repro.analysis.contracts.PRAGMA_RULES`` and the reason is mandatory.
A pragma suppresses matching findings anchored on its own line or the
line directly below it, so it can sit on the flagged statement or on
its own line immediately above.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: ``# trex: <rule>(<reason>)`` — reason may be empty (then TRX300 fires).
PRAGMA_RE = re.compile(r"#\s*trex:\s*([a-z-]+)\(([^)]*)\)")

#: Call attribute/function names that satisfy the tick contract directly.
#: ``tick_batch`` is the amortized per-batch form used by the vector
#: kernels (one deadline check per candidate batch).
TICK_CALL_NAMES = frozenset({"tick", "tick_batch"})

#: Call names that satisfy the charge contract directly
#: (``probe_cache_put`` charges internally under a budget).
CHARGE_CALL_NAMES = frozenset({"charge", "probe_cache_put"})

#: Method names whose call on a collection marks a materialization site.
MATERIALIZE_CALL_NAMES = frozenset({"append", "add", "extend"})


@dataclass(frozen=True)
class Pragma:
    """One ``# trex: rule(reason)`` suppression comment."""

    rule: str
    reason: str
    line: int


@dataclass
class FunctionInfo:
    """One module-level function or depth-1 method of a module."""

    relpath: str
    qualname: str
    name: str
    node: ast.FunctionDef
    class_name: Optional[str] = None
    #: Terminal names of every call made anywhere in the function
    #: (``self.left.eval(...)`` contributes ``"eval"``).
    calls: Set[str] = field(default_factory=set)

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ModuleInfo:
    """Parsed engine module: AST, source lines, functions, pragmas."""

    relpath: str
    tree: ast.Module
    lines: List[str]
    functions: List[FunctionInfo]
    pragmas: List[Pragma]
    #: Classes defined in the module (for ``Cls()`` -> ``Cls.__init__``).
    class_names: Set[str]

    @property
    def package(self) -> str:
        return self.relpath.split("/", 1)[0]


def call_name(node: ast.Call) -> Optional[str]:
    """Terminal name of a call: ``a.b.c(...)`` -> ``"c"``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def dotted_name(node: ast.expr) -> Optional[str]:
    """Full dotted path of a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_calls(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def collect_call_names(node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for call in iter_calls(node):
        name = call_name(call)
        if name is not None:
            names.add(name)
    return names


def parse_module(relpath: str, source: str) -> ModuleInfo:
    """Parse one engine source file into a :class:`ModuleInfo`."""
    tree = ast.parse(source)
    lines = source.splitlines()
    pragmas = [
        Pragma(match.group(1), match.group(2).strip(), number)
        for number, line in enumerate(lines, start=1)
        for match in PRAGMA_RE.finditer(line)
    ]
    functions: List[FunctionInfo] = []
    class_names: Set[str] = set()
    for top in tree.body:
        if isinstance(top, ast.FunctionDef):
            functions.append(_function_info(relpath, top, None))
        elif isinstance(top, ast.ClassDef):
            class_names.add(top.name)
            for item in top.body:
                if isinstance(item, ast.FunctionDef):
                    functions.append(
                        _function_info(relpath, item, top.name))
    return ModuleInfo(relpath, tree, lines, functions, pragmas,
                      class_names)


def _function_info(relpath: str, node: ast.FunctionDef,
                   class_name: Optional[str]) -> FunctionInfo:
    qualname = f"{class_name}.{node.name}" if class_name else node.name
    return FunctionInfo(relpath, qualname, node.name, node,
                        class_name=class_name,
                        calls=collect_call_names(node))


# -- loop extraction ---------------------------------------------------------


@dataclass
class LoopSite:
    """One ``for``/``while`` loop inside an analyzed function."""

    node: ast.stmt  # ast.For | ast.While
    lineno: int
    #: Iterator expression for ``for`` loops; ``None`` for ``while``.
    iter_expr: Optional[ast.expr]


def function_loops(func: ast.FunctionDef) -> List[LoopSite]:
    """Every loop in ``func``, nested functions included.

    Nested ``def``s (generator closures like ``generate()``) execute as
    part of the enclosing operator, so their loops are analyzed under
    the enclosing function's contract.
    """
    loops: List[LoopSite] = []
    for node in ast.walk(func):
        if isinstance(node, ast.For):
            loops.append(LoopSite(node, node.lineno, node.iter))
        elif isinstance(node, ast.While):
            loops.append(LoopSite(node, node.lineno, None))
    return loops


def nested_function_defs(func: ast.FunctionDef) -> List[ast.FunctionDef]:
    """``def``s nested (at any depth) inside ``func``, excluding itself."""
    return [node for node in ast.walk(func)
            if isinstance(node, ast.FunctionDef) and node is not func]


def is_constant_iterable(expr: Optional[ast.expr]) -> bool:
    """A literal tuple/list of constants or simple expressions.

    ``for child in (self.left, self.right):`` iterates a fixed, tiny
    structure; such loops are bounded by construction and exempt from
    the tick contract.
    """
    if isinstance(expr, (ast.Tuple, ast.List)):
        return not any(isinstance(el, ast.Starred) for el in expr.elts)
    return False


def body_has_call(node: ast.AST, names: frozenset) -> bool:
    """Does any call with a terminal name in ``names`` occur in ``node``?"""
    return any(name in names for name in collect_call_names(node))


def loop_calls(loop: LoopSite) -> Set[str]:
    """All call names in the loop body *and* its iterator expression.

    A loop whose iterator is a ticking generator (``for seg in
    child.eval(...)``) makes tick progress on every iteration even when
    the body itself never ticks.
    """
    names = collect_call_names(loop.node)
    return names


def iterator_call_names(loop: LoopSite) -> Set[str]:
    if loop.iter_expr is None:
        return set()
    return collect_call_names(loop.iter_expr)


# -- ctx detection -----------------------------------------------------------


def uses_exec_context(func: FunctionInfo) -> bool:
    """Does the function have an execution context in scope?

    True when it takes a ``ctx`` parameter, reads a ``ctx`` name, reads
    a ``_ctx`` attribute, or is a method of ``ExecContext`` itself.
    """
    if func.class_name == "ExecContext":
        return True
    args = func.node.args
    all_args = list(args.posonlyargs) + list(args.args) \
        + list(args.kwonlyargs)
    if any(arg.arg == "ctx" for arg in all_args):
        return True
    for node in ast.walk(func.node):
        if isinstance(node, ast.Name) and node.id == "ctx":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "_ctx":
            return True
    return False


# -- assignment-based inference (sets, floats) -------------------------------


def assigned_names_from_calls(func: ast.FunctionDef,
                              producer_names: frozenset) -> Set[str]:
    """Names assigned from ``x = producer(...)`` calls inside ``func``."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            called = call_name(value)
            if called in producer_names:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def set_valued_names(func: ast.FunctionDef) -> Set[str]:
    """Names bound to a set literal, set() call or set comprehension."""
    names: Set[str] = set()
    for node in ast.walk(func):
        targets: Sequence[ast.expr] = ()
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        if _is_set_expr(value):
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_set_expr(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        if name in ("set", "frozenset"):
            return True
        if isinstance(expr.func, ast.Name) and expr.func.id in (
                "Set", "FrozenSet"):
            return True
    return False


def strip_transparent_wrappers(expr: ast.expr) -> ast.expr:
    """Peel ``list(X)``/``tuple(X)``/``iter(X)`` down to ``X``.

    ``sorted(X)``/``reversed(sorted(X))`` establish a deterministic
    order and are *not* peeled — they sanitize the iterable.
    """
    while isinstance(expr, ast.Call):
        name = call_name(expr)
        if name in ("list", "tuple", "iter") and len(expr.args) == 1:
            expr = expr.args[0]
        else:
            break
    return expr


@dataclass(frozen=True)
class SourceLocation:
    """1-based source anchor used by the rule engine for findings."""

    line: int
    column: int

    @staticmethod
    def of(node: ast.AST) -> "SourceLocation":
        return SourceLocation(getattr(node, "lineno", 1),
                              getattr(node, "col_offset", 0) + 1)


def pragma_lines(module: ModuleInfo, rule: str) -> Dict[int, Pragma]:
    """Line -> pragma map for one rule name."""
    return {p.line: p for p in module.pragmas if p.rule == rule}


def pragma_for_line(pragmas: Dict[int, Pragma],
                    line: int) -> Optional[Pragma]:
    """Pragma covering ``line``: on the line itself or directly above."""
    return pragmas.get(line) or pragmas.get(line - 1)


def float_comparison_operands(
        node: ast.Compare) -> List[Tuple[ast.expr, ast.expr]]:
    """(left, right) operand pairs of ``==``/``!=`` comparators."""
    pairs: List[Tuple[ast.expr, ast.expr]] = []
    left = node.left
    for op, right in zip(node.ops, node.comparators):
        if isinstance(op, (ast.Eq, ast.NotEq)):
            pairs.append((left, right))
        left = right
    return pairs
