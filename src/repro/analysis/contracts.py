"""Registries for the engine contract analyzer (``repro lint --engine``).

The analyzer's rules are *scoped* and *exception-listed* here rather
than inline in the rule code, so the set of known-good sites is one
reviewable surface.  Every registry entry is effectively a standing
suppression: the analyzer records registry hits alongside pragma
suppressions in its report, keeping the exemptions auditable.

See ``docs/ENGINE_CONTRACTS.md`` for the rule catalogue.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

#: Engine packages the analyzer parses (relative to ``src/repro``).
CHECKED_PACKAGES: Tuple[str, ...] = (
    "exec", "aggregates", "baselines", "core", "index")

#: Function names whose bodies root the budget-contract reachability
#: walk, per package.  ``Operator.eval`` and aggregate ``lookup`` are
#: the paper-level entry points; the rest are the engine's own hot
#: entry points into those packages.
TICK_ROOTS: Dict[str, FrozenSet[str]] = {
    "exec": frozenset({"eval"}),
    "baselines": frozenset({"eval", "match_series"}),
    "aggregates": frozenset({"lookup", "evaluate", "build_index",
                             "materialize_all"}),
}

#: Packages where TRX3xx findings are *emitted* (reachability may
#: traverse others).  ``core`` loops are engine-boundary plumbing with
#: their own budget settlement, not operator hot loops.
BUDGET_SCOPE: Tuple[str, ...] = ("exec", "aggregates", "baselines")

#: Packages where materialization sites must charge (TRX302).  Only the
#: operator layer accumulates segments against ``max_segments``; the
#: baselines intentionally skip budget accounting (they model foreign
#: systems) and aggregates retain index rows, not segments.
CHARGE_SCOPE: Tuple[str, ...] = ("exec",)

#: Packages where TRX4xx determinism findings are emitted.
DETERMINISM_SCOPE: Tuple[str, ...] = ("exec", "core", "aggregates")

#: Packages where TRX5xx numeric-safety findings are emitted.  ``exec``
#: joined when the vector kernels (exec/vector.py) started doing float
#: arithmetic of their own; their intentionally-bitwise comparisons are
#: registered in :data:`EXACT_FLOAT_SITES` below.
#: ``index`` joined with the symbolic summaries (index/summary.py):
#: their envelope probes compare floats bitwise on purpose and carry
#: ``trex: float-exact`` pragmas at each site.
NUMERIC_SCOPE: Tuple[str, ...] = ("aggregates", "exec", "index")

#: Files allowed to read clocks/environment (TRX404): the engine
#: boundary where deadlines are minted, executors selected and metrics
#: timed.  Everything inside the operator/aggregate layer must receive
#: time through the :class:`~repro.exec.base.ExecContext`.
CLOCK_BOUNDARY_FILES: FrozenSet[str] = frozenset({
    "core/engine.py",
    "core/parallel.py",
    "exec/metrics.py",
})

#: Specific (file, qualname) functions allowed to read clocks outside
#: the boundary files.  ``ExecContext.tick`` *is* the deadline check
#: (``tick_batch`` is its amortized batch form), and the vector-kernel
#: default toggle is config read at context construction, not inside
#: operator evaluation.
CLOCK_BOUNDARY_FUNCTIONS: FrozenSet[Tuple[str, str]] = frozenset({
    ("exec/base.py", "ExecContext.tick"),
    ("exec/base.py", "ExecContext.tick_batch"),
    ("exec/vector.py", "default_enabled"),
})

#: Registered bitwise-exact float comparison sites (TRX501):
#: (file, qualname, short reason).  These comparisons are exact by
#: design and the differential fuzzer's threshold policy relies on
#: their two evaluation paths (direct vs. indexed) agreeing bit-for-bit.
EXACT_FLOAT_SITES: FrozenSet[Tuple[str, str, str]] = frozenset({
    ("aggregates/basic.py", "_StdIndex.__init__",
     "plateau run detection is exact by design"),
    ("aggregates/basic.py", "StdDevAggregate._direct",
     "constant-segment guard mirrors _StdIndex run detection"),
    ("aggregates/ticks.py", "_TickIndex.lookup",
     "up/down counts are integral-valued prefix sums"),
    ("exec/vector.py", "_vdiv",
     "mirrors the scalar division's bitwise b == 0 branch predicate"),
})

#: Pragma rule name -> diagnostic codes it may suppress.
PRAGMA_RULES: Dict[str, Tuple[str, ...]] = {
    "no-tick": ("TRX301", "TRX303"),
    "no-charge": ("TRX302",),
    "nondeterminism-ok": ("TRX401", "TRX402", "TRX403", "TRX404"),
    "float-exact": ("TRX501",),
    "nan-ok": ("TRX502",),
}

#: Parameter names treated as float-array carriers by the TRX501
#: type-lite inference (subscripts/elements of these compare as floats).
ARRAY_PARAM_NAMES: FrozenSet[str] = frozenset({
    "values", "arrays", "columns", "deltas", "signs"})

#: Calls whose results are treated as floats by the TRX501 inference.
FLOAT_CALL_NAMES: FrozenSet[str] = frozenset({
    "float", "range_sum", "range_mean", "lookup", "query"})

#: Calls that launder a value back to a non-float (clears TRX501).
INT_CALL_NAMES: FrozenSet[str] = frozenset({"int", "len", "bool"})

#: Call names that guard accumulations against NaN poisoning (TRX502).
NAN_GUARD_CALL_NAMES: FrozenSet[str] = frozenset({
    "isnan", "isfinite", "nan_to_num", "nansum", "nanmean"})
