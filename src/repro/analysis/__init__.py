"""Static analysis for T-ReX queries and physical plans (``trexlint``).

Two passes over a shared diagnostics framework:

* **query lint** (:mod:`repro.analysis.query_lint`) — ``TRX0xx`` errors
  and ``TRX1xx`` warnings over the parsed/bound query;
* **plan verify** (:mod:`repro.analysis.plan_verify`) — ``TRX2xx``
  operator-contract checks over physical plans.

See ``docs/LINTING.md`` for the full diagnostic catalogue.
"""

from repro.analysis.diagnostics import (CATALOG, Diagnostic, Severity, Span,
                                        has_errors, sort_diagnostics)
from repro.analysis.plan_verify import (check_cost_coverage,
                                        discover_exec_operators,
                                        operator_cost_key, reference_flow,
                                        verify_execution_contracts,
                                        verify_plan)
from repro.analysis.query_lint import analyze, lint_text

__all__ = [
    "CATALOG",
    "Diagnostic",
    "Severity",
    "Span",
    "analyze",
    "check_cost_coverage",
    "discover_exec_operators",
    "has_errors",
    "lint_text",
    "operator_cost_key",
    "reference_flow",
    "sort_diagnostics",
    "verify_execution_contracts",
    "verify_plan",
]
