"""Static analysis for T-ReX queries and physical plans (``trexlint``).

Two passes over a shared diagnostics framework:

* **query lint** (:mod:`repro.analysis.query_lint`) — ``TRX0xx`` errors
  and ``TRX1xx`` warnings over the parsed/bound query;
* **plan verify** (:mod:`repro.analysis.plan_verify`) — ``TRX2xx``
  operator-contract checks over physical plans;
* **engine lint** (:mod:`repro.analysis.engine_lint`) — ``TRX3xx``
  budget-contract, ``TRX4xx`` determinism and ``TRX5xx``
  numeric-safety checks over the engine's own source.

See ``docs/LINTING.md`` and ``docs/ENGINE_CONTRACTS.md`` for the full
diagnostic catalogue.
"""

from repro.analysis.diagnostics import (CATALOG, Diagnostic, Severity, Span,
                                        has_errors, sort_diagnostics)
from repro.analysis.engine_lint import (EngineLintReport, apply_baseline,
                                        lint_engine, lint_source,
                                        load_baseline, render_json,
                                        render_sarif, render_text,
                                        write_baseline)
from repro.analysis.plan_verify import (check_cost_coverage,
                                        discover_exec_operators,
                                        operator_cost_key, reference_flow,
                                        verify_execution_contracts,
                                        verify_plan)
from repro.analysis.query_lint import analyze, lint_text

__all__ = [
    "CATALOG",
    "Diagnostic",
    "EngineLintReport",
    "Severity",
    "Span",
    "analyze",
    "apply_baseline",
    "check_cost_coverage",
    "discover_exec_operators",
    "has_errors",
    "lint_engine",
    "lint_source",
    "lint_text",
    "load_baseline",
    "operator_cost_key",
    "reference_flow",
    "render_json",
    "render_sarif",
    "render_text",
    "sort_diagnostics",
    "verify_execution_contracts",
    "verify_plan",
]
