"""The 11 query templates of Table 3 / Appendix E.

Each :class:`QueryTemplate` bundles the canonical query text (in T-ReX's
extended syntax), the dataset it runs on, and its parameter grid.  Param
grids follow Appendix E; grids combine as a full cross product unless the
template trims it (like the paper's "at least 9 parameter sets").

Deviations from the appendix text are syntactic only and documented:

* parameters are written ``:name``;
* ``ZScoreOutlier(ℓ)`` takes its value column explicitly
  (``zscore_outlier(price, ℓ)``);
* grouping parentheses are explicit where the appendix relies on
  precedence (e.g. ``rebound``'s RISE applies to the fall+recovery
  sub-pattern);
* a handful of numeric thresholds are re-tuned to the synthetic datasets
  so result sets stay non-empty and run times stay CI-friendly
  (``v_shape``'s minimum leg length, ``limit_sell``'s rise ratio,
  ``AFA_Q1``'s K and the large-fall ratio sweeps, ``rptd_pttrn``'s k
  range).  The sweep *shapes* match Appendix E; EXPERIMENTS.md records
  the exact values used per run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import DataError
from repro.lang.query import Query, compile_query


@dataclass(frozen=True)
class QueryTemplate:
    """One parameterized query template."""

    name: str
    dataset: str
    text: str
    grid: Tuple[Tuple[str, Tuple[object, ...]], ...]
    has_not: bool = False
    has_nested_kleene: bool = False
    description: str = ""

    def param_sets(self) -> List[Dict[str, object]]:
        """The template's parameter sets (cross product of the grid)."""
        names = [name for name, _ in self.grid]
        value_lists = [values for _, values in self.grid]
        return [dict(zip(names, combo))
                for combo in itertools.product(*value_lists)]

    def compile(self, params: Dict[str, object]) -> Query:
        return compile_query(self.text, params)


def _grid(**kwargs) -> Tuple[Tuple[str, Tuple[object, ...]], ...]:
    return tuple((name, tuple(values)) for name, values in kwargs.items())


V_SHAPE = QueryTemplate(
    name="v_shape",
    dataset="sp500",
    description="Sub-series forming a V: linear fall then linear rise.",
    text="""
PARTITION BY ticker
ORDER BY tstamp
PATTERN ((DN & W) (UP & W)) & WINDOW
DEFINE
  SEGMENT W AS window(8, null),
  SEGMENT DN AS linear_reg_r2_signed(DN.tstamp, DN.price) <= :down_r2_max,
  SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.price) >= :up_r2_min,
  SEGMENT WINDOW AS window(1, :total_window_size)
""",
    grid=_grid(down_r2_max=[-0.7],
               up_r2_min=[0.7, 0.9, 1.0],
               total_window_size=[30, 60, 90]),
)

HEAD_SHLDR = QueryTemplate(
    name="head_shldr",
    dataset="sp500",
    description="Head-and-shoulders: five alternating trends with "
                "neck/head/shoulder ratio conditions.",
    text="""
PARTITION BY ticker
ORDER BY tstamp
PATTERN (((UP1 & W)
  ((((DN1 & W) (UP2 & W & NCK_2_HD))) & SHLDR_2_HD)
  ((((DN2 & W & HD_2_NCK) (UP3 & W))) & HD_2_SHLDR)
  (DN3 & W)) & WINDOW)
DEFINE
  SEGMENT W AS window(3, 10),
  SEGMENT DN1 AS linear_reg_r2_signed(DN1.tstamp, DN1.price) <= -:t,
  SEGMENT DN2 AS linear_reg_r2_signed(DN2.tstamp, DN2.price) <= -:t,
  SEGMENT DN3 AS linear_reg_r2_signed(DN3.tstamp, DN3.price) <= -:t,
  SEGMENT UP1 AS linear_reg_r2_signed(UP1.tstamp, UP1.price) >= :t,
  SEGMENT UP2 AS linear_reg_r2_signed(UP2.tstamp, UP2.price) >= :t,
  SEGMENT UP3 AS linear_reg_r2_signed(UP3.tstamp, UP3.price) >= :t,
  SEGMENT NCK_2_HD AS
    last(NCK_2_HD.price) / first(NCK_2_HD.price) > :r1,
  SEGMENT HD_2_NCK AS
    first(HD_2_NCK.price) / last(HD_2_NCK.price) > :r1,
  SEGMENT SHLDR_2_HD AS
    last(SHLDR_2_HD.price) / first(SHLDR_2_HD.price) > :r2,
  SEGMENT HD_2_SHLDR AS
    first(HD_2_SHLDR.price) / last(HD_2_SHLDR.price) > :r2,
  SEGMENT WINDOW AS window(1, :total_window_size)
""",
    grid=_grid(t=[0.7],
               total_window_size=[40, 60, 80],
               r1=[1.1, 1.15],
               r2=[1.0, 1.05, 1.11]),
)

OUTLIER = QueryTemplate(
    name="outlier",
    dataset="sp500",
    description="An up trend, a z-score outlier point, then another up "
                "trend.",
    text="""
PARTITION BY ticker
ORDER BY tstamp
PATTERN (UP1 OUTLIER UP2) & WINDOW
DEFINE
  OUTLIER AS zscore_outlier(price, :outlier_context_size) > :z_score_min,
  SEGMENT UP1 AS linear_reg_r2_signed(UP1.tstamp, UP1.price) >= :up_r2_min,
  SEGMENT UP2 AS linear_reg_r2_signed(UP2.tstamp, UP2.price) >= :up_r2_min,
  SEGMENT WINDOW AS window(1, :total_window_size)
""",
    grid=_grid(up_r2_min=[0.7],
               total_window_size=[30],
               outlier_context_size=[15, 20, 25],
               z_score_min=[2.61, 2.63, 2.65]),
)

REBOUND = QueryTemplate(
    name="rebound",
    dataset="covid19",
    description="COVID rebound: rise, sharp fall, then a stronger rise.",
    text="""
PARTITION BY county
ORDER BY tstamp
PATTERN (UP1 ((((DOWN & FALL) UP2)) & RISE)) & WINDOW
DEFINE
  SEGMENT FALL AS
    last(FALL.confirmed) / first(FALL.confirmed) < :fall_ratio,
  SEGMENT RISE AS
    last(RISE.confirmed) / first(RISE.confirmed) > :rise_ratio,
  SEGMENT UP1 AS
    linear_reg_r2_signed(UP1.tstamp, UP1.confirmed) >= :t,
  SEGMENT UP2 AS
    linear_reg_r2_signed(UP2.tstamp, UP2.confirmed) >= :t,
  SEGMENT DOWN AS
    linear_reg_r2_signed(DOWN.tstamp, DOWN.confirmed) <= -:t,
  SEGMENT WINDOW AS window(0, 60)
""",
    grid=_grid(t=[0.7],
               fall_ratio=[0.4, 0.6, 0.8],
               rise_ratio=[3, 4, 5]),
)

CLD_WAVE = QueryTemplate(
    name="cld_wave",
    dataset="weather",
    description="Cold wave: steep linear drop inside a monotone multi-week "
                "warm-up (Figure 3).",
    text="""
PARTITION BY city
ORDER BY tstamp
PATTERN ((W1 (DOWN & FALL & W2) W1) & UP_MK & WINDOW)
DEFINE
  SEGMENT W1 AS true,
  SEGMENT W2 AS window(1, 5),
  SEGMENT FALL AS last(FALL.temp) - first(FALL.temp) < -:fall_diff,
  SEGMENT DOWN AS
    linear_reg_r2_signed(DOWN.tstamp, DOWN.temp) <= -:down_r2_min,
  SEGMENT WINDOW AS window(25, 30),
  SEGMENT UP_MK AS mann_kendall_test(temp) >= 3.0
""",
    grid=_grid(fall_diff=[16, 18, 20],
               down_r2_min=[0.85, 0.9, 0.95]),
)

CLD_WAVE_ALT = QueryTemplate(
    name="cld_wave_alt",
    dataset="weather",
    description="Coarse-grained cold wave specification (Section 6.3's "
                "T-ReX-Alt): DOWN and FALL merged into one variable.",
    text="""
PARTITION BY city
ORDER BY tstamp
PATTERN ((W1 (DOWN_AND_FALL & W2) W1) & UP_MK & WINDOW)
DEFINE
  SEGMENT W1 AS true,
  SEGMENT W2 AS window(1, 5),
  SEGMENT DOWN_AND_FALL AS
    linear_reg_r2_signed(DOWN_AND_FALL.tstamp, DOWN_AND_FALL.temp)
      <= -:down_r2_min
    AND last(DOWN_AND_FALL.temp) - first(DOWN_AND_FALL.temp) < -:fall_diff,
  SEGMENT WINDOW AS window(25, 30),
  SEGMENT UP_MK AS mann_kendall_test(temp) >= 3.0
""",
    grid=_grid(fall_diff=[16, 18, 20],
               down_r2_min=[0.85, 0.9, 0.95]),
)

RPTD_PTTRN = QueryTemplate(
    name="rptd_pttrn",
    dataset="taxi",
    description="k repetitions of the daily taxi rise/fall pattern.",
    text="""
ORDER BY tstamp
PATTERN (((W1 (UP & RISE & W2) W3 (DOWN & FALL & W2) W1) & WINDOW){:k})
DEFINE
  SEGMENT W1 AS true,
  SEGMENT W2 AS window(20),
  SEGMENT W3 AS window(4),
  SEGMENT WINDOW AS window(48),
  SEGMENT UP AS linear_reg_r2_signed(UP.tstamp, UP.rides) >= :t,
  SEGMENT DOWN AS linear_reg_r2_signed(DOWN.tstamp, DOWN.rides) <= -:t,
  SEGMENT FALL AS last(FALL.rides) / first(FALL.rides) < 1 / :rise_ratio,
  SEGMENT RISE AS last(RISE.rides) / first(RISE.rides) > :rise_ratio
""",
    grid=_grid(t=[0.7],
               rise_ratio=[3, 4, 5],
               k=[1, 2, 3]),
)

LIMIT_SELL = QueryTemplate(
    name="limit_sell",
    dataset="sp500",
    description="Price at least doubles within the window with no "
                "intermediate crash (uses Not).",
    has_not=True,
    text="""
PARTITION BY ticker
ORDER BY tstamp
PATTERN (RISE & WINDOW & ~(FALL W))
DEFINE
  SEGMENT W AS true,
  SEGMENT RISE AS last(RISE.price) / first(RISE.price) > :rise_ratio,
  SEGMENT WINDOW AS window(1, :total_window_size),
  SEGMENT FALL AS last(FALL.price) / first(FALL.price) < :fall_ratio
""",
    grid=_grid(rise_ratio=[1.3],
               fall_ratio=[0.7, 0.8, 0.9],
               total_window_size=[15, 30, 60]),
)

OPENCEP_Q1 = QueryTemplate(
    name="OpenCEP_Q1",
    dataset="nasdaq",
    description="Three increasing peaks of one ticker within a time "
                "window (OpenCEP benchmark Q1).",
    text="""
ORDER BY tstamp
PATTERN ((A1 W (A2 & INC1) W (A3 & INC2)) & WINDOW)
DEFINE
  SEGMENT W AS true,
  A1 AS A1.ticker = :a,
  A2 AS A2.ticker = :a,
  A3 AS A3.ticker = :a,
  INC1 AS INC1.peak > A1.peak,
  INC2 AS INC2.peak > A2.peak,
  SEGMENT WINDOW AS window(tstamp, 0, :total_window_size, MINUTE)
""",
    grid=_grid(a=["GOOG"],
               total_window_size=[5, 20, 40, 60, 80]),
)

OPENCEP_Q2 = QueryTemplate(
    name="OpenCEP_Q2",
    dataset="nasdaq",
    description="Chained falling pairs of one ticker within a time window "
                "(OpenCEP benchmark Q2).",
    text="""
ORDER BY tstamp
PATTERN ((((A1 W A2) & FALL)+) & WINDOW)
DEFINE
  SEGMENT W AS true,
  A1 AS A1.ticker = :a,
  A2 AS A2.ticker = :a,
  SEGMENT FALL AS last(FALL.peak) < first(FALL.peak),
  SEGMENT WINDOW AS window(tstamp, 0, :total_window_size, MINUTE)
""",
    grid=_grid(a=["GOOG"],
               total_window_size=[5, 20, 40, 60, 80]),
)

AFA_Q1 = QueryTemplate(
    name="AFA_Q1",
    dataset="sp500",
    description="Large fall followed by k fall/rise oscillations with "
                "balanced up/down ticks (AFA benchmark Q1).",
    has_nested_kleene=True,
    text="""
PARTITION BY ticker
ORDER BY tstamp
PATTERN ((((LARGE_FALL & W) ((((FALL & W)+) ((RISE & W)+)){:K}))
  & EQ_FALL_AND_RISE) & WINDOW)
DEFINE
  SEGMENT W AS window(2),
  SEGMENT LARGE_FALL AS
    last(LARGE_FALL.price) / first(LARGE_FALL.price) < :large_fall_ratio,
  SEGMENT FALL AS last(FALL.price) < first(FALL.price),
  SEGMENT RISE AS last(RISE.price) > first(RISE.price),
  SEGMENT EQ_FALL_AND_RISE AS equal_up_down_ticks(price),
  SEGMENT WINDOW AS window(0, 30)
""",
    grid=_grid(K=[2],
               large_fall_ratio=[0.990, 0.985, 0.980, 0.975, 0.970,
                                 0.965, 0.960, 0.955, 0.950]),
)

AFA_Q2 = QueryTemplate(
    name="AFA_Q2",
    dataset="sp500",
    description="Large fall followed by oscillations that recover the "
                "starting price (AFA benchmark Q2).",
    has_nested_kleene=True,
    text="""
PARTITION BY ticker
ORDER BY tstamp
PATTERN ((LARGE_FALL & W) ((((FALL & W)+) ((RISE & W)+))+))
  & RECOVER & WINDOW
DEFINE
  SEGMENT W AS window(2),
  SEGMENT LARGE_FALL AS
    last(LARGE_FALL.price) / first(LARGE_FALL.price) < :large_fall_ratio,
  SEGMENT FALL AS last(FALL.price) < first(FALL.price),
  SEGMENT RISE AS last(RISE.price) > first(RISE.price),
  SEGMENT RECOVER AS last(RECOVER.price) >= first(RECOVER.price),
  SEGMENT WINDOW AS window(0, 30)
""",
    grid=_grid(large_fall_ratio=[0.990, 0.985, 0.980, 0.975, 0.970,
                                 0.965, 0.960, 0.955, 0.950]),
)

#: The 11 evaluation templates (Table 3 order), plus the alt specification.
TEMPLATES: Tuple[QueryTemplate, ...] = (
    V_SHAPE, HEAD_SHLDR, OUTLIER, REBOUND, CLD_WAVE, RPTD_PTTRN,
    LIMIT_SELL, OPENCEP_Q1, OPENCEP_Q2, AFA_Q1, AFA_Q2,
)

ALL_TEMPLATES: Tuple[QueryTemplate, ...] = TEMPLATES + (CLD_WAVE_ALT,)


def get_template(name: str) -> QueryTemplate:
    for template in ALL_TEMPLATES:
        if template.name == name:
            return template
    raise DataError(f"unknown query template {name!r}; available: "
                    f"{[t.name for t in ALL_TEMPLATES]}")


def iter_instances(template: QueryTemplate) -> Iterator[
        Tuple[Dict[str, object], Query]]:
    """Yield (params, compiled query) for every parameter set."""
    for params in template.param_sets():
        yield params, template.compile(params)
