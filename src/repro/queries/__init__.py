"""The 11 evaluation query templates of Table 3 / Appendix E."""

from repro.queries.templates import (ALL_TEMPLATES, TEMPLATES, QueryTemplate,
                                     get_template, iter_instances)

__all__ = ["ALL_TEMPLATES", "TEMPLATES", "QueryTemplate", "get_template",
           "iter_instances"]
