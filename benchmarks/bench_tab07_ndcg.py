"""Table 7 / Figures 11 & 23 — cost-model ranking quality (NDCG).

The optimizer's cost model ranks the rule-based plan families; NDCG
against the execution-time ranking measures agreement.  The paper reports
scores >0.9 for 8 of 11 queries with only 5 sampled series and ~1 ms of
statistics collection.
"""

import pytest

from repro.bench.runner import run_ndcg
from repro.queries import get_template

from conftest import once

CASES = {
    # template -> minimum acceptable NDCG at CI scale (paper values are
    # higher; small data adds timing noise).
    "v_shape": 0.55,
    "rebound": 0.55,
    "limit_sell": 0.5,
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_table7_ndcg(benchmark, tables, name):
    template = get_template(name)
    table = tables(template.dataset)
    param_sets = template.param_sets()[::4][:2]

    score, collection_seconds, points = once(
        benchmark,
        lambda: run_ndcg(template, table, param_sets=param_sets,
                         num_series=5))

    print(f"\nTable 7 [{name}]: NDCG={score:.3f}, stats collection "
          f"median={collection_seconds * 1000:.2f} ms")
    for label, cost, seconds in points[:8]:
        print(f"   {label:14s} est={cost:12.3g}  time={seconds:.4f}s")
    assert CASES[name] <= score <= 1.0
    # Statistics collection stays far below query time (paper: ~1 ms).
    assert collection_seconds < 1.0


def test_table7_sample_size_insensitive(tables):
    """Paper: going from 5 to 500 sampled series barely moves the score."""
    template = get_template("v_shape")
    table = tables("sp500")
    params = template.param_sets()[:1]
    small, _, _ = run_ndcg(template, table, param_sets=params, num_series=5)
    large, _, _ = run_ndcg(template, table, param_sets=params,
                           num_series=20)
    print(f"\nNDCG 5-series={small:.3f} vs 20-series={large:.3f}")
    assert abs(small - large) < 0.5
