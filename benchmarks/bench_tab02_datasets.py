"""Table 2 — dataset statistics regeneration."""

from repro.datasets import DATASET_SHAPES, dataset_statistics

from conftest import once


def test_table2_dataset_statistics(benchmark):
    """Regenerate Table 2 and check the paper's shape at default scale."""
    stats = once(benchmark, lambda: dataset_statistics(scale="default"))
    rows = []
    for name, entry in stats.items():
        rows.append((name, entry["num_series"], entry["series_length"]))
        default_shape = DATASET_SHAPES[name][0]
        assert entry["num_series"] == default_shape[0]
        assert entry["series_length"] == default_shape[1]
    print("\nTable 2 (default scale):")
    for name, num, length in sorted(rows):
        print(f"  {name:10s} series={num:5d} length={length:9.0f}")
