"""Figure 9 — RightProbeConcat vs SortMergeConcat.

Plan (b) of Figure 7: DOWN-then-UP (V-shape) with the R² threshold α
swept (Fig. 9a) and the search-space size varied (Fig. 9b).  The probe
variant's work must shrink as the left side grows more selective, while
Sort-Merge's work stays flat.
"""

import pytest

from repro.exec.base import ExecContext
from repro.exec.concat import RightProbeConcat, SortMergeConcat
from repro.exec.seggen import SegGenIndexing
from repro.lang.parser import parse_condition
from repro.lang.query import VarDef
from repro.lang.windows import WindowConjunction, WindowSpec
from repro.plan.search_space import SearchSpace

from conftest import once


def leaf(name, direction, alpha, max_len=20):
    op = "<=" if direction == "down" else ">="
    sign = "-" if direction == "down" else ""
    condition = parse_condition(
        f"linear_reg_r2_signed({name}.tstamp, {name}.price) "
        f"{op} {sign}{alpha}")
    var = VarDef(name, True, (WindowSpec.point(1, max_len),), condition,
                 frozenset())
    return SegGenIndexing(var, var.window_conjunction)


def build(cls, alpha):
    window = WindowConjunction([WindowSpec.point(2, 40)])
    return cls(leaf("DN", "down", alpha), leaf("UP", "up", 0.5), 0, window)


def run(op, series, sp=None):
    ctx = ExecContext(series)
    if sp is None:
        sp = SearchSpace.full(len(series))
    return sorted({s.bounds for s in op.eval(ctx, sp, {})}), ctx.stats


@pytest.fixture(scope="module")
def series(tables):
    return tables("sp500").partition(["ticker"], "tstamp")[0]


@pytest.mark.parametrize("alpha", [0.5, 0.7, 0.9])
def test_fig9a_probe_work_tracks_selectivity(benchmark, series, alpha):
    probe = build(RightProbeConcat, alpha)
    merge = build(SortMergeConcat, alpha)
    probe_result, probe_stats = once(benchmark,
                                     lambda: run(probe, series))
    merge_result, merge_stats = run(merge, series)
    assert probe_result == merge_result
    print(f"\nFig9a alpha={alpha}: probes={probe_stats['probe_calls']}, "
          f"sm evals={merge_stats['condition_evals']}")


def test_fig9a_higher_threshold_fewer_probes(benchmark, series):
    counts = {}

    def sweep():
        for alpha in (0.5, 0.9):
            _, stats = run(build(RightProbeConcat, alpha), series)
            counts[alpha] = stats["probe_calls"]

    once(benchmark, sweep)
    # More selective left side -> fewer right probes (paper Fig. 9a).
    assert counts[0.9] <= counts[0.5]


@pytest.mark.parametrize("space", ["pinned", "full"])
def test_fig9b_small_space_favors_probe(benchmark, series, space):
    n = len(series)
    sp = SearchSpace(0, 0, 0, n - 1) if space == "pinned" \
        else SearchSpace.full(n)
    probe = build(RightProbeConcat, 0.5)
    merge = build(SortMergeConcat, 0.5)
    probe_result, probe_stats = once(benchmark, lambda: run(probe, series,
                                                            sp))
    merge_result, merge_stats = run(merge, series, sp)
    assert probe_result == merge_result
    if space == "pinned":
        # With a pinned start the left side is tiny: probing beats
        # materializing the whole right side.
        assert probe_stats["condition_evals"] <= \
            merge_stats["condition_evals"]
    print(f"\nFig9b space={space}: probe evals="
          f"{probe_stats['condition_evals']}, "
          f"sm evals={merge_stats['condition_evals']}")


def vectorizable_leaf(name, cond_text, max_len=20):
    condition = parse_condition(cond_text)
    var = VarDef(name, True, (WindowSpec.point(1, max_len),), condition,
                 frozenset())
    return SegGenIndexing(var, var.window_conjunction)


def test_fig9_probe_concat_vector_parity(benchmark, series):
    """Probe-heavy concat: tiny per-probe search spaces hit the vector
    kernels' suspension-exact counter path; results and stats must be
    identical with the kernels on and off."""
    window = WindowConjunction([WindowSpec.point(2, 40)])

    def build_probe():
        return RightProbeConcat(
            vectorizable_leaf("DN", "avg(DN.price) <= 1.0"),
            vectorizable_leaf("UP", "avg(UP.price) >= 1.0"), 0, window)

    def run_toggled(vectorize):
        ctx = ExecContext(series, vectorize=vectorize)
        op = build_probe()
        result = sorted({s.bounds
                         for s in op.eval(ctx,
                                          SearchSpace.full(len(series)),
                                          {})})
        return result, ctx.stats

    scalar_result, scalar_stats = run_toggled(False)
    vector_result, vector_stats = once(benchmark,
                                       lambda: run_toggled(True))
    assert vector_result == scalar_result
    assert vector_stats == scalar_stats
    print(f"\nFig9 vector parity: {len(vector_result)} matches, "
          f"{scalar_stats['condition_evals']} condition evals")
