"""Table 4 / Figure 21 — optimizer vs rule-based plan baselines.

For each query template, every rule family (pr_left, pr_right, sm_left,
sm_right, plus the *_pnot variants for Not queries) and the cost-based
optimizer run over the same parameter sets; the cell value is the median
slow-down over the per-instance fastest plan.  The paper's headline: the
optimizer's median slow-down beats every baseline on every query.
"""


import pytest

from repro.bench.runner import median_slowdowns, run_optimizer_comparison
from repro.queries import get_template

from conftest import once

#: Template -> parameter subset (CI scale keeps three instances each).
CASES = ["v_shape", "rebound", "cld_wave", "limit_sell", "OpenCEP_Q2"]


@pytest.mark.parametrize("name", CASES)
def test_table4_optimizer_vs_baselines(benchmark, tables, name):
    template = get_template(name)
    table = tables(template.dataset)
    param_sets = template.param_sets()[::3][:3]

    comparisons = once(benchmark, lambda: run_optimizer_comparison(
        template, table, param_sets=param_sets))

    # All plan families must agree on results.
    for comparison in comparisons:
        assert len(set(comparison.matches.values())) == 1, comparison.params

    medians = median_slowdowns(comparisons)
    print(f"\nTable 4 [{name}]: " + "  ".join(
        f"{label}={value:.2f}" for label, value in sorted(medians.items())))

    # Shape claim (loose, wall-clock based): the optimizer's median
    # slow-down is within 2x of the best rule family's — the paper reports
    # it *beating* every family; at CI scale planning overhead can eat the
    # margin, hence the tolerance.
    best_baseline = min(value for label, value in medians.items()
                        if label != "optimizer")
    assert medians["optimizer"] <= max(2.0 * best_baseline, 3.0), medians


def test_table4_no_single_baseline_dominates(benchmark, tables):
    """Paper takeaway (1): no rule family is consistently best."""

    def collect():
        winners = set()
        for name in ("v_shape", "cld_wave", "OpenCEP_Q2"):
            template = get_template(name)
            table = tables(template.dataset)
            comparisons = run_optimizer_comparison(
                template, table, param_sets=template.param_sets()[:1])
            times = {label: value
                     for label, value in comparisons[0].times.items()
                     if label != "optimizer"}
            winners.add(min(times, key=times.get))
        return winners

    winners = once(benchmark, collect)
    print(f"\nper-query fastest baselines: {sorted(winners)}")
    # At least two different families win somewhere.
    assert len(winners) >= 2
