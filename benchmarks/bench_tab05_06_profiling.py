"""Tables 5 & 6 — offline cost-parameter profiling regeneration."""

from repro.aggregates.registry import DEFAULT_REGISTRY
from repro.optimizer.profiler import profile_aggregates, profile_operators

from conftest import once


def test_table5_operator_weights(benchmark):
    weights = once(benchmark, lambda: profile_operators(sizes=(120, 240)))
    print("\nTable 5 (locally profiled w in f_op, ns):")
    for name, value in sorted(weights.items()):
        print(f"  {name:20s} {value:12.1f}")
    # Every operator of Table 5 must be profiled with a positive weight.
    for name in ("SegGenWindow", "SegGenFilter", "SegGenIndexing",
                 "SortMergeConcat", "RightProbeConcat", "LeftProbeConcat",
                 "SortMergeOr", "MaterializeNot", "ProbeNot",
                 "MaterializeKleene", "SortMergeAnd", "LeftProbeAnd",
                 "RightProbeAnd"):
        assert weights.get(name, 0) > 0, name
    # Relative shape from the paper: the plain window generator is the
    # cheapest leaf, probes cost more per row than sort-merge.
    assert weights["SegGenWindow"] < weights["SegGenFilter"]
    assert weights["RightProbeConcat"] > weights["SortMergeConcat"]


def test_table6_aggregate_weights(benchmark):
    names = ["linear_regression_r2", "mann_kendall_test",
             "equal_up_down_ticks", "sum"]
    weights = once(benchmark,
                   lambda: profile_aggregates(names=names,
                                              sizes=(120, 240)))
    print("\nTable 6 (locally profiled aggregate weights, ns):")
    for name, (w_ind, w_lookup, w_direct) in sorted(weights.items()):
        agg = DEFAULT_REGISTRY.get(name)
        shapes = (agg.index_cost_shape, agg.lookup_cost_shape,
                  agg.direct_cost_shape)
        print(f"  {name:24s} ind={w_ind:10.1f}({shapes[0]}) "
              f"lookup={w_lookup:10.1f}({shapes[1]}) "
              f"direct={w_direct:10.1f}({shapes[2]})")
    for name in names:
        assert weights[name][2] > 0, name
    # Shape annotations match the paper: linear regression indexes
    # linearly, Mann-Kendall quadratically (direct eval per segment).
    assert DEFAULT_REGISTRY.get("linear_regression_r2") \
        .index_cost_shape == "L"
    assert DEFAULT_REGISTRY.get("mann_kendall_test").index_cost_shape == "Q"
