"""Figure 12 / Figure 22a — T-ReX vs baseline executors per query.

Runs each query template across the executor line-up (T-ReX, T-ReX Batch,
AFA, Nested-AFA, ZStream, OpenCEP) at CI scale and asserts the paper's
shape claims:

* every executor returns identical matches,
* T-ReX beats the naive tree executors (OpenCEP/ZStream) overall,
* window-aware Kleene keeps OpenCEP_Q2 flat for T-ReX while the naive
  trees grow with the window (the Fig. 12h story),
* the cld_wave alternative coarse specification is slower (Section 6.3's
  T-ReX-Alt).
"""

import statistics

import pytest

from repro.bench.runner import (median_speedups, run_executor_comparison,
                                run_query_all_series)
from repro.queries import get_template

from conftest import once

ALL_LABELS = ["trex", "trex-batch", "afa", "nested-afa", "zstream",
              "opencep"]


def _sum_time(rows):
    return sum(seconds for _, seconds, _ in rows)


@pytest.mark.parametrize("name", ["v_shape", "rebound", "cld_wave",
                                  "limit_sell"])
def test_fig12_executor_lineup(benchmark, tables, name):
    template = get_template(name)
    table = tables(template.dataset)
    param_sets = template.param_sets()[::4][:2]

    results = once(benchmark, lambda: run_executor_comparison(
        template, table, ALL_LABELS, param_sets=param_sets))

    # Identical match counts per parameter set across executors.
    for index in range(len(param_sets)):
        counts = {label: rows[index][2] for label, rows in results.items()
                  if len(rows) > index}
        assert len(set(counts.values())) == 1, (name, index, counts)

    speedups = median_speedups(results, reference="trex")
    print(f"\nFig12 [{name}] median speedup of T-ReX over: " + "  ".join(
        f"{label}={value:.1f}x" for label, value in sorted(speedups.items())))
    # Shape claim: T-ReX is not slower than the naive tree executors by
    # more than noise (paper: 19x/42x median in its favour).
    assert speedups.get("opencep", 1.0) > 0.5
    assert speedups.get("zstream", 1.0) > 0.5


def test_fig12h_window_aware_kleene(benchmark, tables):
    """OpenCEP_Q2: naive executors blow up with the window size while
    T-ReX's window-aware MaterializeKleene stays nearly flat."""
    template = get_template("OpenCEP_Q2")
    table = tables("nasdaq")
    small, large = template.param_sets()[0], template.param_sets()[-1]

    def timing(label, params):
        query = template.compile(params)
        series = table.partition(query.partition_by, query.order_by)
        seconds, matches = run_query_all_series(query, series, label)
        return seconds, matches

    trex_small, m1 = once(benchmark, lambda: timing("trex", small))
    trex_large, m2 = timing("trex", large)
    zstream_small, m3 = timing("zstream", small)
    zstream_large, m4 = timing("zstream", large)
    assert m1 == m3 and m2 == m4

    trex_growth = trex_large / max(trex_small, 1e-9)
    zstream_growth = zstream_large / max(zstream_small, 1e-9)
    print(f"\nFig12h growth small->large window: "
          f"T-ReX {trex_growth:.1f}x, ZStream {zstream_growth:.1f}x; "
          f"largest-window times: T-ReX {trex_large:.2f}s vs "
          f"ZStream {zstream_large:.2f}s")
    # ZStream must be slower than T-ReX at the largest window.
    assert zstream_large > trex_large


def test_cld_wave_alt_specification_slower(benchmark, tables):
    """Section 6.3: the coarse-grained cld_wave spec (DOWN and FALL merged)
    denies the optimizer its pruning anchor and runs slower."""
    fine = get_template("cld_wave")
    coarse = get_template("cld_wave_alt")
    table = tables("weather")
    params = {"fall_diff": 18, "down_r2_min": 0.9}

    def run(template):
        query = template.compile(params)
        series = table.partition(query.partition_by, query.order_by)
        seconds, matches = run_query_all_series(query, series, "trex")
        return seconds, matches

    fine_seconds, fine_matches = once(benchmark, lambda: run(fine))
    coarse_seconds, coarse_matches = run(coarse)
    assert fine_matches == coarse_matches  # same results
    print(f"\ncld_wave fine={fine_seconds:.2f}s vs "
          f"alt={coarse_seconds:.2f}s "
          f"({coarse_seconds / max(fine_seconds, 1e-9):.1f}x)")
    # Loose shape claim (paper: >=4x slower).
    assert coarse_seconds >= 0.5 * fine_seconds


def test_fig12_trex_beats_batch_median(benchmark, tables):
    """Figure 12 / 22a: probe operators give T-ReX an edge over batch mode
    (median of median speedups 3.9x in the paper)."""
    ratios = []
    once(benchmark, lambda: None)
    for name in ("cld_wave", "rebound"):
        template = get_template(name)
        table = tables(template.dataset)
        params = template.param_sets()[4]
        query = template.compile(params)
        series = table.partition(query.partition_by, query.order_by)
        trex_seconds, m1 = run_query_all_series(query, series, "trex")
        batch_seconds, m2 = run_query_all_series(query, series,
                                                 "trex-batch")
        assert m1 == m2
        ratios.append(batch_seconds / max(trex_seconds, 1e-9))
    print(f"\nT-ReX Batch / T-ReX time ratios: "
          f"{[f'{r:.1f}x' for r in ratios]}")
    assert statistics.median(ratios) > 1.0
