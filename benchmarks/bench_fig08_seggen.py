"""Figure 8 — SegGenIndexing vs SegGenFilter.

Plan (a) of Figure 7: a single DOWN segment generator with a linear
regression condition, swept over window size ℓ (Fig. 8a) and search-space
size (Fig. 8b).  Shape claims asserted on deterministic work counters;
wall-clock series recorded via pytest-benchmark.
"""

import pytest

from repro.exec.base import ExecContext
from repro.exec.seggen import SegGenFilter, SegGenIndexing
from repro.lang.parser import parse_condition
from repro.lang.query import VarDef
from repro.lang.windows import WindowSpec
from repro.plan.search_space import SearchSpace

from conftest import once


def down_leaf(cls, length):
    condition = parse_condition(
        "linear_reg_r2_signed(DN.tstamp, DN.price) <= -0.7")
    var = VarDef("DN", True, (WindowSpec.point(0, length),), condition,
                 frozenset())
    return cls(var, var.window_conjunction)


def run_leaf(op, series, sp=None):
    ctx = ExecContext(series)
    if sp is None:
        sp = SearchSpace.full(len(series))
    count = sum(1 for _ in op.eval(ctx, sp, {}))
    return count, ctx.stats


@pytest.fixture(scope="module")
def series(tables):
    return tables("sp500").partition(["ticker"], "tstamp")[0]


@pytest.mark.parametrize("window_size", [5, 20, 60])
def test_fig8a_indexing_vs_filter_by_window(benchmark, series, window_size):
    """Fig 8a: full search space, growing window size ℓ."""
    filter_op = down_leaf(SegGenFilter, window_size)
    index_op = down_leaf(SegGenIndexing, window_size)

    filter_count, filter_stats = run_leaf(filter_op, series)
    index_count, index_stats = once(
        benchmark, lambda: run_leaf(index_op, series))

    assert filter_count == index_count  # identical results
    # Computation sharing: exactly one index build, everything else O(1)
    # lookups — while the filter pays a full aggregation per candidate.
    assert index_stats["index_builds"] == 1
    assert index_stats["index_lookups"] == filter_stats["condition_evals"]
    assert filter_stats["direct_agg_evals"] == \
        filter_stats["condition_evals"]
    print(f"\nFig8a window={window_size}: candidates="
          f"{filter_stats['condition_evals']}, "
          f"filter agg evals={filter_stats['direct_agg_evals']}, "
          f"indexed lookups={index_stats['index_lookups']}")


@pytest.mark.parametrize("space", ["tiny", "full"])
def test_fig8b_small_search_space_favors_filter(benchmark, series, space):
    """Fig 8b: with a small search space the one-off index build cost is
    not amortized — SegGenFilter touches fewer values in total."""
    window_size = 20
    if space == "tiny":
        sp = SearchSpace(0, 0, 0, window_size)
    else:
        sp = SearchSpace.full(len(series))
    filter_op = down_leaf(SegGenFilter, window_size)
    index_op = down_leaf(SegGenIndexing, window_size)

    fcount, fstats = once(benchmark, lambda: run_leaf(filter_op, series, sp))
    icount, istats = run_leaf(index_op, series, sp)
    assert fcount == icount
    if space == "tiny":
        # Index build scans the whole series; the filter only pays for the
        # few candidate segments.
        touched_by_filter = fstats["condition_evals"] * window_size
        assert touched_by_filter < len(series) * 2
    print(f"\nFig8b space={space}: candidates={fstats['condition_evals']}")


def vector_leaf(cls, cond_text, window_size):
    condition = parse_condition(cond_text)
    var = VarDef("DN", True, (WindowSpec.point(2, window_size),), condition,
                 frozenset())
    return cls(var, var.window_conjunction)


def run_leaf_toggled(op, series, vectorize):
    ctx = ExecContext(series, vectorize=vectorize)
    segments = [s.bounds for s in op.eval(ctx,
                                          SearchSpace.full(len(series)),
                                          {})]
    return segments, ctx.stats


@pytest.mark.parametrize("cls,cond", [
    (SegGenFilter, "max(DN.price) - min(DN.price) >= 5.0"),
    (SegGenIndexing, "avg(DN.price) > 1.0"),
], ids=["direct", "indexed"])
def test_fig8_vector_kernels_identical_and_faster(benchmark, series, cls,
                                                  cond):
    """The numpy batch path must emit byte-identical segments and stats
    while beating the scalar loop on a full-space leaf sweep."""
    import time

    op = vector_leaf(cls, cond, 60)
    t0 = time.perf_counter()
    scalar_out, scalar_stats = run_leaf_toggled(op, series, False)
    scalar_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    vector_out, vector_stats = once(
        benchmark, lambda: run_leaf_toggled(op, series, True))
    vector_wall = time.perf_counter() - t0
    assert vector_out == scalar_out
    assert vector_stats == scalar_stats
    # Timing gate is deliberately loose (CI-scale series are small);
    # the calibrated gate lives in `repro bench --vector`.
    assert vector_wall <= scalar_wall, \
        f"vector path slower: {vector_wall:.4f}s vs {scalar_wall:.4f}s"
    print(f"\nFig8 vector {cls.__name__}: "
          f"{scalar_wall / max(vector_wall, 1e-9):.1f}x over scalar, "
          f"{len(vector_out)} segments")
