"""Ablation benchmarks for T-ReX's design choices (DESIGN.md §5).

Beyond the paper's own ablations (probe operators via T-ReX Batch,
computation sharing via Figure 22b), these isolate two further design
choices the paper folds into the system:

* **window push-down** (logical rewrite rule 2) — disabling it leaves
  leaves unbounded and work explodes on padded patterns like cld_wave;
* **sub-pattern materialization** (Section 4.5.1) — repeated variables
  re-evaluate without the SubPattern memo.
"""


from repro.core.engine import TRexEngine
from repro.exec.base import ExecContext
from repro.optimizer.rulebased import RuleBasedPlanner, RuleStrategy
from repro.plan.logical import build_logical_plan
from repro.plan.search_space import SearchSpace
from repro.queries import get_template

from conftest import once


def run_plan(plan, series_list, query):
    matches = 0
    stats_total = {}
    for series in series_list:
        ctx = ExecContext(series, query.registry)
        matches += len({seg.bounds for seg in plan.eval(
            ctx, SearchSpace.full(len(series)), {})})
        for key, value in ctx.stats.items():
            stats_total[key] = stats_total.get(key, 0) + value
    return matches, stats_total


def test_ablation_window_pushdown(benchmark):
    """cld_wave without push-down: pads lose their 30-day bound and the
    executor generates far more candidate segments.

    Runs on a deliberately tiny slice — without push-down the padding
    variables enumerate O(n^2) segments, which is exactly the explosion
    being demonstrated."""
    from repro.datasets import load
    template = get_template("cld_wave")
    table = load("weather", num_series=1, length=120)
    query = template.compile({"fall_diff": 18, "down_r2_min": 0.9})
    series_list = table.partition(query.partition_by, query.order_by)
    planner = RuleBasedPlanner(RuleStrategy("left", "probe"))

    pushed_plan = planner.plan(query, build_logical_plan(
        query, push_windows=True))
    unpushed_plan = planner.plan(query, build_logical_plan(
        query, push_windows=False))

    pushed_matches, pushed_stats = once(
        benchmark, lambda: run_plan(pushed_plan, series_list, query))
    unpushed_matches, unpushed_stats = run_plan(unpushed_plan, series_list,
                                                query)
    assert pushed_matches == unpushed_matches
    print(f"\nAblation push-down: "
          f"emitted with={pushed_stats.get('segments_emitted', 0)} "
          f"without={unpushed_stats.get('segments_emitted', 0)}")
    # Without push-down the executor must do at least as much work.
    assert unpushed_stats.get("segments_emitted", 0) >= \
        pushed_stats.get("segments_emitted", 0)


def test_ablation_subpattern_memo(benchmark, tables):
    """Repeated W1 pads: the SubPattern memo avoids re-evaluating the
    repeated sub-pattern in batch plans."""
    from repro.exec.special import SubPatternCache

    template = get_template("cld_wave")
    table = tables("weather")
    query = template.compile({"fall_diff": 18, "down_r2_min": 0.9})
    series_list = table.partition(query.partition_by, query.order_by)

    plan = RuleBasedPlanner(RuleStrategy("left", "sm")).plan(query)

    def has_subpattern(op):
        if isinstance(op, SubPatternCache):
            return True
        return any(has_subpattern(child) for child in op.children())

    assert has_subpattern(plan)  # the memo is actually in the plan
    matches, stats = once(benchmark, lambda: run_plan(plan, series_list,
                                                      query))
    print(f"\nAblation SubPattern: cache hits="
          f"{stats.get('subpattern_cache_hits', 0)} over "
          f"{stats.get('subpattern_evals', 0)} evaluations")
    assert stats.get("subpattern_cache_hits", 0) >= 1


def test_ablation_probe_window_anchoring(benchmark, tables):
    """Probe search spaces are tightened by the window anchored at the
    known boundary; verify the probe count stays bounded by the windowed
    candidates rather than the whole series."""
    template = get_template("cld_wave")
    table = tables("weather")
    query = template.compile({"fall_diff": 18, "down_r2_min": 0.9})
    series_list = table.partition(query.partition_by, query.order_by)
    engine = TRexEngine(optimizer="cost", sharing="auto")
    result = once(benchmark,
                  lambda: engine.execute_query(query, series_list))
    n_total = sum(len(series) for series in series_list)
    print(f"\nprobe calls={result.stats.get('probe_calls', 0)} over "
          f"{n_total} points total")
    # Windowed anchoring keeps probes within a small multiple of the
    # series length (unbounded pads would square it).
    assert result.stats.get("probe_calls", 0) < n_total * 40
