"""And-operator micro-benchmark (extension).

Section 6.1 omits the And operators "due to similarity to Concatenation";
this bench closes that gap: RightProbeAnd vs SortMergeAnd across the
selectivity of the anchoring side, mirroring Figure 9's methodology.
"""

import pytest

from repro.exec.and_or import RightProbeAnd, SortMergeAnd
from repro.exec.base import ExecContext
from repro.exec.seggen import SegGenIndexing
from repro.lang.parser import parse_condition
from repro.lang.query import VarDef
from repro.lang.windows import WindowConjunction, WindowSpec
from repro.plan.search_space import SearchSpace

from conftest import once


def leaf(name, alpha, direction=">="):
    condition = parse_condition(
        f"linear_reg_r2_signed({name}.tstamp, {name}.price) "
        f"{direction} {alpha}")
    var = VarDef(name, True, (WindowSpec.point(1, 20),), condition,
                 frozenset())
    return SegGenIndexing(var, var.window_conjunction)


def build(cls, alpha):
    window = WindowConjunction([WindowSpec.point(1, 20)])
    # Anchor: rising fit above alpha; other side: small absolute drift.
    other = leaf("FLAT", -0.2, ">=")
    return cls(leaf("UP", alpha), other, window)


def run(op, series):
    ctx = ExecContext(series)
    count = len({seg.bounds
                 for seg in op.eval(ctx, SearchSpace.full(len(series)), {})})
    return count, ctx.stats


@pytest.fixture(scope="module")
def series(tables):
    return tables("sp500").partition(["ticker"], "tstamp")[0]


@pytest.mark.parametrize("alpha", [0.3, 0.6, 0.9])
def test_probe_and_vs_sortmerge(benchmark, series, alpha):
    probe = build(RightProbeAnd, alpha)
    merge = build(SortMergeAnd, alpha)
    probe_count, probe_stats = once(benchmark, lambda: run(probe, series))
    merge_count, merge_stats = run(merge, series)
    assert probe_count == merge_count
    print(f"\nAnd micro alpha={alpha}: probes="
          f"{probe_stats['probe_calls']}, "
          f"sm evals={merge_stats['condition_evals']}")


def test_probe_count_tracks_anchor_selectivity(benchmark, series):
    counts = {}

    def sweep():
        for alpha in (0.3, 0.9):
            _, stats = run(build(RightProbeAnd, alpha), series)
            counts[alpha] = stats["probe_calls"]

    once(benchmark, sweep)
    # A more selective anchor probes less (the Fig. 9a analogue for And).
    assert counts[0.9] <= counts[0.3]
