"""Shared fixtures for the benchmark suite.

Benchmarks run at CI-friendly scales by default; set ``TREX_BENCH_SCALE=paper``
to use the paper's full dataset sizes (slow).  Timing assertions are
deliberately loose — the *shape* claims (who wins, what grows) are asserted
on deterministic work counters wherever possible.
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import load

FULL = os.environ.get("TREX_BENCH_SCALE", "").lower() == "paper"

SIZES = {
    "sp500": dict(num_series=20, length=252),
    "covid19": dict(num_series=20, length=64),
    "weather": dict(num_series=3, length=500),
    "taxi": dict(num_series=1, length=960),
    "nasdaq": dict(num_series=1, length=4000),
}


@pytest.fixture(scope="session")
def tables():
    """Lazily-loaded dataset tables at bench scale."""
    cache = {}

    def get(name):
        if name not in cache:
            if FULL:
                cache[name] = load(name, scale="full")
            else:
                cache[name] = load(name, **SIZES[name])
        return cache[name]

    return get


@pytest.fixture(scope="session", autouse=True)
def _templates_lint_clean():
    """Every benchmark query template must be lint-clean (once per run)."""
    from repro.analysis import lint_text
    from repro.queries import ALL_TEMPLATES

    problems = []
    for template in ALL_TEMPLATES:
        params = dict(template.param_sets()[0])
        for diag in lint_text(template.text, params):
            problems.append(f"{template.name}: {diag.format()}")
    assert not problems, "benchmark templates are not lint-clean:\n" + \
        "\n".join(problems)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
