"""Figure 10 — ProbeNot vs MaterializeNot.

Plan (c) of Figure 7: segments without a >=5% drop from the start.  With a
small search space (Fig. 10a) ProbeNot's few probes win; over the full
space (Fig. 10b) MaterializeNot's single child pass wins.
"""

import pytest

from repro.exec.base import ExecContext
from repro.exec.not_op import MaterializeNot, ProbeNot
from repro.exec.seggen import SegGenFilter
from repro.lang.parser import parse_condition
from repro.lang.query import VarDef
from repro.lang.windows import WindowConjunction, WindowSpec
from repro.plan.search_space import SearchSpace

from conftest import once


def build(cls, window_size):
    condition = parse_condition(
        "last(DROP.price) / first(DROP.price) < 0.95")
    var = VarDef("DROP", True, (WindowSpec.point(0, window_size),),
                 condition, frozenset())
    child = SegGenFilter(var, var.window_conjunction)
    window = WindowConjunction([WindowSpec.point(1, window_size)])
    return cls(child, window)


def run(op, series, sp):
    ctx = ExecContext(series)
    return sorted({s.bounds for s in op.eval(ctx, sp, {})}), ctx.stats


@pytest.fixture(scope="module")
def series(tables):
    return tables("sp500").partition(["ticker"], "tstamp")[0]


@pytest.mark.parametrize("window_size", [5, 10, 20])
def test_fig10a_small_space(benchmark, series, window_size):
    """Search space (1, n): one start position — few probes."""
    n = len(series)
    sp = SearchSpace(0, 0, 0, n - 1)
    probe = build(ProbeNot, window_size)
    mat = build(MaterializeNot, window_size)
    probe_result, probe_stats = once(benchmark, lambda: run(probe, series,
                                                            sp))
    mat_result, mat_stats = run(mat, series, sp)
    assert probe_result == mat_result
    # Few candidates -> few probes (the Fig. 10a regime).
    assert probe_stats["probe_calls"] <= window_size + 1
    print(f"\nFig10a window={window_size}: "
          f"probes={probe_stats['probe_calls']}, "
          f"materialize child evals={mat_stats['condition_evals']}")


@pytest.mark.parametrize("window_size", [5, 10, 20])
def test_fig10b_full_space(benchmark, series, window_size):
    """Search space (n, n): probing once per candidate is the slow path."""
    n = len(series)
    sp = SearchSpace.full(n)
    probe = build(ProbeNot, window_size)
    mat = build(MaterializeNot, window_size)
    mat_result, mat_stats = once(benchmark, lambda: run(mat, series, sp))
    probe_result, probe_stats = run(probe, series, sp)
    assert probe_result == mat_result
    # One probe per windowed candidate: far more calls than the single
    # materializing pass (which makes exactly one child evaluation sweep).
    assert probe_stats["probe_calls"] >= n
    print(f"\nFig10b window={window_size}: "
          f"probes={probe_stats['probe_calls']}, "
          f"materialize child evals={mat_stats['condition_evals']}")


def test_fig10_optimizer_picks_by_space(benchmark, tables):
    """The cost model must prefer ProbeNot for tiny spaces and
    MaterializeNot for the full space (the figure's crossover)."""
    from repro.optimizer.cost_params import DEFAULT_COST_PARAMS as P
    # Direct check of the two Table 1 formulas at the two regimes.
    once(benchmark, lambda: None)
    child_cost_full, c_in = 1000.0, 400.0
    child_cost_unit, c_unit = 30.0, 0.5
    box_small, box_big = 10.0, 5000.0
    for box, expect_probe in ((box_small, True), (box_big, False)):
        c_out = max(box - c_in, 1.0)
        mat = P.f_op("MaterializeNot", c_in + c_out) + child_cost_full
        probe = P.f_op("ProbeNot", c_unit + c_out) + box * (
            child_cost_unit / max(c_unit, 1.0) + P.probe_overhead)
        assert (probe < mat) == expect_probe, (box, probe, mat)
