"""Figure 22b — effect of computation sharing per executor.

Enabling aggregate pre-computation must help queries dominated by
expensive aggregates (v_shape saw ~10x in the paper) — and *hurt* AFA on
cld_wave, where eagerly materializing the quadratic Mann-Kendall table
costs more than the few evaluations the hand-tuned order needs.  T-ReX's
optimizer dodges that trap by choosing per leaf.
"""


from repro.bench.runner import run_query_all_series, run_sharing_ablation
from repro.queries import get_template

from conftest import once


def test_fig22b_vshape_gains_from_sharing(benchmark, tables):
    template = get_template("v_shape")
    table = tables("sp500")
    speedups = once(benchmark, lambda: run_sharing_ablation(
        template, table, ["trex", "afa"],
        param_sets=template.param_sets()[:2]))
    print("\nFig22b v_shape sharing speedups: " + "  ".join(
        f"{label}={value:.2f}x" for label, value in sorted(speedups.items())))
    # Linear-regression-heavy query: sharing should not hurt, and should
    # help AFA, which evaluates aggregates everywhere.
    assert speedups["afa"] > 1.0
    assert speedups["trex"] > 0.5


def test_fig22b_afa_hurt_by_mk_precompute_on_cld_wave(benchmark, tables):
    """The paper's cautionary tale: pre-computing Mann-Kendall for AFA on
    cld_wave costs more than it saves (4.9x slowdown in the paper)."""
    template = get_template("cld_wave")
    table = tables("weather")
    params = {"fall_diff": 18, "down_r2_min": 0.9}
    query = template.compile(params)
    series = table.partition(query.partition_by, query.order_by)

    on_seconds, m1 = once(benchmark, lambda: run_query_all_series(
        query, series, "afa", sharing=True))
    off_seconds, m2 = run_query_all_series(query, series, "afa",
                                           sharing=False)
    assert m1 == m2
    ratio = on_seconds / max(off_seconds, 1e-9)
    print(f"\nFig22b cld_wave AFA sharing-on/off = {ratio:.2f}x "
          f"(paper: ~4.9x slower with sharing)")
    # Sharing must not be a clear win here; the eager quadratic build is
    # the dominant cost at paper scale (at CI scale we assert >= parity).
    assert ratio > 0.8


def test_fig22b_trex_optimizer_avoids_bad_sharing(benchmark, tables):
    """T-ReX 'auto' sharing must not be slower than forced sharing by much
    on cld_wave — the optimizer declines the Mann-Kendall index."""
    template = get_template("cld_wave")
    table = tables("weather")
    params = {"fall_diff": 18, "down_r2_min": 0.9}
    query = template.compile(params)
    series = table.partition(query.partition_by, query.order_by)
    auto_seconds, m1 = once(benchmark, lambda: run_query_all_series(
        query, series, "trex", sharing=True))
    from repro.baselines import TRexExecutorAdapter
    import time
    forced = TRexExecutorAdapter(query, "cost", "on", "T-ReX forced")
    t0 = time.perf_counter()
    m2 = sum(len(forced.match_series(s)) for s in series)
    forced_seconds = time.perf_counter() - t0
    assert m1 == m2
    print(f"\ncld_wave T-ReX auto={auto_seconds:.2f}s "
          f"forced-sharing={forced_seconds:.2f}s")
    assert auto_seconds <= forced_seconds * 2.0
