#!/usr/bin/env python
"""CLI chaos sweep: drive ``python -m repro query`` under ``TREX_FAULTS``.

Runs one reference query in a subprocess for every (fault point, action,
error policy) combination and checks the observed behaviour against the
policy matrix of docs/ROBUSTNESS.md: expected exit code, one-line
``error:`` stderr on failure, ``warning:`` degradation notes on
recovery.  Writes a machine-readable JSON summary (uploaded as a CI
artifact by the ``chaos`` job).

Usage::

    python tools/chaos_sweep.py --out chaos-artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

QUERY = ("PARTITION BY ticker ORDER BY tstamp PATTERN (DN UP) & WIN "
         "DEFINE SEGMENT DN AS last(DN.price) < first(DN.price), "
         "SEGMENT UP AS last(UP.price) > first(UP.price), "
         "SEGMENT WIN AS window(2, 6)")

CSV = "tstamp,ticker,price\n" + "".join(
    f"{t},{ticker},{price}\n"
    for ticker in ("ACME", "OTHR")
    for t, price in enumerate([10, 12, 11, 9, 8, 10, 12, 13, 11, 10]))

#: (fault entry for TREX_FAULTS, policy, expected exit code, expectation)
#: Exit codes: 0 recovered/degraded, 7 ExecutionError, 8 timeout/budget
#: (see docs/ROBUSTNESS.md).
SWEEP = [
    # planner faults always recover via the rule-based fallback.
    ("planner.dp:raise", "raise", 0, "fallback"),
    ("planner.dp:plan", "raise", 0, "fallback"),
    ("planner.dp:crash", "raise", 0, "fallback"),
    ("planner.dp:timeout", "raise", 8, "error"),
    ("planner.dp:timeout", "partial", 0, "degraded"),
    # per-series faults: propagate under raise, isolate otherwise.
    ("data.series:raise", "raise", 7, "error"),
    ("data.series:raise@2", "skip", 0, "warning"),
    ("data.series:raise@2", "partial", 0, "warning"),
    ("data.series:data@2", "skip", 0, "warning"),
    ("data.series:crash@2", "skip", 0, "warning"),
    ("data.series:timeout@2", "partial", 0, "degraded"),
    # operator faults (leaf + the concat join of this query's plan).
    ("exec.SegGenFilter.eval:raise", "raise", 7, "error"),
    ("exec.SegGenFilter.eval:raise@2", "skip", 0, "warning"),
    ("exec.SortMergeConcat.eval:crash", "skip", 0, "warning"),
    ("exec.SegGenFilter.eval:delay(0.001)", "raise", 0, "clean"),
    # aggregate lookups (fires only for indexed plans; harmless here).
    ("aggregate.lookup:raise", "raise", 0, "clean"),
]

#: Service-level chaos: each case self-hosts a query service via
#: ``repro loadgen --faults`` and gates the run with ``--check`` — the
#: fault must surface as a *structured* error family (admission) or be
#: absorbed by the retry path (worker), never as a transport error.
SERVICE_SWEEP = [
    # Two injected admission rejections: structured 429s, rest succeed.
    ("service.admission:raise@1*2", [], "admission-reject"),
    # One worker crash on the 2nd execution: retried transparently.
    ("service.worker:worker@2*1", ["--expect-retries"],
     "worker-crash-retry"),
]


def run_service_case(out_dir: str, fault: str, extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env.pop("TREX_FAULTS", None)  # loadgen sets it itself via --faults
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "loadgen", "--clients", "4",
         "--requests", "4", "--faults", fault, "--check",
         "--out", out_dir] + list(extra_args),
        capture_output=True, text=True, env=env, cwd=REPO, timeout=300)
    report = None
    report_path = os.path.join(out_dir, "BENCH_service_load.json")
    if os.path.exists(report_path):
        with open(report_path) as fh:
            report = json.load(fh)
    return proc, report, time.perf_counter() - t0


def check_service_case(name: str, proc, report) -> list:
    reasons = []
    if proc.returncode != 0:
        reasons.append(f"exit code {proc.returncode}, expected 0")
    if report is None:
        reasons.append("no BENCH_service_load.json written")
        return reasons
    if report.get("unstructured_errors"):
        reasons.append(f"{report['unstructured_errors']} non-structured "
                       f"errors under fault injection")
    families = report.get("errors_by_family", {})
    if name == "admission-reject" and "admission" not in families:
        reasons.append("expected structured 'admission' rejections")
    if name == "worker-crash-retry" and not report.get("retried_requests"):
        reasons.append("expected at least one retried request")
    return reasons


def run_case(csv_path: str, fault: str, policy: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env["TREX_FAULTS"] = fault
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "query", "--csv", csv_path,
         "--query", QUERY, "--on-error", policy, "--limit", "5"],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=120)
    return proc, time.perf_counter() - t0


def check(expectation: str, proc) -> str:
    """Return '' if the observed behaviour matches, else a reason."""
    stderr = proc.stderr
    error_lines = [ln for ln in stderr.splitlines()
                   if ln.startswith("error: ")]
    if expectation == "error":
        if not error_lines:
            return "expected a one-line 'error:' on stderr"
        if len(error_lines) != 1:
            return f"expected exactly one error line, got {len(error_lines)}"
    elif expectation == "fallback":
        if "fallback" not in stderr:
            return "expected a planner-fallback warning on stderr"
    elif expectation == "degraded":
        if "partial result" not in stderr:
            return "expected a partial-result warning on stderr"
    elif expectation == "warning":
        if "warning:" not in stderr:
            return "expected a degradation warning on stderr"
    elif expectation == "clean":
        if error_lines:
            return "expected a clean run, got an error line"
    return ""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="chaos-artifacts",
                        help="directory for the JSON summary")
    args = parser.parse_args(argv)

    with tempfile.NamedTemporaryFile("w", suffix=".csv", delete=False) as fh:
        fh.write(CSV)
        csv_path = fh.name
    cases = []
    failures = 0
    try:
        for fault, policy, want_code, expectation in SWEEP:
            proc, seconds = run_case(csv_path, fault, policy)
            reasons = []
            if proc.returncode != want_code:
                reasons.append(f"exit code {proc.returncode}, "
                               f"expected {want_code}")
            mismatch = check(expectation, proc)
            if mismatch:
                reasons.append(mismatch)
            ok = not reasons
            failures += not ok
            cases.append({
                "fault": fault, "on_error": policy,
                "expected_exit": want_code, "exit": proc.returncode,
                "expectation": expectation, "ok": ok,
                "reasons": reasons, "seconds": round(seconds, 3),
                "stderr": proc.stderr.strip().splitlines()[:5],
            })
            status = "ok " if ok else "FAIL"
            print(f"{status} [{policy:7s}] {fault:40s} "
                  f"exit={proc.returncode}")
    finally:
        os.unlink(csv_path)

    os.makedirs(args.out, exist_ok=True)
    with tempfile.TemporaryDirectory() as service_out:
        for fault, extra_args, name in SERVICE_SWEEP:
            proc, report, seconds = run_service_case(service_out, fault,
                                                     extra_args)
            reasons = check_service_case(name, proc, report)
            ok = not reasons
            failures += not ok
            cases.append({
                "fault": fault, "on_error": "service", "expectation": name,
                "expected_exit": 0, "exit": proc.returncode, "ok": ok,
                "reasons": reasons, "seconds": round(seconds, 3),
                "stderr": proc.stderr.strip().splitlines()[:5],
            })
            status = "ok " if ok else "FAIL"
            print(f"{status} [service] {fault:40s} "
                  f"exit={proc.returncode}")

    summary = {"query": QUERY, "total": len(cases), "failed": failures,
               "cases": cases}
    out_path = os.path.join(args.out, "CHAOS_summary.json")
    with open(out_path, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")
    print(f"\n{len(cases) - failures}/{len(cases)} chaos cases passed; "
          f"wrote {out_path}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
