#!/usr/bin/env python
"""Full experiment harness: regenerates every table and figure's data.

Usage::

    python tools/run_experiments.py all              # everything, CI scale
    python tools/run_experiments.py table4 fig12     # selected experiments
    python tools/run_experiments.py fig12 --scale medium
    python tools/run_experiments.py table2 --scale paper

Scales: ``ci`` (default, minutes), ``medium`` (tens of minutes), ``paper``
(the full dataset sizes/grids — hours in pure Python).  Results print as
plain-text tables; paste the relevant numbers into EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from repro.bench.runner import (format_table, median_slowdowns,
                                median_speedups, run_executor_comparison,
                                run_ndcg, run_optimizer_comparison,
                                run_query_all_series, run_sharing_ablation)
from repro.datasets import dataset_statistics, load
from repro.queries import ALL_TEMPLATES, TEMPLATES, get_template

SCALES = {
    "ci": {
        "sp500": dict(num_series=20, length=252),
        "covid19": dict(num_series=20, length=64),
        "weather": dict(num_series=3, length=500),
        "taxi": dict(num_series=1, length=960),
        "nasdaq": dict(num_series=1, length=4000),
        "param_stride": 4, "param_limit": 3,
    },
    "medium": {
        "sp500": dict(num_series=100, length=252),
        "covid19": dict(num_series=120, length=64),
        "weather": dict(num_series=8, length=1000),
        "taxi": dict(num_series=1, length=3440),
        "nasdaq": dict(num_series=1, length=20000),
        "param_stride": 2, "param_limit": 5,
    },
    "paper": {
        "sp500": dict(scale="full"),
        "covid19": dict(scale="full"),
        "weather": dict(scale="full"),
        "taxi": dict(scale="full"),
        "nasdaq": dict(scale="full"),
        "param_stride": 1, "param_limit": None,
    },
}

_tables = {}


def table_for(dataset: str, scale: dict):
    if dataset not in _tables:
        _tables[dataset] = load(dataset, **scale[dataset])
    return _tables[dataset]


def param_sets_for(template, scale: dict):
    sets = template.param_sets()[::scale["param_stride"]]
    if scale["param_limit"] is not None:
        sets = sets[:scale["param_limit"]]
    return sets


def experiment_table2(scale):
    print("\n== Table 2: dataset statistics ==")
    stats = dataset_statistics(
        scale="full" if scale is SCALES["paper"] else "default")
    rows = [(name, int(entry["num_series"]), f"{entry['series_length']:.0f}")
            for name, entry in sorted(stats.items())]
    print(format_table(["dataset", "# of series", "series length"], rows))


def _micro_bench_rows(scale):
    """Figures 8-10 micro benchmarks; returns printable rows."""
    import numpy as np

    from repro.exec.base import ExecContext
    from repro.exec.concat import RightProbeConcat, SortMergeConcat
    from repro.exec.not_op import MaterializeNot, ProbeNot
    from repro.exec.seggen import SegGenFilter, SegGenIndexing
    from repro.lang.parser import parse_condition
    from repro.lang.query import VarDef
    from repro.lang.windows import WindowConjunction, WindowSpec
    from repro.plan.search_space import SearchSpace

    series = table_for("sp500", scale).partition(["ticker"], "tstamp")[0]
    n = len(series)

    def timed(op, sp):
        ctx = ExecContext(series)
        t0 = time.perf_counter()
        count = sum(1 for _ in op.eval(ctx, sp, {}))
        return time.perf_counter() - t0, count

    rows = []
    # Figure 8a: window sweep.
    for window_size in (5, 10, 20, 40, 80):
        cond = parse_condition(
            "linear_reg_r2_signed(DN.tstamp, DN.price) <= -0.7")
        var = VarDef("DN", True, (WindowSpec.point(0, window_size),), cond,
                     frozenset())
        filt = SegGenFilter(var, var.window_conjunction)
        indexed = SegGenIndexing(var, var.window_conjunction)
        tf, _ = timed(filt, SearchSpace.full(n))
        ti, _ = timed(indexed, SearchSpace.full(n))
        rows.append(("fig8a", f"l={window_size}", f"filter={tf:.4f}s",
                     f"indexing={ti:.4f}s"))
    # Figure 9a: threshold sweep.
    window = WindowConjunction([WindowSpec.point(2, 40)])
    for alpha in (0.5, 0.7, 0.9, 0.95):
        def leaf(name, direction, a):
            op_text = "<= -" if direction == "down" else ">= "
            cond = parse_condition(
                f"linear_reg_r2_signed({name}.tstamp, {name}.price) "
                f"{op_text}{a}")
            var = VarDef(name, True, (WindowSpec.point(1, 20),), cond,
                         frozenset())
            return SegGenIndexing(var, var.window_conjunction)

        probe = RightProbeConcat(leaf("DN", "down", alpha),
                                 leaf("UP", "up", 0.5), 0, window)
        merge = SortMergeConcat(leaf("DN", "down", alpha),
                                leaf("UP", "up", 0.5), 0, window)
        tp, _ = timed(probe, SearchSpace.full(n))
        tm, _ = timed(merge, SearchSpace.full(n))
        rows.append(("fig9a", f"alpha={alpha}", f"probe={tp:.4f}s",
                     f"sortmerge={tm:.4f}s"))
    # Figure 10: Not variants under two search spaces.
    cond = parse_condition("last(D.price) / first(D.price) < 0.95")
    for window_size in (5, 10, 20):
        var = VarDef("D", True, (WindowSpec.point(0, window_size),), cond,
                     frozenset())
        child = SegGenFilter(var, var.window_conjunction)
        not_window = WindowConjunction([WindowSpec.point(1, window_size)])
        for label, sp in (("(1,n)", SearchSpace(0, 0, 0, n - 1)),
                          ("(n,n)", SearchSpace.full(n))):
            tp, _ = timed(ProbeNot(child, not_window), sp)
            tm, _ = timed(MaterializeNot(child, not_window), sp)
            rows.append((f"fig10 {label}", f"l={window_size}",
                         f"probenot={tp:.4f}s", f"matnot={tm:.4f}s"))
    return rows


def experiment_fig8(scale):
    print("\n== Figures 8-10: physical operator micro-benchmarks ==")
    rows = _micro_bench_rows(scale)
    print(format_table(["figure", "param", "variant A", "variant B"], rows))


experiment_fig9 = experiment_fig8
experiment_fig10 = experiment_fig8


def experiment_table4(scale):
    print("\n== Table 4: optimizer vs rule-based baselines "
          "(median slow-down over fastest) ==")
    headers = None
    rows = []
    for template in TEMPLATES:
        table = table_for(template.dataset, scale)
        param_sets = param_sets_for(template, scale)
        try:
            comparisons = run_optimizer_comparison(
                template, table, param_sets=param_sets,
                timeout_seconds=90.0)
        except Exception as error:  # keep sweeping other queries
            print(f"  {template.name}: FAILED ({error})", flush=True)
            continue
        medians = median_slowdowns(comparisons)
        if headers is None:
            headers = ["query"] + sorted(medians)
        cells = ["t.o." if medians[k] == float("inf") else
                 f"{medians[k]:.2f}" for k in sorted(medians)]
        rows.append([template.name] + cells)
        print(f"  {template.name}: " + "  ".join(
            f"{k}={c}" for k, c in zip(sorted(medians), cells)), flush=True)
    if headers:
        print(format_table(headers, rows))


def experiment_table7(scale):
    print("\n== Table 7: NDCG of cost ranking vs runtime ranking ==")
    rows = []
    for template in TEMPLATES:
        table = table_for(template.dataset, scale)
        param_sets = param_sets_for(template, scale)[:3]
        try:
            score, collection, _ = run_ndcg(template, table,
                                            param_sets=param_sets,
                                            timeout_seconds=90.0)
        except Exception as error:
            print(f"  {template.name}: FAILED ({error})")
            continue
        rows.append((template.name, f"{score:.2f}",
                     f"{collection * 1000:.2f} ms"))
    print(format_table(["query", "NDCG", "median stats collection"], rows))


def experiment_fig11(scale):
    """Figures 11 & 23: estimated cost vs execution time scatter data."""
    print("\n== Figures 11/23: estimated cost vs execution time ==")
    for name in ("v_shape", "rebound", "OpenCEP_Q1"):
        template = get_template(name)
        table = table_for(template.dataset, scale)
        param_sets = param_sets_for(template, scale)[:2]
        try:
            score, _, points = run_ndcg(template, table,
                                        param_sets=param_sets,
                                        timeout_seconds=90.0)
        except Exception as error:
            print(f"  {name}: FAILED ({error})", flush=True)
            continue
        print(f"\n{name} (NDCG {score:.2f}):")
        for label, cost, seconds in points:
            print(f"  {label:14s} est={cost:14.4g}  time={seconds:9.4f}s")


def experiment_fig12(scale):
    print("\n== Figure 12 / 22a: executors per query ==")
    labels = ["trex", "trex-batch", "afa", "nested-afa", "zstream",
              "opencep"]
    summary = []
    for template in TEMPLATES:
        table = table_for(template.dataset, scale)
        param_sets = param_sets_for(template, scale)
        # The original OpenCEP library cannot express nested Kleene
        # closures (Section 6.3), so those queries have no OpenCEP/ZStream
        # lines in Figure 12; mirror that here.
        template_labels = [l for l in labels
                           if not (template.has_nested_kleene
                                   and l in ("zstream", "opencep"))]
        try:
            results = run_executor_comparison(template, table,
                                              template_labels,
                                              param_sets=param_sets,
                                              time_budget=90.0)
        except Exception as error:
            print(f"  {template.name}: FAILED ({error})")
            continue
        speedups = median_speedups(results, reference="trex")
        print(f"\n{template.name}:")
        for label in template_labels:
            rows = results[label]
            times = ", ".join(f"{seconds:.3f}" for _, seconds, _ in rows)
            print(f"  {label:12s} [{times}] s")
        summary.append([template.name] + [
            f"{speedups[label]:.1f}x" if label in speedups else "-"
            for label in labels if label != "trex"])
    print("\nFigure 22a (median speedup of T-ReX over each):")
    print(format_table(["query"] + [l for l in labels if l != "trex"],
                       summary))


def experiment_fig22b(scale):
    print("\n== Figure 22b: computation-sharing ablation ==")
    rows = []
    for name in ("v_shape", "rebound", "cld_wave"):
        template = get_template(name)
        table = table_for(template.dataset, scale)
        param_sets = param_sets_for(template, scale)[:2]
        speedups = run_sharing_ablation(template, table,
                                        ["trex", "trex-batch", "afa"],
                                        param_sets=param_sets)
        for label, value in sorted(speedups.items()):
            rows.append((name, label, f"{value:.2f}x"))
    print(format_table(["query", "executor", "sharing-on speedup"], rows))


def experiment_table5(scale):
    from repro.optimizer.profiler import profile_aggregates, profile_operators
    print("\n== Table 5: operator cost weights (locally profiled) ==")
    weights = profile_operators(sizes=(200, 400))
    print(format_table(["operator", "w (ns)"],
                       [(k, f"{v:.0f}") for k, v in sorted(weights.items())]))
    print("\n== Table 6: aggregate cost weights (locally profiled) ==")
    aggs = profile_aggregates(sizes=(200, 400))
    print(format_table(
        ["aggregate", "w_ind", "w_lookup", "w_direct"],
        [(k, f"{v[0]:.0f}", f"{v[1]:.0f}", f"{v[2]:.0f}")
         for k, v in sorted(aggs.items())]))


experiment_table6 = experiment_table5

EXPERIMENTS = {
    "table2": experiment_table2,
    "fig8": experiment_fig8,
    "fig9": experiment_fig9,
    "fig10": experiment_fig10,
    "table4": experiment_table4,
    "table7": experiment_table7,
    "fig11": experiment_fig11,
    "fig12": experiment_fig12,
    "fig22b": experiment_fig22b,
    "table5": experiment_table5,
    "table6": experiment_table6,
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="+",
                        help=f"'all' or any of {sorted(EXPERIMENTS)}")
    parser.add_argument("--scale", choices=sorted(SCALES), default="ci")
    args = parser.parse_args(argv)

    scale = SCALES[args.scale]
    names = sorted(EXPERIMENTS) if "all" in args.experiments \
        else args.experiments
    seen = set()
    for name in names:
        if name not in EXPERIMENTS:
            parser.error(f"unknown experiment {name!r}")
        fn = EXPERIMENTS[name]
        if fn in seen:
            continue
        seen.add(fn)
        t0 = time.perf_counter()
        fn(scale)
        print(f"[{name} done in {time.perf_counter() - t0:.1f}s]")


if __name__ == "__main__":
    main()
