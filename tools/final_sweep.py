#!/usr/bin/env python
"""Focused single-core experiment sweep used to fill EXPERIMENTS.md.

A trimmed version of run_experiments.py sized for a single-core budget:
smaller datasets for the heaviest queries, tight deadlines, and a curated
template subset per experiment.  Prints the same table formats.
"""

import time

from repro.bench.runner import (format_table, median_slowdowns,
                                median_speedups, run_executor_comparison,
                                run_ndcg, run_optimizer_comparison,
                                run_sharing_ablation)
from repro.datasets import load
from repro.queries import get_template

SIZES = {
    "sp500": dict(num_series=20, length=252),
    "covid19": dict(num_series=20, length=64),
    "weather": dict(num_series=3, length=500),
    "taxi": dict(num_series=1, length=960),
    "nasdaq": dict(num_series=1, length=3000),
}
_tables = {}


def table_for(name):
    if name not in _tables:
        _tables[name] = load(name, **SIZES[name])
    return _tables[name]


def params_of(template, count=2):
    sets = template.param_sets()
    return sets[:: max(len(sets) // count, 1)][:count]


def section(title):
    print(f"\n== {title} ==", flush=True)


def main():
    t_start = time.perf_counter()

    section("Table 4 (remaining queries)")
    for name in ("OpenCEP_Q1", "OpenCEP_Q2", "AFA_Q1", "AFA_Q2"):
        template = get_template(name)
        comparisons = run_optimizer_comparison(
            template, table_for(template.dataset),
            param_sets=params_of(template, 2), timeout_seconds=60.0)
        medians = median_slowdowns(comparisons)
        cells = {k: ("t.o." if v == float("inf") else f"{v:.2f}")
                 for k, v in sorted(medians.items())}
        print(f"  {name}: " + "  ".join(f"{k}={v}"
                                        for k, v in cells.items()),
              flush=True)

    section("Table 7 (NDCG, representative queries)")
    for name in ("v_shape", "rebound", "cld_wave", "limit_sell",
                 "OpenCEP_Q2"):
        template = get_template(name)
        score, collection, _ = run_ndcg(
            template, table_for(template.dataset),
            param_sets=params_of(template, 2), timeout_seconds=60.0)
        print(f"  {name}: NDCG={score:.2f} stats="
              f"{collection * 1000:.2f}ms", flush=True)

    section("Figure 12 / 22a (executor line-up)")
    labels = ["trex", "trex-batch", "afa", "nested-afa", "zstream",
              "opencep"]
    rows = []
    for name in ("v_shape", "rebound", "cld_wave", "limit_sell",
                 "rptd_pttrn", "OpenCEP_Q2", "AFA_Q1"):
        template = get_template(name)
        use = [l for l in labels
               if not (template.has_nested_kleene
                       and l in ("zstream", "opencep"))]
        results = run_executor_comparison(
            template, table_for(template.dataset), use,
            param_sets=params_of(template, 2), time_budget=60.0)
        speedups = median_speedups(results, reference="trex")
        print(f"  {name}: " + "  ".join(
            f"{label}={speedups[label]:.1f}x" if label in speedups else
            f"{label}=t.o." for label in use if label != "trex"),
            flush=True)
        rows.append((name, results))

    section("Figure 22b (sharing ablation)")
    for name in ("v_shape", "cld_wave"):
        template = get_template(name)
        speedups = run_sharing_ablation(
            template, table_for(template.dataset),
            ["trex", "afa"], param_sets=params_of(template, 1))
        print(f"  {name}: " + "  ".join(
            f"{k}={v:.2f}x" for k, v in sorted(speedups.items())),
            flush=True)

    section("Table 5/6 (local profiling)")
    from repro.optimizer.profiler import profile_aggregates, profile_operators
    weights = profile_operators(sizes=(150, 300))
    print(format_table(["operator", "w (ns)"],
                       [(k, f"{v:.0f}") for k, v in sorted(weights.items())]))
    aggs = profile_aggregates(
        names=["linear_regression_r2", "mann_kendall_test", "sum"],
        sizes=(150, 300))
    print(format_table(["aggregate", "w_ind", "w_lookup", "w_direct"],
                       [(k, f"{v[0]:.0f}", f"{v[1]:.0f}", f"{v[2]:.0f}")
                        for k, v in sorted(aggs.items())]))

    print(f"\n[TOTAL {time.perf_counter() - t_start:.0f}s]", flush=True)


if __name__ == "__main__":
    main()
