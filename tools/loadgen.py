#!/usr/bin/env python
"""Chaos-load harness shim: ``python tools/loadgen.py [args...]``.

Thin wrapper over ``python -m repro loadgen`` (the logic lives in
:mod:`repro.service.loadgen`) so the tool is runnable straight from a
checkout without installing the package::

    python tools/loadgen.py --clients 8 --requests 25 --check
    python tools/loadgen.py --faults 'service.worker:worker@3*2' \\
        --check --expect-retries
    python tools/loadgen.py --url 127.0.0.1:8080 --clients 16
"""

import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.cli import build_parser  # noqa: E402


def main(argv=None) -> int:
    args = build_parser().parse_args(["loadgen"] + (
        argv if argv is not None else sys.argv[1:]))
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
