"""Prefilter resource-governance tests: deadline ticks inside index
probing, ``max_segments`` charging for materialized candidate ranges,
and the ``index.probe`` fault point under every error policy
(docs/PREFILTER.md, docs/ROBUSTNESS.md)."""

import time
from collections import Counter

import numpy as np
import pytest

from repro.core.engine import TRexEngine
from repro.errors import QueryTimeout, ResourceBudgetExceeded
from repro.exec.base import ExecContext
from repro.index.summary import build_summary, clear_cache
from repro.lang.query import compile_query
from repro.plan.logical import build_logical_plan
from repro.plan.prefilter import decide, extract_prefilter
from repro.testing import faults
from repro.testing.faults import InjectedFault

from tests.conftest import make_series


@pytest.fixture(autouse=True)
def _clean():
    clear_cache()
    faults.disarm_all()
    yield
    faults.disarm_all()
    clear_cache()


SPIKE_TEXT = """
ORDER BY tstamp
PATTERN (A & W)
DEFINE
  SEGMENT A AS min(A.val) >= 90,
  SEGMENT W AS window(2, 8)
"""


def spike_plan():
    query = compile_query(SPIKE_TEXT)
    return query, extract_prefilter(query, build_logical_plan(query))


def spiky_series(num_spikes=3, length=600, seed=11, key=("s",)):
    rng = np.random.default_rng(seed)
    values = rng.uniform(10.0, 60.0, length)
    for k in range(num_spikes):
        at = 40 + k * (length // (num_spikes + 1))
        values[at:at + 4] = 100.0 + k
    return make_series(values, key=key)


class TestDeadlineTicks:
    def test_probe_ticks_against_expired_deadline(self):
        _, pfplan = spike_plan()
        series = spiky_series()
        ctx = ExecContext(series, deadline=time.perf_counter() - 1.0)
        with pytest.raises(QueryTimeout):
            decide(pfplan, series, ctx, Counter())

    def test_probe_does_not_tick_without_deadline(self):
        _, pfplan = spike_plan()
        series = spiky_series()
        ctx = ExecContext(series, deadline=None)
        kind, ranges = decide(pfplan, series, ctx, Counter())
        assert kind == "narrow" and ranges


class TestSegmentCharging:
    def test_narrowed_ranges_charged_under_budget(self):
        query, _ = spike_plan()
        series = [spiky_series()]
        # Wide-open budget: runs fine and the accounting includes the
        # materialized ranges.
        result = TRexEngine(prefilter=True, max_segments=100_000) \
            .execute_query(query, series)
        assert result.prefilter["ranges_materialized"] >= 1

    def test_tight_budget_trips_on_ranges(self):
        # Three spikes materialize three candidate ranges; a budget of
        # one cannot absorb them (the documented on/off accounting
        # difference under max_segments).
        query, _ = spike_plan()
        series = [spiky_series()]
        with pytest.raises(ResourceBudgetExceeded):
            TRexEngine(prefilter=True, max_segments=1,
                       on_error="raise").execute_query(query, series)

    def test_skip_decision_charges_nothing(self):
        query, _ = spike_plan()
        calm = [make_series(np.zeros(600) + 5.0)]
        result = TRexEngine(prefilter=True, max_segments=1) \
            .execute_query(query, calm)
        assert result.prefilter["series_skipped"] == 1
        assert result.total_matches == 0


class TestIndexProbeFaults:
    def test_raise_propagates_under_on_error_raise(self):
        query, _ = spike_plan()
        with faults.inject("index.probe"):
            with pytest.raises(InjectedFault):
                TRexEngine(prefilter=True, on_error="raise") \
                    .execute_query(query, [spiky_series()])

    @pytest.mark.parametrize("policy", ["partial", "skip"])
    def test_raise_recorded_under_degrading_policies(self, policy):
        query, _ = spike_plan()
        with faults.inject("index.probe"):
            result = TRexEngine(prefilter=True, on_error=policy) \
                .execute_query(query, [spiky_series()])
        assert len(result.errors) == 1
        assert "index.probe" in result.errors[0].format()

    def test_corrupt_summary_fails_open_to_full_scan(self):
        query, _ = spike_plan()
        series = [spiky_series()]
        baseline = TRexEngine(prefilter=False).execute_query(query,
                                                             series)
        with faults.inject("index.probe", action="corrupt",
                           corrupt=lambda s: object()):
            result = TRexEngine(prefilter=True).execute_query(query,
                                                              series)
        assert result.matches_by_key() == baseline.matches_by_key()
        assert result.prefilter["index_invalid"] == 1
        assert result.prefilter["series_full"] == 1

    def test_stale_summary_fails_open(self):
        # A summary built for a different length models a stale index
        # entry: the integrity probe rejects it and the series runs the
        # full scan with identical results.
        query, _ = spike_plan()
        series = [spiky_series()]
        stale = build_summary(make_series(np.zeros(10)))
        baseline = TRexEngine(prefilter=False).execute_query(query,
                                                             series)
        with faults.inject("index.probe", action="corrupt",
                           corrupt=lambda s: stale):
            result = TRexEngine(prefilter=True).execute_query(query,
                                                              series)
        assert result.matches_by_key() == baseline.matches_by_key()
        assert result.prefilter["index_invalid"] == 1

    def test_transient_fault_only_hits_once(self):
        query, _ = spike_plan()
        series = [spiky_series(seed=1, key=("a",)),
                  spiky_series(seed=2, key=("b",)),
                  spiky_series(seed=3, key=("c",))]
        with faults.inject("index.probe", times=1):
            result = TRexEngine(prefilter=True, on_error="skip") \
                .execute_query(query, series)
        assert len(result.errors) == 1
        assert result.errors[0].key == ("a",)
        # The failed series' counters are discarded with its partial
        # work; the two clean series were examined and pruned normally.
        assert result.prefilter["series_examined"] == 2

    def test_data_action_models_corrupt_store(self):
        query, _ = spike_plan()
        with faults.inject("index.probe", action="data"):
            result = TRexEngine(prefilter=True, on_error="partial") \
                .execute_query(query, [spiky_series()])
        assert len(result.errors) == 1
        assert result.errors[0].error == "DataError"


class TestChaosParity:
    def test_chaos_sweep_keeps_no_false_dismissal(self):
        """Chaos case: every index.probe action that the policies can
        absorb leaves the surviving series' matches identical to the
        prefilter-off run."""
        query, _ = spike_plan()
        series = [spiky_series(seed=s, key=(f"s{s}",)) for s in range(4)]
        baseline = TRexEngine(prefilter=False, on_error="partial") \
            .execute_query(query, series)
        base_by_key = baseline.matches_by_key()
        for action in ("raise", "timeout", "data", "corrupt"):
            kwargs = {"action": action, "on_hit": 2, "times": 1}
            if action == "corrupt":
                kwargs["corrupt"] = lambda s: None
            with faults.inject("index.probe", **kwargs):
                result = TRexEngine(prefilter=True, on_error="partial") \
                    .execute_query(query, series)
            by_key = result.matches_by_key()
            if action == "corrupt":
                # Fail-open: no errors, identical matches everywhere.
                assert not result.errors, action
                assert by_key == base_by_key, action
            elif action == "timeout":
                # A deadline fault ends the whole query: series before
                # the fault keep parity, the rest never ran.
                assert result.interrupted, action
                assert by_key[("s0",)] == base_by_key[("s0",)], action
            else:
                # Exactly the faulted series surfaces an error record;
                # every other series keeps byte-identical matches.
                assert [e.key for e in result.errors] == [("s1",)], action
                for key, matches in by_key.items():
                    if key != ("s1",):
                        assert matches == base_by_key[key], action
