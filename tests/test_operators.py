"""Physical operator unit tests on hand-built plans."""

import numpy as np
import pytest

from repro.exec.and_or import (LeftProbeAnd, RightProbeAnd, SortMergeAnd,
                               SortMergeOr)
from repro.exec.base import ExecContext
from repro.exec.concat import (LeftProbeConcat, RightProbeConcat,
                               SortMergeConcat, WildWindowConcat)
from repro.exec.filter_op import FilterOp
from repro.exec.kleene import MaterializeKleene
from repro.exec.not_op import MaterializeNot, ProbeNot
from repro.exec.seggen import SegGenFilter, SegGenIndexing, SegGenWindow
from repro.exec.special import SubPatternCache
from repro.lang.parser import parse_condition
from repro.lang.query import VarDef
from repro.lang.windows import WindowConjunction, WindowSpec
from repro.plan.search_space import SearchSpace

from tests.conftest import make_series


def window(lo, hi):
    return WindowConjunction([WindowSpec.point(lo, hi)])


WILD = WindowConjunction.wild()


def run(op, series, sp=None, refs=None):
    ctx = ExecContext(series)
    if sp is None:
        sp = SearchSpace.full(len(series))
    return sorted({seg.bounds for seg in op.eval(ctx, sp, refs or {})}), ctx


def rising_var(name="UP", windows=()):
    condition = parse_condition(
        f"last({name}.val) > first({name}.val)")
    return VarDef(name, True, tuple(windows), condition, frozenset())


class TestSegGen:
    def test_window_generator(self):
        series = make_series([1, 2, 3, 4])
        op = SegGenWindow(window(1, 2), "W")
        got, _ = run(op, series)
        assert got == [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]

    def test_window_respects_search_space(self):
        series = make_series([1, 2, 3, 4])
        op = SegGenWindow(window(0, 3), "W")
        got, _ = run(op, series, SearchSpace.exact(1, 3))
        assert got == [(1, 3)]

    def test_filter_and_indexing_agree(self):
        series = make_series(np.cumsum(np.random.default_rng(0)
                                       .normal(0, 1, 25)))
        var = VarDef("X", True, (WindowSpec.point(2, 6),),
                     parse_condition(
                         "linear_reg_r2_signed(X.tstamp, X.val) >= 0.5"),
                     frozenset())
        filt, _ = run(SegGenFilter(var, var.window_conjunction), series)
        indexed, ctx = run(SegGenIndexing(var, var.window_conjunction),
                           series)
        assert filt == indexed
        assert ctx.stats["index_builds"] == 1
        assert ctx.stats["index_lookups"] > 0

    def test_point_variable_only_single_points(self):
        series = make_series([1, 5, 2])
        var = VarDef("P", False, (WindowSpec.point_fixed(0),),
                     parse_condition("val > 3"), frozenset())
        got, _ = run(SegGenFilter(var, var.window_conjunction), series)
        assert got == [(1, 1)]

    def test_publish_payload(self):
        series = make_series([1, 2])
        op = SegGenWindow(window(0, 1), "W", publish=frozenset({"W"}))
        ctx = ExecContext(series)
        segs = list(op.eval(ctx, SearchSpace.full(2), {}))
        assert all(seg.payload == {"W": seg.bounds} for seg in segs)


class TestConcatOperators:
    def setup_method(self):
        self.series = make_series([3, 1, 4, 2, 5])
        down = VarDef("DN", True, (),
                      parse_condition("last(DN.val) < first(DN.val)"),
                      frozenset())
        up = VarDef("UP", True, (),
                    parse_condition("last(UP.val) > first(UP.val)"),
                    frozenset())
        self.left = SegGenFilter(down, window(1, 2))
        self.right = SegGenFilter(up, window(1, 2))

    @pytest.mark.parametrize("cls", [SortMergeConcat, RightProbeConcat,
                                     LeftProbeConcat])
    def test_variants_agree(self, cls):
        op = cls(self.left, self.right, 0, window(2, 4))
        got, _ = run(op, self.series)
        reference, _ = run(SortMergeConcat(self.left, self.right, 0,
                                           window(2, 4)), self.series)
        assert got == reference
        assert got  # non-empty on this fixture

    def test_gap_one_disjoint(self):
        series = make_series([1, 5, 1, 5])
        a = VarDef("A", False, (WindowSpec.point_fixed(0),),
                   parse_condition("val < 3"), frozenset())
        b = VarDef("B", False, (WindowSpec.point_fixed(0),),
                   parse_condition("val > 3"), frozenset())
        op = SortMergeConcat(
            SegGenFilter(a, a.window_conjunction),
            SegGenFilter(b, b.window_conjunction), 1, WILD)
        got, _ = run(op, series)
        assert got == [(0, 1), (2, 3)]

    def test_window_checked_on_result(self):
        op = SortMergeConcat(self.left, self.right, 0, window(4, 4))
        got, _ = run(op, self.series)
        assert all(e - s == 4 for s, e in got)

    def test_probe_caching(self):
        op = RightProbeConcat(self.left, self.right, 0, WILD)
        _, ctx = run(op, self.series)
        assert ctx.stats["probe_calls"] >= 1

    def test_wild_window_concat(self):
        series = make_series([1, 5, 0, 0, 1, 5])
        a = VarDef("A", True, (WindowSpec.point_fixed(1),),
                   parse_condition("last(A.val) - first(A.val) >= 4"),
                   frozenset())
        left = SegGenFilter(a, a.window_conjunction)
        right = SegGenFilter(a, a.window_conjunction)
        pad = WindowConjunction.wild()
        op = WildWindowConcat(left, right, pad, WILD)
        got, _ = run(op, series)
        # Pairs of rising jumps with any gap: [0,1] then [4,5].
        assert (0, 5) in got


class TestAndOperators:
    def setup_method(self):
        self.series = make_series([1, 2, 3, 2, 4])
        rising = rising_var("UP")
        small = VarDef(
            "SMALL", True, (),
            parse_condition("last(SMALL.val) - first(SMALL.val) <= 2"),
            frozenset())
        self.left = SegGenFilter(rising, window(1, 3))
        self.right = SegGenFilter(small, window(1, 3))

    @pytest.mark.parametrize("cls", [SortMergeAnd, RightProbeAnd,
                                     LeftProbeAnd])
    def test_variants_agree(self, cls):
        got, _ = run(cls(self.left, self.right, window(1, 3)), self.series)
        reference, _ = run(SortMergeAnd(self.left, self.right,
                                        window(1, 3)), self.series)
        assert got == reference and got

    def test_or_union(self):
        got, _ = run(SortMergeOr(self.left, self.right, window(1, 3)),
                     self.series)
        left_only, _ = run(self.left, self.series)
        right_only, _ = run(self.right, self.series)
        assert set(got) == set(left_only) | set(right_only)


class TestNotOperators:
    def setup_method(self):
        self.series = make_series([1, 2, 1, 3])
        falling = VarDef("F", True, (),
                         parse_condition("last(F.val) < first(F.val)"),
                         frozenset())
        self.child = SegGenFilter(falling, window(1, 2))

    def test_materialize_and_probe_agree(self):
        win = window(1, 2)
        mat, _ = run(MaterializeNot(self.child, win), self.series)
        probe, _ = run(ProbeNot(self.child, win), self.series)
        assert mat == probe

    def test_complement_semantics(self):
        win = window(1, 2)
        matched, _ = run(self.child, self.series)
        complement, _ = run(MaterializeNot(self.child, win), self.series)
        ctx = ExecContext(self.series)
        universe = set(win.iterate(self.series, 0, 3, 0, 3))
        assert set(complement) == universe - set(matched)
        del ctx


class TestKleene:
    def test_window_aware_prunes(self):
        series = make_series(np.arange(12.0))
        up = rising_var("UP", [WindowSpec.point(1, 2)])
        child = SegGenFilter(up, up.window_conjunction)
        aware = MaterializeKleene(child, 1, None, 0, window(0, 4))
        got, ctx_aware = run(aware, series)
        assert got and all(e - s <= 4 for s, e in got)
        unaware = MaterializeKleene(child, 1, None, 0, window(0, 4),
                                    window_aware=False)
        got2, ctx_unaware = run(unaware, series)
        assert got2 == got  # same results
        # ...but the window-aware version does no more work.
        assert ctx_aware.stats["segments_emitted"] <= \
            ctx_unaware.stats["segments_emitted"]

    def test_exact_repetitions(self):
        series = make_series([1, 2, 3, 4])
        up = rising_var("UP", [WindowSpec.point_fixed(1)])
        child = SegGenFilter(up, up.window_conjunction)
        op = MaterializeKleene(child, 2, 2, 0, window(0, 9))
        got, _ = run(op, series)
        assert got == [(0, 2), (1, 3)]

    def test_min_zero_rejected(self):
        series = make_series([1, 2])
        up = rising_var("UP")
        child = SegGenFilter(up, WILD)
        with pytest.raises(ValueError):
            MaterializeKleene(child, 0, None, 0, WILD)

    def test_zero_duration_links_skipped(self):
        # A child matching single points must not loop forever.
        series = make_series([1, 1, 1])
        anyseg = VarDef("S", True, (WindowSpec.point(0, 1),), None,
                        frozenset())
        child = SegGenWindow(anyseg.window_conjunction, "S")
        op = MaterializeKleene(child, 1, None, 0, window(0, 2))
        got, _ = run(op, series)
        assert (0, 2) in got


class TestFilterAndSubPattern:
    def test_filter_uses_payload_refs(self):
        series = make_series([1, 2, 3, 4, 5, 6])
        up = rising_var("UP", [WindowSpec.point_fixed(2)])
        left = SegGenFilter(up, up.window_conjunction,
                            publish=frozenset({"UP"}))
        pad = SegGenWindow(window(0, 3), "G")
        concat = SortMergeConcat(left, pad, 0, WILD,
                                 publish=frozenset({"UP"}))
        condition = parse_condition("last(UP.val) - first(UP.val) = 2")
        filt = FilterOp(concat, [("UP", condition)], WILD)
        got, _ = run(filt, series)
        assert got  # UP rises by exactly 2 over duration-2 windows here

    def test_subpattern_cache(self):
        series = make_series(list(range(20)))
        up = rising_var("UP")
        leaf = SegGenFilter(up, window(1, 2))
        cached = SubPatternCache(leaf, "key1")
        ctx = ExecContext(series)
        sp = SearchSpace.full(20)
        first = sorted(s.bounds for s in cached.eval(ctx, sp, {}))
        second = sorted(s.bounds for s in cached.eval(ctx, sp, {}))
        assert first == second
        assert ctx.stats["subpattern_cache_hits"] == 1

    def test_subpattern_streams_tiny_spaces(self):
        series = make_series(list(range(20)))
        up = rising_var("UP")
        cached = SubPatternCache(SegGenFilter(up, window(1, 2)), "key2")
        ctx = ExecContext(series)
        sp = SearchSpace.exact(2, 3)
        list(cached.eval(ctx, sp, {}))
        list(cached.eval(ctx, sp, {}))
        # Tiny probe spaces bypass the cache entirely.
        assert ctx.stats["subpattern_cache_hits"] == 0
        assert ctx.stats["subpattern_evals"] == 0


class TestExplain:
    def test_explain_tree(self):
        series = make_series([1, 2, 3])
        up = rising_var("UP")
        op = SortMergeConcat(SegGenFilter(up, WILD),
                             SegGenWindow(WILD, "W"), 0, window(1, 2))
        text = op.explain()
        assert "SortMergeConcat" in text
        assert "SegGenFilter(UP)" in text
        assert "SegGenWindow(W)" in text
        del series


class TestPlanSerialization:
    def test_to_dict_structure(self):
        series = make_series([1, 2, 3])
        up = rising_var("UP")
        op = SortMergeConcat(SegGenFilter(up, WILD),
                             SegGenWindow(window(0, 2), "W"), 0,
                             window(1, 2))
        node = op.to_dict()
        assert node["operator"].startswith("SortMergeConcat")
        assert len(node["children"]) == 2
        assert node["window"] == "window(1, 2)"
        del series

    def test_to_dict_json_round_trip(self):
        import json
        up = rising_var("UP")
        op = SegGenFilter(up, window(1, 4), publish=frozenset({"UP"}))
        text = json.dumps(op.to_dict())
        back = json.loads(text)
        assert back["publish"] == ["UP"]
